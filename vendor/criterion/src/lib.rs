//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the slice of the criterion API its bench
//! targets use. Statistical sampling is replaced by a single timed
//! pass per benchmark (enough to smoke-test the workloads and print a
//! rough number); the real criterion harness can be swapped back in by
//! restoring the registry dependency.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub takes one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut BenchmarkGroup {
        self
    }

    /// Accepted for API compatibility; the stub does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut BenchmarkGroup {
        self
    }

    /// Accepted for API compatibility; the stub takes one sample.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut BenchmarkGroup {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times one execution of `f` (the stub's single sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = b.elapsed.checked_div(b.iters.max(1)).unwrap_or_default();
    println!("bench {label:<48} {per_iter:>12?} (single sample, offline criterion stub)");
}

/// Declares a function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        g.bench_function("one", |b| {
            b.iter(|| ran += 1);
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
