//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the subset of proptest it uses: the
//! [`Strategy`] trait (`prop_map`, `boxed`, `prop_recursive`), range /
//! tuple / `Just` / `any` / `collection::vec` / `prop_oneof!`
//! strategies, and the `proptest!` test macro. Each test runs its
//! configured number of cases from a deterministic per-test seed.
//! There is no shrinking: a failing case panics with the plain
//! assertion message, which is enough for CI.

use std::rc::Rc;

/// The deterministic generator threaded through strategies
/// (xoshiro256++ seeded with SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from a `u64` (expanded with SplitMix64).
    pub fn seeded(seed: u64) -> TestRng {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample from the inclusive `i128` interval.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let width = (hi - lo + 1) as u128;
        lo + ((u128::from(self.next_u64()) * width) >> 64) as i128
    }
}

/// A value generator. Mirrors proptest's trait of the same name, minus
/// shrinking: `generate` produces one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
    }

    /// Builds recursive structures: `recurse` receives a strategy for
    /// the inner level and must return one for the outer. Recursion
    /// depth is capped at `depth`; the size/branch hints are accepted
    /// for API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            // Mix the leaf back in so generated values vary in depth.
            level = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        level
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one value type (the expansion
/// of `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.in_range(0, self.0.len() as i128 - 1) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                rng.in_range(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                rng.in_range(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length bound for [`vec`], convertible from ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of `elem`-generated values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A deterministic per-test seed derived from the test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a regular test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::seeded($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategy arms sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::seeded(1);
        let s = (-50i64..=50).prop_map(|v| v * 2);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((-100..=100).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_and_vec_cover_all_arms() {
        let mut rng = TestRng::seeded(2);
        let s = collection::vec(prop_oneof![Just(0u8), 1u8..3], 1..6);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 5);
            for x in v {
                seen[x as usize] = true;
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_runs_cases(x in 0i64..10, pair in (0u8..4, any::<bool>())) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(pair.0 < 4);
        }
    }
}
