//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the tiny subset of the `rand` API it
//! actually uses: a seedable deterministic generator (`rngs::StdRng`),
//! `SeedableRng::seed_from_u64`, and the `RngExt` helpers
//! `random_range` / `random_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms, which
//! is all the fixtures and schedulers in this repository rely on
//! (they never depend on matching upstream `rand`'s exact stream).
//!
//! # Generator audit (short cycles, low-bit bias, seed spreading)
//!
//! The testkit derives thousands of programs from *consecutive* integer
//! seeds, so the quality concerns that plague ad-hoc LCG/xorshift
//! stand-ins were audited explicitly:
//!
//! * **Cycle length.** xoshiro256++ has a single cycle of period
//!   2^256 − 1 over its nonzero states. The only degenerate state is
//!   all-zero, which [`SeedableRng::from_seed`] nudges to a fixed
//!   nonzero constant, so no reachable seed enters a short cycle.
//! * **Low-bit bias.** Plain xorshift and xoshiro's `+`-scrambler
//!   variants have weak low bits (detectable linear artifacts). The
//!   `++` output function — `rotl(s0 + s3, 23) + s0` — breaks that
//!   linearity for every output bit; low bits pass the balance and
//!   serial-correlation checks in this module's tests. `next_u32`
//!   still takes the *high* half as a belt-and-braces choice.
//! * **Seed spreading.** Consecutive `u64` seeds differ in very few
//!   bits; feeding them to the state directly would start neighbours
//!   in nearly identical states. `seed_from_u64` therefore expands the
//!   seed through SplitMix64 (a bijective avalanche: every output bit
//!   depends on every seed bit) before it ever touches xoshiro state,
//!   so adjacent seeds land in uncorrelated orbits. The
//!   `spectral_sanity_*` tests below pin these properties.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Builds a generator from a `u64` seed, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range usable with [`RngExt::random_range`]: exposes inclusive
/// integer bounds widened to `i128`.
pub trait SampleRange<T> {
    /// The `(low, high)` inclusive bounds; panics if the range is empty.
    fn bounds_inclusive(self) -> (i128, i128);

    /// Narrows a sampled `i128` back to `T`.
    fn narrow(v: i128) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn bounds_inclusive(self) -> (i128, i128) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start as i128, self.end as i128 - 1)
            }

            fn narrow(v: i128) -> $t {
                v as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn bounds_inclusive(self) -> (i128, i128) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start() as i128, *self.end() as i128)
            }

            fn narrow(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling helpers (mirrors `rand::Rng`).
pub trait RngExt: RngCore {
    /// A uniform sample from an integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds_inclusive();
        let width = (hi - lo + 1) as u128;
        // Widening multiply maps 64 random bits onto the width with
        // bias below width / 2^64 — immaterial for test fixtures.
        let offset = ((u128::from(self.next_u64()) * width) >> 64) as i128;
        R::narrow(lo + offset)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            // Compare in 53-bit space: `next_u64() as f64` rounds
            // (u64 exceeds f64's mantissa), which biased the old
            // full-width comparison near the rounding boundaries.
            // The top 53 bits converted to [0, 1) are exact.
            let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            unit < p
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..16).map(|_| a.random_range(0i64..1_000_000)).collect();
        let diff: Vec<i64> = (0..16).map(|_| c.random_range(0i64..1_000_000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let b = rng.random_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
            let u = rng.random_range(10usize..24);
            assert!((10..24).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    /// Consecutive seeds must land in uncorrelated orbits: first
    /// outputs all distinct, and neighbouring seeds' first outputs
    /// differ in roughly half their bits (SplitMix64 avalanche).
    #[test]
    fn spectral_sanity_adjacent_seeds_decorrelate() {
        use super::RngCore;
        let firsts: Vec<u64> = (0..1024u64)
            .map(|s| StdRng::seed_from_u64(s).next_u64())
            .collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "adjacent seeds collided");

        let mut total_hamming = 0u32;
        for pair in firsts.windows(2) {
            let d = (pair[0] ^ pair[1]).count_ones();
            total_hamming += d;
            assert!((8..=56).contains(&d), "weak diffusion: {d} bits flipped");
        }
        let mean = f64::from(total_hamming) / 1023.0;
        assert!((28.0..=36.0).contains(&mean), "mean hamming {mean}");
    }

    /// Every output bit — including the low bits xorshift variants get
    /// wrong — must be balanced, and the low bit must not serially
    /// correlate with its predecessor.
    #[test]
    fn spectral_sanity_low_bits_are_balanced() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(0xdead_beef);
        const N: u32 = 8192;
        let mut ones = [0u32; 64];
        let mut low_transitions = 0u32;
        let mut prev_low = 0u64;
        for i in 0..N {
            let v = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
            if i > 0 && (v & 1) != prev_low {
                low_transitions += 1;
            }
            prev_low = v & 1;
        }
        for (bit, &count) in ones.iter().enumerate() {
            let freq = f64::from(count) / f64::from(N);
            assert!((0.45..=0.55).contains(&freq), "bit {bit} freq {freq}");
        }
        // A serially-correlated low bit flips far more or far less
        // than half the time.
        let rate = f64::from(low_transitions) / f64::from(N - 1);
        assert!((0.45..=0.55).contains(&rate), "low-bit flip rate {rate}");
    }

    /// No short cycle: a window of consecutive outputs never repeats.
    /// (xoshiro256++ has period 2^256 − 1; a cycle short enough to
    /// observe would force a collision among these draws.)
    #[test]
    fn spectral_sanity_no_short_cycle() {
        use super::RngCore;
        for seed in [0u64, 1, u64::MAX] {
            let mut rng = StdRng::seed_from_u64(seed);
            let draws: Vec<u64> = (0..4096).map(|_| rng.next_u64()).collect();
            let mut sorted = draws.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), draws.len(), "cycle within 4096 (seed {seed})");
        }
    }

    /// The zero seed must not be a fixed point of the state update.
    #[test]
    fn spectral_sanity_zero_seed_escapes() {
        use super::{RngCore, SeedableRng};
        let mut z = super::rngs::StdRng::from_seed([0u8; 32]);
        let a = z.next_u64();
        let b = z.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
