//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the tiny subset of the `rand` API it
//! actually uses: a seedable deterministic generator (`rngs::StdRng`),
//! `SeedableRng::seed_from_u64`, and the `RngExt` helpers
//! `random_range` / `random_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms, which
//! is all the fixtures and schedulers in this repository rely on
//! (they never depend on matching upstream `rand`'s exact stream).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Builds a generator from a `u64` seed, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range usable with [`RngExt::random_range`]: exposes inclusive
/// integer bounds widened to `i128`.
pub trait SampleRange<T> {
    /// The `(low, high)` inclusive bounds; panics if the range is empty.
    fn bounds_inclusive(self) -> (i128, i128);

    /// Narrows a sampled `i128` back to `T`.
    fn narrow(v: i128) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn bounds_inclusive(self) -> (i128, i128) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start as i128, self.end as i128 - 1)
            }

            fn narrow(v: i128) -> $t {
                v as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn bounds_inclusive(self) -> (i128, i128) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start() as i128, *self.end() as i128)
            }

            fn narrow(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling helpers (mirrors `rand::Rng`).
pub trait RngExt: RngCore {
    /// A uniform sample from an integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds_inclusive();
        let width = (hi - lo + 1) as u128;
        // Widening multiply maps 64 random bits onto the width with
        // bias below width / 2^64 — immaterial for test fixtures.
        let offset = ((u128::from(self.next_u64()) * width) >> 64) as i128;
        R::narrow(lo + offset)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            (self.next_u64() as f64) < p * (u64::MAX as f64)
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..16).map(|_| a.random_range(0i64..1_000_000)).collect();
        let diff: Vec<i64> = (0..16).map(|_| c.random_range(0i64..1_000_000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let b = rng.random_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
            let u = rng.random_range(10usize..24);
            assert!((10..24).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }
}
