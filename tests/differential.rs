//! Differential testing between the symbolic engine and the concrete VM:
//! every input the engine generates from a solver model must reproduce
//! the same fault class at the same fault site when replayed concretely.

use statsym::concrete::{FaultKind, InputValue, Vm, VmConfig};
use statsym::symex::{Engine, EngineConfig, SchedulerKind};

/// Programs covering each fault class and input kind.
const PROGRAMS: &[(&str, &str)] = &[
    (
        "int_assert",
        r#"
        fn check(v: int) { assert(v * 3 < 250); }
        fn main() { let n: int = input_int("n"); if (n > 0) { check(n); } }
        "#,
    ),
    (
        "string_copy_overflow",
        r#"
        fn fill(s: str) {
            let b: buf[5];
            let i: int = 0;
            while (char_at(s, i) != 0) { buf_set(b, i, char_at(s, i)); i = i + 1; }
            buf_set(b, i, 0);
        }
        fn main() { let s: str = input_str("s", 10); fill(s); }
        "#,
    ),
    (
        "div_by_zero",
        r#"
        fn main() -> int {
            let d: int = input_int("d");
            let n: int = input_int("n");
            if (n > 5) { return n / (d - 7); }
            return 0;
        }
        "#,
    ),
    (
        "expansion_overflow",
        r#"
        fn expand(s: str) {
            let out: buf[9];
            let i: int = 0;
            let o: int = 0;
            while (char_at(s, i) != 0) {
                if (char_at(s, i) == '%') {
                    buf_set(out, o, '2'); buf_set(out, o + 1, '5');
                    o = o + 2;
                } else {
                    buf_set(out, o, char_at(s, i));
                    o = o + 1;
                }
                i = i + 1;
            }
            buf_set(out, o, 0);
        }
        fn main() { let s: str = input_str("s", 8); expand(s); }
        "#,
    ),
    (
        "global_state_guard",
        r#"
        global armed: int = 0;
        fn arm(v: int) { if (v > 9) { armed = 1; } }
        fn fire(v: int) -> int { if (armed == 1) { assert(v != 13); } return v; }
        fn main() {
            let v: int = input_int("v");
            arm(v);
            print(fire(v));
        }
        "#,
    ),
];

fn fault_class(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::BufferOverflow { .. } => "overflow",
        FaultKind::StringOob { .. } => "string-oob",
        FaultKind::AssertFailed => "assert",
        FaultKind::DivByZero => "div0",
        FaultKind::StackOverflow => "stack",
        FaultKind::AllocOverflow { .. } => "alloc-overflow",
        FaultKind::OffByOne { .. } => "off-by-one",
        FaultKind::FormatString { .. } => "format-string",
        FaultKind::UseAfterFree => "uaf",
    }
}

#[test]
fn engine_models_replay_concretely() {
    for (name, src) in PROGRAMS {
        let program = statsym::minic::parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let module = statsym::sir::lower(&program).unwrap();
        for scheduler in [
            SchedulerKind::Bfs,
            SchedulerKind::Dfs,
            SchedulerKind::Random { seed: 3 },
        ] {
            let mut engine = Engine::new(
                &module,
                EngineConfig {
                    scheduler,
                    ..EngineConfig::default()
                },
            );
            let report = engine.run();
            let found = report
                .outcome
                .found()
                .unwrap_or_else(|| panic!("{name}/{scheduler:?}: no fault found"));

            let vm = Vm::new(&module, VmConfig::default());
            let replay = vm.run(&found.inputs).unwrap();
            let fault = replay
                .outcome
                .fault()
                .unwrap_or_else(|| panic!("{name}/{scheduler:?}: input does not crash"));
            assert_eq!(
                fault_class(&fault.kind),
                fault_class(&found.fault.kind),
                "{name}/{scheduler:?}: fault class mismatch"
            );
            assert_eq!(fault.func, found.fault.func, "{name}: fault site");
        }
    }
}

#[test]
fn fault_free_programs_complete_under_symex() {
    let src = r#"
        fn clamp(v: int) -> int {
            if (v < 0) { return 0; }
            if (v > 100) { return 100; }
            return v;
        }
        fn main() -> int {
            let n: int = input_int("n");
            let c: int = clamp(n);
            assert(c >= 0);
            assert(c <= 100);
            return c;
        }
    "#;
    let module = statsym::sir::lower(&statsym::minic::parse_program(src).unwrap()).unwrap();
    let mut engine = Engine::new(&module, EngineConfig::default());
    let report = engine.run();
    assert!(
        matches!(report.outcome, statsym::symex::RunOutcome::Completed),
        "{:?}",
        report.outcome
    );
    // Every explored path's assertion held.
    assert!(report.stats.paths_completed >= 3);
}

#[test]
fn concrete_and_symbolic_agree_on_fixed_inputs() {
    // With every input pinned, symbolic execution degenerates to
    // concrete interpretation: one path, identical outcome.
    let src = r#"
        fn mix(a: int, b: int) -> int { return a * 31 + b % 7; }
        fn main() -> int {
            let a: int = input_int("a");
            let b: int = input_int("b");
            let r: int = mix(a, b);
            if (r > 100) { return r - 100; }
            return r;
        }
    "#;
    let module = statsym::sir::lower(&statsym::minic::parse_program(src).unwrap()).unwrap();
    for (a, b) in [(0i64, 0i64), (5, 13), (-4, 100), (1000, -1)] {
        let inputs: statsym::concrete::InputMap = [
            ("a".to_string(), InputValue::Int(a)),
            ("b".to_string(), InputValue::Int(b)),
        ]
        .into_iter()
        .collect();
        let vm = Vm::new(&module, VmConfig::default());
        let concrete_result = vm.run(&inputs).unwrap();

        let mut engine = Engine::new(&module, EngineConfig::default());
        engine.pin_input("a", InputValue::Int(a));
        engine.pin_input("b", InputValue::Int(b));
        let report = engine.run();
        assert!(
            matches!(report.outcome, statsym::symex::RunOutcome::Completed),
            "pinned run must complete"
        );
        assert_eq!(report.stats.paths_completed, 1, "single concrete path");
        // Outcome parity: the concrete run also terminated normally.
        assert!(concrete_result.outcome.is_success());
    }
}
