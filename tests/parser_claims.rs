//! End-to-end pipeline claims for the protocol-parser benchapps — the
//! heap-model fault families (off-by-one, alloc overflow, use-after-free,
//! format string) driven through the same statistics-guided pipeline as
//! the paper programs:
//!
//! 1. the pipeline localizes each parser's fault site (function + class);
//! 2. the winning candidate's rank is pinned per app (ranking
//!    calibration covers the new families);
//! 3. the merged telemetry trace is byte-identical across repeated runs
//!    at 1, 2, and 4 portfolio workers, and the found fault (inputs,
//!    kind, trace) is identical across worker counts;
//! 4. the same holds in work-stealing mode across state-worker counts.

use statsym::benchapps::{by_name, generate_corpus, BenchApp, CorpusSpec};
use statsym::concrete::FaultKind;
use statsym::core::pipeline::{StatSym, StatSymConfig, StatSymReport};
use statsym::core::AnalysisReport;
use statsym::sir::Module;
use statsym::telemetry::{Clock, FileRecorder, SharedBuf};

const SEED: u64 = 2017;

fn analysis_for(app: &BenchApp) -> AnalysisReport {
    let logs = generate_corpus(
        app,
        CorpusSpec {
            n_correct: 30,
            n_faulty: 30,
            sampling_rate: 0.3,
            seed: SEED,
        },
    );
    let analysis = StatSym::default().analyze(&logs);
    assert!(
        analysis.candidates.is_some(),
        "{}: no candidate paths",
        app.name
    );
    analysis
}

/// Deterministic portfolio config: no cancellation races, no shared
/// solver cache, so traces are scheduling-independent.
fn deterministic_config(workers: usize, state_workers: usize) -> StatSymConfig {
    let mut cfg = StatSymConfig {
        workers,
        cancel_on_found: false,
        share_cache: false,
        ..StatSymConfig::default()
    };
    cfg.engine.state_workers = state_workers;
    cfg
}

fn traced_run(
    module: &Module,
    analysis: &AnalysisReport,
    config: StatSymConfig,
) -> (Vec<u8>, StatSymReport) {
    let buf = SharedBuf::new();
    let rec = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
    let report = StatSym::new(config).run_with_analysis_traced(module, analysis.clone(), &rec);
    rec.finish().unwrap();
    (buf.contents(), report)
}

fn class_matches(name: &str, kind: &FaultKind) -> bool {
    match name {
        "http_header" => matches!(kind, FaultKind::OffByOne { cap: 8 }),
        "http_chunked" => matches!(kind, FaultKind::AllocOverflow { .. }),
        "urldecode" => matches!(kind, FaultKind::UseAfterFree),
        "base64" => matches!(kind, FaultKind::FormatString { .. }),
        other => panic!("unknown app {other}"),
    }
}

/// (app, fault function, pinned winner rank at SEED).
const CASES: [(&str, &str, usize); 4] = [
    ("http_header", "store_value", 0),
    ("http_chunked", "read_chunk", 0),
    ("urldecode", "decode", 0),
    ("base64", "log_reject", 0),
];

#[test]
fn pipeline_localizes_every_parser_fault_with_pinned_winner_rank() {
    for (name, fault_func, winner_rank) in CASES {
        let app = by_name(name).unwrap();
        let analysis = analysis_for(&app);
        let report =
            StatSym::new(deterministic_config(1, 0)).run_with_analysis(&app.module, analysis);
        let found = report
            .found
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: fault not found"));
        assert_eq!(found.fault.func, fault_func, "{name}");
        assert!(
            class_matches(name, &found.fault.kind),
            "{name}: {:?}",
            found.fault.kind
        );
        assert_eq!(
            report.candidate_used,
            Some(winner_rank),
            "{name}: winner rank"
        );
        // The found model replays concretely to the same fault.
        let vm = statsym::concrete::Vm::new(&app.module, statsym::concrete::VmConfig::default());
        let replay = vm.run(&found.inputs).unwrap();
        let rf = replay.outcome.fault().expect("replay faults");
        assert_eq!(rf.func, fault_func, "{name}: replay site");
        assert!(class_matches(name, &rf.kind), "{name}: replay class");
    }
}

#[test]
fn parser_traces_are_byte_identical_per_worker_count_and_agree_across() {
    for (name, fault_func, _) in CASES {
        let app = by_name(name).unwrap();
        let analysis = analysis_for(&app);
        let mut baseline: Option<StatSymReport> = None;
        for workers in [1usize, 2, 4] {
            let (a, ra) = traced_run(&app.module, &analysis, deterministic_config(workers, 0));
            let (b, rb) = traced_run(&app.module, &analysis, deterministic_config(workers, 0));
            assert!(!a.is_empty(), "{name}@{workers}: empty trace");
            assert_eq!(a, b, "{name}@{workers}: trace not byte-identical");
            assert_eq!(ra.candidate_used, rb.candidate_used);
            let fa = ra.found.as_ref().expect("found");
            assert_eq!(fa.fault.func, fault_func, "{name}@{workers}");
            match &baseline {
                None => baseline = Some(ra),
                Some(base) => {
                    let bf = base.found.as_ref().unwrap();
                    assert_eq!(ra.candidate_used, base.candidate_used, "{name}@{workers}");
                    assert_eq!(fa.inputs, bf.inputs, "{name}@{workers}: inputs");
                    assert_eq!(fa.fault, bf.fault, "{name}@{workers}: fault");
                    assert_eq!(fa.trace, bf.trace, "{name}@{workers}: call trace");
                }
            }
        }
    }
}

#[test]
fn steal_mode_parser_runs_are_deterministic_across_state_workers() {
    for (name, fault_func, _) in CASES {
        let app = by_name(name).unwrap();
        let analysis = analysis_for(&app);
        let mut baseline: Option<StatSymReport> = None;
        for state_workers in [1usize, 2, 4] {
            let (a, ra) = traced_run(
                &app.module,
                &analysis,
                deterministic_config(1, state_workers),
            );
            let (b, rb) = traced_run(
                &app.module,
                &analysis,
                deterministic_config(1, state_workers),
            );
            assert_eq!(
                a, b,
                "{name}@steal{state_workers}: trace not byte-identical"
            );
            assert_eq!(ra.candidate_used, rb.candidate_used);
            let fa = ra.found.as_ref().expect("found");
            assert_eq!(fa.fault.func, fault_func, "{name}@steal{state_workers}");
            assert!(class_matches(name, &fa.fault.kind));
            match &baseline {
                None => baseline = Some(ra),
                Some(base) => {
                    let bf = base.found.as_ref().unwrap();
                    assert_eq!(ra.candidate_used, base.candidate_used);
                    assert_eq!(fa.inputs, bf.inputs, "{name}@steal{state_workers}");
                    assert_eq!(fa.fault, bf.fault, "{name}@steal{state_workers}");
                }
            }
        }
    }
}
