//! Telemetry integration: a traced pipeline run must produce a JSONL
//! trace that (a) parses and round-trips byte-identically, (b)
//! reconciles exactly with the `StatSymReport`/`EngineStats` returned by
//! the same run, and (c) renders a stable run report under the
//! deterministic step clock.
//!
//! Everything here is rand-free: a handcrafted corpus at sampling rate
//! 1.0 with the step-count clock makes the whole trace reproducible
//! byte for byte.

use statsym::concrete::{run_logged_traced, ExecutionLog, InputValue, VmConfig};
use statsym::core::pipeline::{StatSym, StatSymReport};
use statsym::sir::Module;
use statsym::telemetry::{
    names, parse_trace, Clock, FileRecorder, Recorder, SharedBuf, TraceEvent, TraceSummary, NOOP,
};

/// The miniature polymorph from the pipeline tests: option-handling
/// noise plus an unchecked copy into a 6-byte stack buffer.
const SRC: &str = r#"
    global track: int = 0;
    fn helper_a(x: int) -> int { track = track + 1; return x + 1; }
    fn helper_b(x: int) -> int { track = track + 2; return x * 2; }
    fn convert(s: str) {
        let b: buf[6];
        let i: int = 0;
        while (char_at(s, i) != 0) {
            buf_set(b, i, char_at(s, i));
            i = i + 1;
        }
    }
    fn main() {
        let m: int = input_int("mode");
        let s: str = input_str("name", 12);
        if (m > 0) { print(helper_a(m)); } else { print(helper_b(m)); }
        convert(s);
    }
"#;

fn module() -> Module {
    statsym::sir::lower(&statsym::minic::parse_program(SRC).unwrap()).unwrap()
}

/// Deterministic corpus: names up to 6 bytes succeed, longer overflow.
/// Sampling rate 1.0 keeps every record without consulting the RNG.
fn corpus(module: &Module, rec: &dyn Recorder) -> Vec<ExecutionLog> {
    let mut logs = Vec::new();
    for len in [0usize, 2, 4, 6, 7, 9, 11, 12] {
        let name: Vec<u8> = std::iter::repeat_n(b'a', len).collect();
        let inputs = [
            ("mode".to_string(), InputValue::Int(len as i64 - 5)),
            ("name".to_string(), InputValue::Str(name)),
        ]
        .into_iter()
        .collect();
        let run = run_logged_traced(module, &inputs, 1.0, 0, VmConfig::default(), rec).unwrap();
        logs.push(run.log);
    }
    logs
}

/// Runs the traced pipeline into a byte sink; returns the trace bytes
/// and the report.
fn traced_run(module: &Module, logs: &[ExecutionLog]) -> (Vec<u8>, StatSymReport) {
    let buf = SharedBuf::new();
    let rec = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
    let report = StatSym::default().run_traced(module, logs, &rec);
    rec.finish().unwrap();
    (buf.contents(), report)
}

fn counter(events: &[TraceEvent], name: &str) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or(0)
}

#[test]
fn trace_counters_reconcile_with_report() {
    let m = module();
    let logs = corpus(&m, &NOOP);
    let n_records: u64 = logs.iter().map(|l| l.records.len() as u64).sum();
    let (bytes, report) = traced_run(&m, &logs);
    assert!(report.found.is_some(), "pipeline finds the overflow");

    let text = String::from_utf8(bytes).unwrap();
    let events = parse_trace(&text).expect("trace parses");

    // Engine counters: the trace accumulates per-run EngineStats across
    // candidate attempts, so sums must match exactly.
    let sum = |f: fn(&statsym::symex::EngineStats) -> u64| -> u64 {
        report.attempts.iter().map(|a| f(&a.stats)).sum()
    };
    assert_eq!(counter(&events, names::SYMEX_STEPS), sum(|s| s.exec.steps));
    assert_eq!(counter(&events, names::SYMEX_FORKS), sum(|s| s.exec.forks));
    assert_eq!(
        counter(&events, names::SYMEX_PRUNED),
        sum(|s| s.exec.pruned)
    );
    assert_eq!(
        counter(&events, names::SYMEX_SUSPENDED),
        sum(|s| s.exec.suspended)
    );
    assert_eq!(
        counter(&events, names::SYMEX_CONCRETIZATIONS),
        sum(|s| s.exec.concretizations)
    );
    assert_eq!(
        counter(&events, names::SYMEX_PATHS_EXPLORED),
        sum(|s| s.paths_explored)
    );
    assert_eq!(
        counter(&events, names::SYMEX_PATHS_COMPLETED),
        sum(|s| s.paths_completed)
    );
    assert_eq!(
        counter(&events, names::SYMEX_STATES_CREATED),
        sum(|s| s.states_created)
    );

    // Suspension causes partition the engine's suspended count.
    assert_eq!(
        counter(&events, names::SYMEX_SUSPEND_TAU)
            + counter(&events, names::SYMEX_SUSPEND_PREDICATE),
        sum(|s| s.exec.suspended)
    );

    // Solver counters: each attempt uses a fresh solver, so the traced
    // deltas sum to the per-attempt totals.
    assert_eq!(
        counter(&events, names::SOLVER_QUERIES),
        sum(|s| s.solver.queries)
    );
    assert_eq!(counter(&events, names::SOLVER_SAT), sum(|s| s.solver.sat));
    assert_eq!(
        counter(&events, names::SOLVER_UNSAT),
        sum(|s| s.solver.unsat)
    );
    assert_eq!(
        counter(&events, names::SOLVER_PROPAGATION_ROUNDS),
        sum(|s| s.solver.propagation_rounds)
    );
    assert_eq!(
        counter(&events, names::SOLVER_BACKTRACKS),
        sum(|s| s.solver.backtracks)
    );

    // Peaks surface as gauges (max across attempts).
    let peak_states = report
        .attempts
        .iter()
        .map(|a| a.stats.peak_live_states)
        .max()
        .unwrap() as i64;
    let gauge = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Gauge { name, value } if name == names::SYMEX_PEAK_LIVE_STATES => {
                Some(*value)
            }
            _ => None,
        })
        .expect("peak gauge present");
    assert_eq!(gauge, peak_states);

    // Monitor counters: sampling rate 1.0 keeps every record.
    let mem = statsym::telemetry::MemRecorder::new(Clock::steps());
    let _ = corpus(&m, &mem);
    let mon_events = mem.finish();
    assert_eq!(counter(&mon_events, names::MONITOR_SAMPLED), n_records);
    assert_eq!(counter(&mon_events, names::MONITOR_DROPPED), 0);
}

#[test]
fn pipeline_trace_is_byte_identical_across_runs() {
    let m = module();
    let logs = corpus(&m, &NOOP);
    let (a, _) = traced_run(&m, &logs);
    let (b, _) = traced_run(&m, &logs);
    assert!(!a.is_empty());
    assert_eq!(a, b, "step-clock traces must be byte-identical");
}

#[test]
fn trace_reemits_byte_identical_after_parse() {
    let m = module();
    let logs = corpus(&m, &NOOP);
    let (bytes, _) = traced_run(&m, &logs);
    let text = String::from_utf8(bytes).unwrap();
    let events = parse_trace(&text).unwrap();
    let reemitted: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
    assert_eq!(text, reemitted);
}

#[test]
fn run_report_matches_golden_file() {
    let m = module();
    let logs = corpus(&m, &NOOP);
    let (bytes, _) = traced_run(&m, &logs);
    let events = parse_trace(&String::from_utf8(bytes).unwrap()).unwrap();
    let rendered = TraceSummary::from_events(&events).render();
    let golden = include_str!("golden/trace_report.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_report.txt"),
            &rendered,
        )
        .unwrap();
        return;
    }
    assert_eq!(
        rendered, golden,
        "run report drifted from tests/golden/trace_report.txt; \
         re-bless with BLESS=1 cargo test --test telemetry_trace"
    );
}
