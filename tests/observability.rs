//! Fleet-observability contracts (DESIGN.md §17): the run-history
//! manifest must be byte-identical no matter how the run was scheduled,
//! and a crashing engine must still leave a usable diagnostic trail —
//! a complete crash bundle on disk and a well-formed terminal `end`
//! frame on any attached telemetry stream.

use statsym::concrete::{ExecutionLog, InputValue, VmConfig};
use statsym::core::pipeline::{config_fingerprint, StatSym, StatSymConfig};
use statsym::sir::Module;
use statsym::symex::EngineConfig;
use statsym::telemetry::crash::{CrashContext, CrashGuard};
use statsym::telemetry::manifest::{ManifestMeta, RunManifest};
use statsym::telemetry::{Clock, MemRecorder, StreamFrame, NOOP};
use std::sync::{Arc, Mutex};

/// Thread-safe byte sink standing in for a live `--stream` socket.
#[derive(Clone, Default)]
struct SyncBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SyncBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const SRC: &str = r#"
    global track: int = 0;
    fn helper_a(x: int) -> int { track = track + 1; return x + 1; }
    fn helper_b(x: int) -> int { track = track + 2; return x * 2; }
    fn convert(s: str) {
        let b: buf[6];
        let i: int = 0;
        while (char_at(s, i) != 0) {
            buf_set(b, i, char_at(s, i));
            i = i + 1;
        }
    }
    fn main() {
        let m: int = input_int("mode");
        let s: str = input_str("name", 12);
        if (m > 0) { print(helper_a(m)); } else { print(helper_b(m)); }
        convert(s);
    }
"#;

fn module() -> Module {
    statsym::sir::lower(&statsym::minic::parse_program(SRC).unwrap()).unwrap()
}

fn corpus(module: &Module) -> Vec<ExecutionLog> {
    let mut logs = Vec::new();
    for len in [0usize, 2, 4, 6, 7, 9, 11, 12] {
        let name: Vec<u8> = std::iter::repeat_n(b'a', len).collect();
        let inputs = [
            ("mode".to_string(), InputValue::Int(len as i64 - 5)),
            ("name".to_string(), InputValue::Str(name)),
        ]
        .into_iter()
        .collect();
        let run = statsym::concrete::run_logged_traced(
            module,
            &inputs,
            1.0,
            0,
            VmConfig::default(),
            &NOOP,
        )
        .unwrap();
        logs.push(run.log);
    }
    logs
}

/// Deterministic config: no cancellation races, no shared solver cache,
/// so worker buffers are scheduling-independent.
fn config(workers: usize, state_workers: usize) -> StatSymConfig {
    StatSymConfig {
        workers,
        cancel_on_found: false,
        share_cache: false,
        engine: EngineConfig {
            state_workers,
            ..EngineConfig::default()
        },
        ..StatSymConfig::default()
    }
}

fn meta(cfg: &StatSymConfig) -> ManifestMeta {
    ManifestMeta {
        source: "test".to_string(),
        run: "observability".to_string(),
        git: "deadbeef0000".to_string(),
        seed: 7,
        config: config_fingerprint(cfg),
    }
}

/// The tentpole identity contract: the manifest a run folds down to is
/// a property of the *workload*, not of how it was scheduled. Every
/// portfolio-worker x state-worker combination must render the same
/// bytes — config fingerprint included, because the fingerprint
/// canonicalizes scheduling knobs away.
#[test]
fn manifests_are_byte_identical_across_worker_and_state_worker_counts() {
    let m = module();
    let logs = corpus(&m);
    let analysis = StatSym::new(config(1, 1)).analyze(&logs);

    let manifest_for = |workers: usize, state_workers: usize| {
        let cfg = config(workers, state_workers);
        let meta = meta(&cfg);
        let rec = MemRecorder::new(Clock::steps());
        let _ = StatSym::new(cfg).run_with_analysis_traced(&m, analysis.clone(), &rec);
        RunManifest::from_events(&rec.finish(), &meta).render()
    };

    let baseline = manifest_for(1, 1);
    assert!(
        baseline.contains("\"kind\":\"statsym.manifest\""),
        "manifest must carry its kind tag: {baseline}"
    );
    for workers in [1usize, 2, 4] {
        for state_workers in [1usize, 2, 4] {
            let got = manifest_for(workers, state_workers);
            assert_eq!(
                baseline, got,
                "manifest must be byte-identical at workers={workers} \
                 state_workers={state_workers}"
            );
        }
    }
    // Rendering is itself deterministic: same run, same bytes.
    assert_eq!(baseline, manifest_for(1, 1));
}

/// The sequential (state_workers == 0) fallback loop and the
/// work-stealing scheduler agree on every workload metric — ticks,
/// winner, and all shared counters. Only the scheduler's own footprint
/// (`symex.sched_picks`, peak-memory) may differ, so history records
/// from the crash drill stay trend-comparable with fleet runs.
#[test]
fn sequential_fallback_agrees_on_workload_metrics() {
    let m = module();
    let logs = corpus(&m);
    let analysis = StatSym::new(config(1, 0)).analyze(&logs);

    let manifest_for = |state_workers: usize| {
        let cfg = config(1, state_workers);
        let meta = meta(&cfg);
        let rec = MemRecorder::new(Clock::steps());
        let _ = StatSym::new(cfg).run_with_analysis_traced(&m, analysis.clone(), &rec);
        RunManifest::from_events(&rec.finish(), &meta)
    };
    let mut seq = manifest_for(0);
    let mut par = manifest_for(2);
    assert_eq!(seq.ticks, par.ticks, "step clock must agree");
    assert_eq!(seq.winner_rank, par.winner_rank);
    assert_eq!(seq.budget, par.budget);
    for m in [&mut seq, &mut par] {
        m.counters.remove("symex.sched_picks");
        m.gauges.remove("symex.peak_memory_bytes");
    }
    assert_eq!(seq.counters, par.counters, "workload counters must agree");
    assert_eq!(seq.gauges, par.gauges, "workload gauges must agree");
}

/// A forced engine panic (the `--panic-after` chaos knob) must leave
/// the full diagnostic trail: the panic hook writes a complete crash
/// bundle (panic text, config, reproduce line, partial trace, crashed
/// manifest), and dropping the streaming recorder during unwind still
/// emits a parseable terminal `end` frame after the `hello`.
#[test]
fn engine_panic_yields_crash_bundle_and_stream_end_frame() {
    let m = module();
    let logs = corpus(&m);
    let analysis = StatSym::new(config(1, 0)).analyze(&logs);

    let dir = std::env::temp_dir().join(format!("statsym-obs-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let crash_dir = dir.join("crash");
    let trace_path = dir.join("partial.jsonl");
    std::fs::create_dir_all(&dir).unwrap();

    let mut cfg = config(1, 0);
    cfg.engine.panic_after = Some(40);
    let guard = CrashGuard::install(CrashContext {
        dir: crash_dir.to_string_lossy().into_owned(),
        run: "obs-drill".to_string(),
        reproduce: "statsym-portfolio --workers 1 --panic-after 40".to_string(),
        config: format!("{cfg:#?}"),
        trace_path: Some(trace_path.to_string_lossy().into_owned()),
        meta: ManifestMeta {
            run: "obs-drill".to_string(),
            ..meta(&cfg)
        },
    });

    // Stream the run into a shared buffer, as `--stream` would into a
    // live socket; the trace file doubles as the bundle's partial trace.
    let buf = SyncBuf::default();
    let stream = statsym::telemetry::StreamSink::from_writer(Box::new(buf.clone()), "obs-drill");
    let file = statsym::telemetry::FileSink::create(&trace_path).unwrap();
    let mut rec = statsym::telemetry::FanoutRecorder::new(Clock::steps());
    rec.add_sink(Box::new(file));
    rec.add_sink(Box::new(stream));

    let analysis2 = analysis.clone();
    let module2 = module();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = StatSym::new(cfg).run_with_analysis_traced(&module2, analysis2, &rec);
    }));
    assert!(outcome.is_err(), "panic_after=40 must actually panic");
    guard.disarm();
    drop(rec); // unwound recorder: flush sinks, emit the end frame

    // The bundle is complete: every required member is on disk and the
    // manifest records the crashed disposition.
    let bundle = crash_dir.join("obs-drill");
    for member in [
        "panic.txt",
        "config.txt",
        "reproduce.txt",
        "trace.partial.jsonl",
    ] {
        assert!(
            bundle.join(member).is_file(),
            "crash bundle must contain {member}"
        );
    }
    let manifest_line = std::fs::read_to_string(bundle.join("manifest.jsonl")).unwrap();
    let parsed = RunManifest::parse_line(manifest_line.trim(), 1).unwrap();
    assert_eq!(parsed.budget, "crashed");
    assert_eq!(parsed.run, "obs-drill");
    let panic_txt = std::fs::read_to_string(bundle.join("panic.txt")).unwrap();
    assert!(
        panic_txt.contains("forced engine panic"),
        "panic.txt must carry the payload: {panic_txt}"
    );

    // The stream is properly framed: hello first, end last, events (if
    // any survived the cut) in between — a `live` listener sees a clean
    // shutdown, not a dangling connection.
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "stream must carry hello + end: {text}");
    assert!(
        matches!(StreamFrame::parse(lines[0]), Some(StreamFrame::Hello { ref run, .. }) if run == "obs-drill"),
        "first frame must be hello: {}",
        lines[0]
    );
    assert!(
        matches!(
            StreamFrame::parse(lines[lines.len() - 1]),
            Some(StreamFrame::End { .. })
        ),
        "last frame must be end: {}",
        lines[lines.len() - 1]
    );

    let _ = std::fs::remove_dir_all(&dir);
}
