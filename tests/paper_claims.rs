//! The paper's headline evaluation claims (Table IV shape), asserted as
//! tests:
//!
//! 1. StatSym identifies the vulnerable path in **all four** programs;
//! 2. pure symbolic execution **fails with memory exhaustion** on
//!    CTree, thttpd, and Grep;
//! 3. pure symbolic execution **succeeds on polymorph**, but explores
//!    orders of magnitude more paths than StatSym (the paper reports
//!    8368 vs 63 paths and a ~15× slowdown);
//! 4. on average StatSym explores a large majority fewer paths (the
//!    paper reports 85.3% fewer).

use statsym::benchapps::{all_apps, by_name, generate_corpus, BenchApp, CorpusSpec};
use statsym::core::pipeline::StatSym;
use statsym::symex::{Engine, EngineConfig, ExhaustionReason, RunOutcome, SchedulerKind};

fn pure_run(app: &BenchApp, memory_budget: usize) -> statsym::symex::EngineReport {
    let mut engine = Engine::new(
        &app.module,
        EngineConfig {
            scheduler: SchedulerKind::Bfs,
            memory_budget,
            ..EngineConfig::default()
        },
    );
    for (n, v) in &app.pins {
        engine.pin_input(n.clone(), v.clone());
    }
    engine.run()
}

fn statsym_paths(app: &BenchApp, seed: u64) -> u64 {
    let logs = generate_corpus(
        app,
        CorpusSpec {
            n_correct: 30,
            n_faulty: 30,
            sampling_rate: 0.3,
            seed,
        },
    );
    let statsym = StatSym::default();
    let analysis = statsym.analyze(&logs);
    let candidates = analysis.candidates.as_ref().expect("candidates");
    let mut total = 0;
    for path in &candidates.paths {
        let hook = statsym::core::GuidedHook::new(path.clone(), statsym.config().guidance);
        let mut engine = Engine::with_hook(
            &app.module,
            EngineConfig {
                scheduler: SchedulerKind::Priority,
                ..EngineConfig::default()
            },
            Box::new(hook),
        );
        for (n, v) in &app.pins {
            engine.pin_input(n.clone(), v.clone());
        }
        let report = engine.run();
        total += report.stats.paths_explored;
        if report.outcome.is_found() {
            return total;
        }
    }
    panic!("{}: StatSym did not find the vulnerability", app.name);
}

#[test]
fn statsym_finds_all_four_vulnerabilities() {
    for app in all_apps() {
        let paths = statsym_paths(&app, 2017);
        assert!(paths > 0, "{}", app.name);
        // StatSym stays within a few hundred paths on every target.
        assert!(paths < 1000, "{}: {paths} paths", app.name);
    }
}

#[test]
fn pure_symbolic_execution_fails_on_ctree_thttpd_grep() {
    // Scaled-down memory budget so the (inevitable) exhaustion is
    // reached quickly in debug builds; see DESIGN.md for the scaling
    // argument. The budget is still far above what polymorph needs.
    for name in ["ctree", "thttpd", "grep"] {
        let app = by_name(name).unwrap();
        let report = pure_run(&app, 12 << 20);
        match report.outcome {
            RunOutcome::Exhausted(ExhaustionReason::Memory) => {}
            other => panic!("{name}: expected memory exhaustion, got {other:?}"),
        }
    }
}

#[test]
fn pure_symbolic_execution_finds_polymorph_but_slowly() {
    let app = by_name("polymorph").unwrap();
    let report = pure_run(&app, 64 << 20);
    let found = report
        .outcome
        .found()
        .expect("pure symbolic execution succeeds on polymorph");
    assert_eq!(found.fault.func, "convert_fileName");
    let pure_paths = report.stats.paths_explored;

    let guided_paths = statsym_paths(&app, 2017);
    assert!(
        pure_paths > guided_paths * 50,
        "pure {pure_paths} should dwarf guided {guided_paths}"
    );
}

#[test]
fn guided_explores_mostly_fewer_paths_shape() {
    // The paper's "on average 85.3% fewer paths": even against the pure
    // engine's *failure* points (where exploration stopped early), the
    // guided totals are a small fraction.
    let mut ratios = Vec::new();
    for app in all_apps() {
        let guided = statsym_paths(&app, 7) as f64;
        let pure = pure_run(&app, 12 << 20).stats.paths_explored as f64;
        ratios.push(1.0 - guided / pure.max(1.0));
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg > 0.85, "average path reduction {avg:.3} (paper: 0.853)");
}
