//! Cross-crate integration: the full StatSym pipeline — workload →
//! monitored concrete runs → statistical analysis → guided symbolic
//! execution → verified vulnerable path — on every benchmark target.

use statsym::benchapps::{by_name, generate_corpus, CorpusSpec};
use statsym::concrete::{Vm, VmConfig};
use statsym::core::pipeline::{StatSym, StatSymConfig};
use statsym::symex::{Engine, EngineConfig, SchedulerKind};

fn spec(seed: u64) -> CorpusSpec {
    CorpusSpec {
        n_correct: 30,
        n_faulty: 30,
        sampling_rate: 0.5,
        seed,
    }
}

/// Runs the pipeline on one app (with its option inputs pinned, as the
/// paper does for both engines) and verifies the result end-to-end.
fn check_app(name: &str, expected_fault_func: &str) {
    let app = by_name(name).expect("known benchmark");
    let logs = generate_corpus(&app, spec(99));
    let statsym = StatSym::new(StatSymConfig::default());
    let analysis = statsym.analyze(&logs);
    assert_eq!(
        analysis.failure_location.as_ref().map(|l| l.func.as_str()),
        Some(expected_fault_func),
        "{name}: failure location"
    );
    let candidates = analysis.candidates.as_ref().expect("candidate paths");
    assert!(!candidates.paths.is_empty());

    // Guided execution with pinned options.
    let mut found = None;
    for path in &candidates.paths {
        let hook = statsym::core::GuidedHook::new(path.clone(), statsym.config().guidance);
        let mut engine = Engine::with_hook(
            &app.module,
            EngineConfig {
                scheduler: SchedulerKind::Priority,
                ..EngineConfig::default()
            },
            Box::new(hook),
        );
        for (n, v) in &app.pins {
            engine.pin_input(n.clone(), v.clone());
        }
        let report = engine.run();
        if let statsym::symex::RunOutcome::Found(f) = report.outcome {
            found = Some(*f);
            break;
        }
    }
    let found = found.unwrap_or_else(|| panic!("{name}: no vulnerable path found"));
    assert_eq!(found.fault.func, expected_fault_func, "{name}: fault site");

    // The generated input must reproduce the crash on the concrete VM,
    // in the same function.
    let vm = Vm::new(&app.module, VmConfig::default());
    let replay = vm.run(&found.inputs).expect("replay runs");
    let fault = replay
        .outcome
        .fault()
        .unwrap_or_else(|| panic!("{name}: generated input did not crash"));
    assert_eq!(
        fault.func, expected_fault_func,
        "{name}: replayed fault site"
    );

    // The reported trace must be a plausible event sequence: starts at
    // main and ends inside the fault function without leaving it.
    assert_eq!(found.trace.first().map(|l| l.func.as_str()), Some("main"));
    assert!(found.trace.iter().any(|l| l.func == expected_fault_func));
}

#[test]
fn polymorph_end_to_end() {
    check_app("polymorph", "convert_fileName");
}

#[test]
fn ctree_end_to_end() {
    check_app("ctree", "initlinedraw");
}

#[test]
fn grep_end_to_end() {
    check_app("grep", "stonesoup_handle_taint");
}

#[test]
fn thttpd_end_to_end() {
    check_app("thttpd", "defang");
}

#[test]
fn motivating_end_to_end() {
    let app = by_name("motivating").unwrap();
    let logs = generate_corpus(&app, spec(5));
    let report = StatSym::default().run(&app.module, &logs);
    let found = report.found.expect("fault found");
    assert_eq!(found.fault.func, "vul_func");
    // The paper's Figure 2 constraint: m must be at least 4 (loop runs
    // to a >= 3) and below 1000 (else branch).
    match found.inputs.get("sym_m") {
        Some(statsym::concrete::InputValue::Int(m)) => {
            assert!((4..1000).contains(m), "m = {m}");
        }
        other => panic!("unexpected input {other:?}"),
    }
}

#[test]
fn pipeline_is_deterministic() {
    let app = by_name("ctree").unwrap();
    let logs = generate_corpus(&app, spec(123));
    let a = StatSym::default().run(&app.module, &logs);
    let b = StatSym::default().run(&app.module, &logs);
    assert_eq!(a.found.is_some(), b.found.is_some());
    assert_eq!(a.candidate_used, b.candidate_used);
    assert_eq!(a.total_paths_explored(), b.total_paths_explored());
    assert_eq!(
        a.found.map(|f| f.inputs),
        b.found.map(|f| f.inputs),
        "generated inputs must be identical"
    );
}
