//! Native concurrent trace recording (DESIGN.md §10): a `--workers 4`
//! portfolio run must produce a merged trace that is (a) byte-identical
//! across repeated runs, (b) span-for-span identical to the sequential
//! (`workers == 1`) trace for the winning candidate, and (c) reconciles
//! exactly with the reported `EngineStats` — no replay, the worker
//! buffers carry the real spans and counters.
//!
//! Everything is rand-free: the handcrafted corpus from the telemetry
//! tests plus two structurally unsatisfiable decoy candidates appended
//! *behind* the real ranking, so the portfolio overshoots past the
//! winner and exercises the `portfolio.overshoot.` merge path.

use statsym::concrete::{ExecutionLog, InputValue, Location, Measure, VarId, VarRole, VmConfig};
use statsym::core::pipeline::{StatSym, StatSymConfig, StatSymReport};
use statsym::core::{AnalysisReport, CandidatePath, PathNode, PredOp, Predicate};
use statsym::sir::Module;
use statsym::telemetry::{
    names, parse_trace_strict, Clock, FieldValue, FileRecorder, SharedBuf, TraceEvent,
    TraceSummary, NOOP,
};

const SRC: &str = r#"
    global track: int = 0;
    fn helper_a(x: int) -> int { track = track + 1; return x + 1; }
    fn helper_b(x: int) -> int { track = track + 2; return x * 2; }
    fn convert(s: str) {
        let b: buf[6];
        let i: int = 0;
        while (char_at(s, i) != 0) {
            buf_set(b, i, char_at(s, i));
            i = i + 1;
        }
    }
    fn main() {
        let m: int = input_int("mode");
        let s: str = input_str("name", 12);
        if (m > 0) { print(helper_a(m)); } else { print(helper_b(m)); }
        convert(s);
    }
"#;

fn module() -> Module {
    statsym::sir::lower(&statsym::minic::parse_program(SRC).unwrap()).unwrap()
}

fn corpus(module: &Module) -> Vec<ExecutionLog> {
    let mut logs = Vec::new();
    for len in [0usize, 2, 4, 6, 7, 9, 11, 12] {
        let name: Vec<u8> = std::iter::repeat_n(b'a', len).collect();
        let inputs = [
            ("mode".to_string(), InputValue::Int(len as i64 - 5)),
            ("name".to_string(), InputValue::Str(name)),
        ]
        .into_iter()
        .collect();
        let run = statsym::concrete::run_logged_traced(
            module,
            &inputs,
            1.0,
            0,
            VmConfig::default(),
            &NOOP,
        )
        .unwrap();
        logs.push(run.log);
    }
    logs
}

/// A candidate whose single node injects a structurally unsatisfiable
/// predicate: every state reaching `convert` suspends, so the attempt
/// burns real engine work without ever ranking above the true winner.
fn decoy_candidate() -> CandidatePath {
    CandidatePath {
        nodes: vec![PathNode {
            loc: Location::enter("convert"),
            predicates: vec![Predicate {
                loc: Location::enter("convert"),
                var: VarId::new("track", VarRole::Global, Measure::Value),
                op: PredOp::Gt,
                threshold: 1e9,
                score: 1.0,
                support: 5,
            }],
        }],
        score: 9.0,
    }
}

/// The shared analysis: real ranking first, two decoys appended behind
/// it so worker counts > 1 overshoot past the rank-0 winner.
fn analysis_with_overshoot(module: &Module) -> AnalysisReport {
    let logs = corpus(module);
    let mut analysis = StatSym::default().analyze(&logs);
    let paths = &mut analysis.candidates.as_mut().expect("candidates").paths;
    paths.push(decoy_candidate());
    paths.push(decoy_candidate());
    assert!(paths.len() >= 3, "need overshoot candidates");
    analysis
}

/// Deterministic portfolio config: no cancellation races, no shared
/// solver cache, so worker buffers are scheduling-independent.
fn deterministic_config(workers: usize) -> StatSymConfig {
    StatSymConfig {
        workers,
        cancel_on_found: false,
        share_cache: false,
        ..StatSymConfig::default()
    }
}

/// Runs the guided-execution stage traced into a byte sink.
fn traced_run(
    module: &Module,
    analysis: &AnalysisReport,
    config: StatSymConfig,
) -> (Vec<u8>, StatSymReport) {
    let buf = SharedBuf::new();
    let rec = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
    let report = StatSym::new(config).run_with_analysis_traced(module, analysis.clone(), &rec);
    rec.finish().unwrap();
    (buf.contents(), report)
}

fn counter(events: &[TraceEvent], name: &str) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or(0)
}

#[test]
fn merged_workers4_trace_is_byte_identical_across_runs() {
    let m = module();
    let analysis = analysis_with_overshoot(&m);
    let (a, ra) = traced_run(&m, &analysis, deterministic_config(4));
    let (b, rb) = traced_run(&m, &analysis, deterministic_config(4));
    assert!(ra.found.is_some());
    assert_eq!(ra.candidate_used, rb.candidate_used);
    assert!(!a.is_empty());
    assert_eq!(a, b, "merged portfolio traces must be byte-identical");
    // And structurally valid: balanced spans, unique ids.
    parse_trace_strict(&String::from_utf8(a).unwrap()).expect("strict parse");
}

/// The winning candidate's subtree as `(kind, name, relative tick)`
/// triples — the span-for-span shape, independent of absolute ids.
fn winner_subtree(events: &[TraceEvent]) -> Vec<(String, String, u64)> {
    let mut names_by_id = std::collections::HashMap::new();
    let mut out = Vec::new();
    let mut root: Option<(u64, u64)> = None; // (id, t0)
    let mut depth = 0usize;
    for ev in events {
        match ev {
            TraceEvent::SpanOpen { t, id, name, .. } => {
                names_by_id.insert(*id, name.clone());
                if root.is_none() && name == names::CANDIDATE_ATTEMPT {
                    root = Some((*id, *t));
                }
                if let Some((_, t0)) = root {
                    depth += 1;
                    out.push(("open".into(), name.clone(), t - t0));
                }
            }
            TraceEvent::SpanClose { t, id } => {
                if let Some((rid, t0)) = root {
                    let name = names_by_id.get(id).cloned().unwrap_or_default();
                    out.push(("close".into(), name, t - t0));
                    depth -= 1;
                    if *id == rid {
                        assert_eq!(depth, 0);
                        return out;
                    }
                }
            }
            TraceEvent::Event { t, name, .. } => {
                if let Some((_, t0)) = root {
                    out.push(("event".into(), name.clone(), t - t0));
                }
            }
            _ => {}
        }
    }
    panic!("no closed candidate.attempt span in trace");
}

#[test]
fn workers4_winner_reconciles_span_for_span_with_sequential() {
    let m = module();
    let analysis = analysis_with_overshoot(&m);
    let (seq_bytes, seq) = traced_run(&m, &analysis, deterministic_config(1));
    let (par_bytes, par) = traced_run(&m, &analysis, deterministic_config(4));

    // Identical result: same winner, same vulnerable input.
    assert_eq!(par.candidate_used, seq.candidate_used);
    let (sf, pf) = (seq.found.as_ref().unwrap(), par.found.as_ref().unwrap());
    assert_eq!(pf.inputs, sf.inputs);
    assert_eq!(pf.trace, sf.trace);

    let seq_events = parse_trace_strict(&String::from_utf8(seq_bytes).unwrap()).unwrap();
    let par_events = parse_trace_strict(&String::from_utf8(par_bytes).unwrap()).unwrap();

    // The winner's merged buffer replays the exact span/event shape the
    // sequential loop recorded live, tick for tick.
    assert_eq!(winner_subtree(&par_events), winner_subtree(&seq_events));

    // Winning-attempt engine counters agree between the two traces: the
    // sequential trace stops at the winner, and in the portfolio trace
    // the losers' work lives only under portfolio.overshoot.*.
    for name in [
        names::SYMEX_STEPS,
        names::SYMEX_FORKS,
        names::SYMEX_PATHS_EXPLORED,
        names::SYMEX_STATES_CREATED,
        names::SOLVER_QUERIES,
        names::SOLVER_SAT,
        names::SOLVER_UNSAT,
        names::SOLVER_NODES,
    ] {
        assert_eq!(
            counter(&par_events, name),
            counter(&seq_events, name),
            "counter {name}"
        );
    }
}

#[test]
fn inspect_summary_reconciles_with_portfolio_report() {
    let m = module();
    let analysis = analysis_with_overshoot(&m);
    let (bytes, report) = traced_run(&m, &analysis, deterministic_config(4));
    let events = parse_trace_strict(&String::from_utf8(bytes).unwrap()).unwrap();
    let s = TraceSummary::from_events(&events);

    // Engine counters in the merged trace are exactly the sums over the
    // reported attempts — recorded natively by the workers, not
    // replayed from stats.
    let sum = |f: fn(&statsym::symex::EngineStats) -> u64| -> u64 {
        report.attempts.iter().map(|a| f(&a.stats)).sum()
    };
    assert_eq!(s.counter(names::SYMEX_STEPS), sum(|st| st.exec.steps));
    assert_eq!(s.counter(names::SYMEX_FORKS), sum(|st| st.exec.forks));
    assert_eq!(
        s.counter(names::SYMEX_PATHS_EXPLORED),
        sum(|st| st.paths_explored)
    );
    assert_eq!(
        s.counter(names::SOLVER_QUERIES),
        sum(|st| st.solver.queries)
    );
    assert_eq!(s.counter(names::SOLVER_SAT), sum(|st| st.solver.sat));
    assert_eq!(s.counter(names::SOLVER_UNSAT), sum(|st| st.solver.unsat));

    // Overshoot work is present but quarantined under the prefix, and
    // its steps agree with the portfolio.attempt overshoot events.
    let overshoot_steps: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Event { name, fields, .. } if name == names::PORTFOLIO_ATTEMPT => fields
                .iter()
                .find(|(k, _)| k == "steps")
                .and_then(|(_, v)| match v {
                    FieldValue::Uint(v) => Some(*v),
                    _ => None,
                }),
            _ => None,
        })
        .sum();
    assert!(overshoot_steps > 0, "decoys must actually run");
    let prefixed = format!(
        "{}{}",
        names::PORTFOLIO_OVERSHOOT_PREFIX,
        names::SYMEX_STEPS
    );
    assert_eq!(s.counter(&prefixed), overshoot_steps);

    // Per-callsite solver profile made it through the merge.
    assert!(
        s.counter_opt("solver.site.feasibility.queries").is_some(),
        "profiling hooks recorded per-site counters"
    );
    // Worker count is clamped to the number of candidate paths.
    let n_paths = analysis.candidates.as_ref().unwrap().paths.len() as u64;
    assert_eq!(s.counter(names::PORTFOLIO_WORKERS), n_paths.min(4));
    // share_cache = false: the shared cache reports zero consults.
    assert_eq!(s.counter(names::PORTFOLIO_CACHE_HITS), 0);
    assert_eq!(s.counter(names::PORTFOLIO_CACHE_MISSES), 0);
}

/// The schedule-independent attribution/calibration projection of a
/// trace: canonical `attr.*` totals, canonical calibration records and
/// gauges, and the winner attempt's query provenance stripped of
/// timestamps (splice offsets shift `t`; everything else is pinned).
type AttrProjection = (
    Vec<(String, [u64; 6])>,
    Vec<(u64, i64, u64, u64, u64, u64, u64, bool)>,
    Option<i64>,
    Option<i64>,
    Vec<(u64, String, String, String, String, u64, u64)>,
);

fn attr_projection(events: &[TraceEvent], winner_rank: u64) -> AttrProjection {
    let s = TraceSummary::from_events(events);
    let attr = s.attr_locs().into_iter().collect();
    let calib = s
        .calib
        .iter()
        .map(|c| {
            (
                c.rank,
                c.score_milli,
                c.path_len,
                c.steps,
                c.forks,
                c.snodes,
                c.solver_us,
                c.found,
            )
        })
        .collect();
    let queries = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Query {
                sid,
                loc,
                rank,
                site,
                verdict,
                cache,
                nodes,
                us,
                ..
            } if *rank == winner_rank => Some((
                *sid,
                loc.clone(),
                site.clone(),
                verdict.clone(),
                cache.clone(),
                *nodes,
                *us,
            )),
            _ => None,
        })
        .collect();
    (
        attr,
        calib,
        s.gauge(names::CALIB_WINNER_RANK),
        s.gauge(names::CALIB_RANK_COST_CORR),
        queries,
    )
}

#[test]
fn attribution_and_calibration_are_identical_across_worker_counts() {
    let m = module();
    let analysis = analysis_with_overshoot(&m);
    let project = |workers: usize, state_workers: usize| -> AttrProjection {
        let mut cfg = deterministic_config(workers);
        cfg.engine.attribution = true;
        cfg.engine.provenance = true;
        cfg.engine.state_workers = state_workers;
        let (bytes, report) = traced_run(&m, &analysis, cfg);
        assert!(report.found.is_some(), "{workers}x{state_workers}");
        let events = parse_trace_strict(&String::from_utf8(bytes).unwrap()).unwrap();
        attr_projection(&events, 1)
    };
    // Two comparison groups: the legacy single-threaded loop
    // (state_workers == 0) and steal mode (state_workers >= 1) explore
    // in different orders, so work-until-found legitimately differs
    // *between* them — but within each mode the projection must be
    // independent of portfolio width and state-worker count.
    for (label, state_workers, widths) in [
        ("legacy", 0usize, &[1usize, 2, 4][..]),
        ("steal", 4, &[1, 2][..]),
    ] {
        let base = project(widths[0], state_workers);
        // The projection is non-trivial: real attribution rows, a
        // winner calibration record, and provenance-stamped queries.
        assert!(!base.0.is_empty(), "{label}: attr.* counters expected");
        assert_eq!(
            base.1.len(),
            1,
            "{label}: one sequential-equivalent attempt"
        );
        assert_eq!(base.1[0].0, 1, "{label}: winner record carries rank 1");
        assert!(base.1[0].7, "{label}: winner record marks found");
        assert_eq!(base.2, Some(1), "{label}: winner-rank gauge");
        assert!(!base.4.is_empty(), "{label}: query events expected");
        let attributed: u64 = base.0.iter().map(|(_, d)| d[0]).sum();
        assert!(attributed > 0, "{label}: attributed steps expected");
        for &w in &widths[1..] {
            assert_eq!(
                project(w, state_workers),
                base,
                "attribution/calibration diverged at {w} {label} workers"
            );
        }
        // Steal mode additionally must not care about its own width.
        if state_workers > 0 {
            assert_eq!(
                project(widths[0], 1),
                base,
                "attribution/calibration diverged across state-worker counts"
            );
        }
    }
}

#[test]
fn cancellation_run_still_parses_and_reconciles() {
    let m = module();
    let analysis = analysis_with_overshoot(&m);
    // Default racy mode: cancellation on, shared cache on. The result
    // must still match the sequential one and the trace must stay
    // structurally valid with counters reconciling attempt-for-attempt.
    let cfg = StatSymConfig {
        workers: 4,
        ..StatSymConfig::default()
    };
    let (bytes, report) = traced_run(&m, &analysis, cfg);
    let seq = StatSym::default().run_with_analysis(&m, analysis.clone());
    assert_eq!(report.candidate_used, seq.candidate_used);
    assert_eq!(
        report.found.as_ref().map(|f| &f.inputs),
        seq.found.as_ref().map(|f| &f.inputs)
    );
    let events = parse_trace_strict(&String::from_utf8(bytes).unwrap()).expect("strict parse");
    let s = TraceSummary::from_events(&events);
    let steps: u64 = report.attempts.iter().map(|a| a.stats.exec.steps).sum();
    assert_eq!(s.counter(names::SYMEX_STEPS), steps);
}
