//! Symbolic execution states.

use crate::value::{SymBuf, SymValue};
use concrete::Location;
use sir::{BlockId, FuncId, Reg};
use solver::Constraint;
use std::sync::Arc;

/// A persistent (structurally shared) list of path constraints. Forked
/// children share their parent's prefix, so appending is O(1) and does
/// not copy the path condition.
#[derive(Debug, Clone, Default)]
pub struct CondList {
    head: Option<Arc<CondNode>>,
    len: usize,
}

#[derive(Debug)]
struct CondNode {
    c: Constraint,
    parent: Option<Arc<CondNode>>,
}

impl CondList {
    /// The empty condition.
    pub fn new() -> CondList {
        CondList::default()
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no constraints have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a new list with `c` appended (the receiver is unchanged).
    #[must_use]
    pub fn push(&self, c: Constraint) -> CondList {
        CondList {
            head: Some(Arc::new(CondNode {
                c,
                parent: self.head.clone(),
            })),
            len: self.len + 1,
        }
    }

    /// Collects the conjuncts, oldest first.
    pub fn to_vec(&self) -> Vec<Constraint> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.push(node.c);
            cur = node.parent.as_deref();
        }
        out.reverse();
        out
    }
}

/// A persistent trace of function-boundary events (for the final
/// vulnerable-path report).
#[derive(Debug, Clone, Default)]
pub struct TraceList {
    head: Option<Arc<TraceNode>>,
    len: usize,
}

#[derive(Debug)]
struct TraceNode {
    loc: Location,
    parent: Option<Arc<TraceNode>>,
}

impl TraceList {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a new trace with `loc` appended.
    #[must_use]
    pub fn push(&self, loc: Location) -> TraceList {
        TraceList {
            head: Some(Arc::new(TraceNode {
                loc,
                parent: self.head.clone(),
            })),
            len: self.len + 1,
        }
    }

    /// Collects the events, oldest first.
    pub fn to_vec(&self) -> Vec<Location> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.push(node.loc.clone());
            cur = node.parent.as_deref();
        }
        out.reverse();
        out
    }
}

/// One stack frame of a symbolic state.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The function being executed.
    pub func: FuncId,
    /// Current basic block.
    pub block: BlockId,
    /// Next instruction index within the block.
    pub idx: usize,
    /// Register file.
    pub regs: Vec<SymValue>,
    /// Caller register receiving the return value.
    pub ret_dst: Option<Reg>,
}

/// Guidance bookkeeping attached to each state by the statistics-guided
/// scheduler (paper §V-C): progress along the candidate path and the
/// number of diverted hops since the last matched node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateMeta {
    /// Index of the last candidate-path node this state matched.
    pub progress: usize,
    /// Function-boundary events observed since the last match.
    pub hops: u32,
}

/// A symbolic execution state: one explored path prefix.
#[derive(Debug, Clone)]
pub struct State {
    /// Unique id (assigned at fork, deterministic).
    pub id: u64,
    /// Call stack.
    pub frames: Vec<Frame>,
    /// Global variable values.
    pub globals: Vec<SymValue>,
    /// Buffer heap (cloned on fork; buffers are mutable).
    pub heap: Vec<SymBuf>,
    /// Hard path constraints (branch decisions taken).
    pub path: CondList,
    /// Soft constraints injected by statistical guidance. Violating them
    /// suspends a state instead of killing it (paper footnote 1).
    pub soft: CondList,
    /// Function-boundary event trace.
    pub trace: TraceList,
    /// Branch (fork) depth.
    pub depth: u32,
    /// Guidance bookkeeping.
    pub meta: StateMeta,
    /// Set when a suspended state is resumed: guidance is disabled so the
    /// state cannot be re-suspended (fallback to pure symbolic execution,
    /// paper footnote 1).
    pub guidance_off: bool,
}

impl State {
    /// The active frame.
    ///
    /// # Panics
    ///
    /// Panics if the state has terminated (empty stack).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("state has an active frame")
    }

    /// The active frame, mutably.
    ///
    /// # Panics
    ///
    /// Panics if the state has terminated (empty stack).
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("state has an active frame")
    }

    /// All constraints relevant to feasibility: hard path conditions
    /// followed by soft guidance constraints.
    pub fn all_constraints(&self) -> Vec<Constraint> {
        let mut v = self.path.to_vec();
        v.extend(self.soft.to_vec());
        v
    }

    /// Approximate resident size in bytes, used for the engine's memory
    /// budget (the paper's KLEE runs fail by exhausting memory).
    pub fn est_bytes(&self) -> usize {
        let regs: usize = self
            .frames
            .iter()
            .map(|f| 64 + f.regs.iter().map(SymValue::est_bytes).sum::<usize>())
            .sum();
        let heap: usize = self.heap.iter().map(|b| 16 + b.cells.len() * 4).sum();
        let globals: usize = self.globals.iter().map(SymValue::est_bytes).sum();
        // Persistent lists are shared; attribute one node to this state.
        let conds = 48 + self.path.len() * 2 + self.soft.len() * 2;
        regs + heap + globals + conds + 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver::{CmpOp, Constraint, TermCtx};

    #[test]
    fn condlist_is_persistent() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 9);
        let c0 = ctx.int(0);
        let c1 = ctx.int(1);
        let a = Constraint::new(CmpOp::Ne, x, c0);
        let b = Constraint::new(CmpOp::Eq, x, c1);

        let base = CondList::new().push(a);
        let left = base.push(b);
        let right = base.push(b.negate());
        assert_eq!(base.to_vec(), vec![a]);
        assert_eq!(left.to_vec(), vec![a, b]);
        assert_eq!(right.to_vec(), vec![a, b.negate()]);
        assert_eq!(left.len(), 2);
    }

    #[test]
    fn tracelist_orders_oldest_first() {
        let t = TraceList::default()
            .push(Location::enter("main"))
            .push(Location::enter("f"))
            .push(Location::leave("f"));
        let v = t.to_vec();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], Location::enter("main"));
        assert_eq!(v[2], Location::leave("f"));
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_lists() {
        assert!(CondList::new().is_empty());
        assert!(CondList::new().to_vec().is_empty());
        assert!(TraceList::default().to_vec().is_empty());
    }
}
