//! Symbolic execution engine over SIR — the KLEE-equivalent substrate.
//!
//! The engine interprets SIR symbolically: program inputs become solver
//! variables, branches on symbolic conditions fork states, and faults
//! (buffer overflows, assertion failures, division by zero) terminate
//! exploration with a complete vulnerable path, its constraints, and a
//! concrete triggering input generated from the solver model.
//!
//! The paper's statistics-guided mode plugs in through two seams:
//!
//! * [`hook::EventHook`] — called at every function entry/exit; may add
//!   *soft* constraints (intra-function predicate guidance) or suspend a
//!   state (inter-function hop guidance);
//! * [`scheduler::SchedulerKind::Priority`] — orders states by the
//!   hook-computed priority (fewer diverted hops first).
//!
//! Pure symbolic execution (the paper's KLEE baseline) is the same
//! engine with [`hook::NoGuidance`] and a BFS/DFS/random scheduler.
//!
//! # Example
//!
//! ```
//! use symex::{Engine, EngineConfig};
//!
//! let program = minic::parse_program(r#"
//!     fn main() {
//!         let n: int = input_int("n");
//!         assert(n < 1000);
//!     }
//! "#)?;
//! let module = sir::lower(&program)?;
//! let mut engine = Engine::new(&module, EngineConfig::default());
//! let report = engine.run();
//! let found = report.outcome.found().expect("assertion violable");
//! assert_eq!(found.fault.func, "main");
//! # Ok::<(), minic::Error>(())
//! ```

mod attr;
pub mod engine;
mod executor;
pub mod hook;
mod lineage;
pub mod scheduler;
pub mod state;
mod steal;
pub mod value;

pub use engine::{
    outcome_label, record_run_telemetry, Budget, Engine, EngineConfig, EngineReport, EngineStats,
    ExhaustionReason, FoundVulnerability, RunOutcome,
};
pub use executor::ExecStats;
pub use hook::{EventCtx, EventHook, GuidanceResult, NoGuidance};
pub use scheduler::{Scheduler, SchedulerKind};
pub use state::{CondList, State, StateMeta, TraceList};
pub use value::{BoolVal, SymBuf, SymStr, SymValue};
