//! Symbolic runtime values.

use solver::{Constraint, TermCtx, TermId};
use std::sync::Arc;

/// A symbolic boolean: either a known constant or an atomic comparison
/// over integer terms. MiniC lowers `&&`/`||` to control flow, so a
/// single atom is always sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolVal {
    /// A known boolean.
    Const(bool),
    /// The truth value of an atomic constraint.
    Atom(Constraint),
}

impl BoolVal {
    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> BoolVal {
        match self {
            BoolVal::Const(b) => BoolVal::Const(!b),
            BoolVal::Atom(c) => BoolVal::Atom(c.negate()),
        }
    }

    /// The constant value, if known.
    pub fn as_const(self) -> Option<bool> {
        match self {
            BoolVal::Const(b) => Some(b),
            BoolVal::Atom(_) => None,
        }
    }
}

/// A symbolic string: `cap` content byte cells (each a term in
/// `[0, 255]`) with a guaranteed NUL terminator at index `cap`.
///
/// The string's *length* is not stored — it is the index of the first
/// zero byte, and materializes through path constraints as the program
/// iterates (exactly how C code observes string length).
///
/// Reads between an earlier NUL and `cap` are defined (they read bytes
/// inside the allocation), matching C semantics for a `char[cap + 1]`
/// buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymStr {
    /// Byte cells; index `cap` is an implicit constant 0.
    pub bytes: Arc<Vec<TermId>>,
}

impl SymStr {
    /// Builds a fully concrete string.
    pub fn concrete(ctx: &mut TermCtx, bytes: &[u8]) -> SymStr {
        SymStr {
            bytes: Arc::new(bytes.iter().map(|&b| ctx.int(b as i64)).collect()),
        }
    }

    /// Capacity (content bytes before the guaranteed terminator).
    pub fn cap(&self) -> usize {
        self.bytes.len()
    }

    /// The byte term at `idx`; `idx == cap` yields the constant 0.
    ///
    /// # Panics
    ///
    /// Panics if `idx > cap` (callers bounds-check first).
    pub fn byte_at(&self, ctx: &mut TermCtx, idx: usize) -> TermId {
        if idx == self.cap() {
            ctx.int(0)
        } else {
            self.bytes[idx]
        }
    }
}

/// A symbolic buffer: fixed capacity, mutable byte cells, plus the heap
/// lifetime metadata the use-after-free / off-by-one checks need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymBuf {
    /// Cell terms; length is the capacity.
    pub cells: Vec<TermId>,
    /// False once `free` released the cell; any later access faults.
    pub live: bool,
    /// True for `alloc`-produced buffers. Dynamic buffers classify an
    /// access at exactly `cap` as [`concrete::FaultKind::OffByOne`];
    /// stack buffers keep the legacy overflow classification.
    pub dynamic: bool,
}

impl SymBuf {
    /// A live stack (fixed-capacity) buffer.
    pub fn stack(cells: Vec<TermId>) -> SymBuf {
        SymBuf {
            cells,
            live: true,
            dynamic: false,
        }
    }

    /// A live dynamic (`alloc`-produced) buffer.
    pub fn dynamic(cells: Vec<TermId>) -> SymBuf {
        SymBuf {
            cells,
            live: true,
            dynamic: true,
        }
    }
}

/// A symbolic value held in a register or global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymValue {
    /// An integer term (constants are interned terms too).
    Int(TermId),
    /// A boolean.
    Bool(BoolVal),
    /// A string.
    Str(SymStr),
    /// Reference into the state's buffer heap.
    Buf(usize),
    /// Result of a void call; never read.
    Unit,
}

impl SymValue {
    /// Integer term payload.
    ///
    /// # Panics
    ///
    /// Panics on non-`Int` values (ruled out by the type checker).
    pub fn as_int(&self) -> TermId {
        match self {
            SymValue::Int(t) => *t,
            other => panic!("expected int value, found {other:?}"),
        }
    }

    /// Boolean payload.
    ///
    /// # Panics
    ///
    /// Panics on non-`Bool` values.
    pub fn as_bool(&self) -> BoolVal {
        match self {
            SymValue::Bool(b) => *b,
            other => panic!("expected bool value, found {other:?}"),
        }
    }

    /// String payload.
    ///
    /// # Panics
    ///
    /// Panics on non-`Str` values.
    pub fn as_str(&self) -> &SymStr {
        match self {
            SymValue::Str(s) => s,
            other => panic!("expected str value, found {other:?}"),
        }
    }

    /// Buffer id payload.
    ///
    /// # Panics
    ///
    /// Panics on non-`Buf` values.
    pub fn as_buf(&self) -> usize {
        match self {
            SymValue::Buf(b) => *b,
            other => panic!("expected buf value, found {other:?}"),
        }
    }

    /// Rough size in bytes for the engine's memory model.
    pub fn est_bytes(&self) -> usize {
        match self {
            SymValue::Str(s) => 16 + s.bytes.len() * 4 / 8, // Rc-shared: amortized
            _ => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver::CmpOp;

    #[test]
    fn symbuf_constructors_set_lifetime_metadata() {
        let b = SymBuf::stack(vec![TermId(0)]);
        assert!(b.live && !b.dynamic);
        let d = SymBuf::dynamic(vec![TermId(0)]);
        assert!(d.live && d.dynamic);
    }

    #[test]
    fn boolval_negation() {
        assert_eq!(BoolVal::Const(true).not(), BoolVal::Const(false));
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 9);
        let five = ctx.int(5);
        let atom = BoolVal::Atom(Constraint::new(CmpOp::Lt, x, five));
        assert_eq!(atom.not().not(), atom);
        assert_eq!(atom.as_const(), None);
    }

    #[test]
    fn concrete_symstr_has_const_bytes() {
        let mut ctx = TermCtx::new();
        let s = SymStr::concrete(&mut ctx, b"hi");
        assert_eq!(s.cap(), 2);
        assert_eq!(ctx.as_const(s.bytes[0]), Some(b'h' as i64));
        let t = s.byte_at(&mut ctx, 2);
        assert_eq!(ctx.as_const(t), Some(0));
    }

    #[test]
    #[should_panic(expected = "expected bool")]
    fn wrong_accessor_panics() {
        SymValue::Int(TermId(0)).as_bool();
    }
}
