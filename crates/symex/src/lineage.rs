//! Exploration-tree lineage tracking.
//!
//! When [`crate::EngineConfig::lineage`] is on, the engine narrates the
//! life of every state it ever schedules as a stream of compact `state`
//! trace events: `root` and `fork` introduce tree nodes, `suspend.*` /
//! `resume` mark guidance decisions, and `exit` / `fault` /
//! `unconfirmed` / `kill` are terminal dispositions. `statsym-inspect
//! tree|coverage|flame|watch` reconstruct the exploration tree from
//! this stream.
//!
//! Two invariants the emitters uphold (and the strict trace parser
//! checks):
//!
//! * a node is introduced (`root`/`fork`) before any transition names
//!   it, so a prefix of the stream is always a valid forest — live
//!   `watch` can re-parse a growing file at any cut point;
//! * trace-level state ids are allocated *at emission* through
//!   [`Recorder::alloc_state_id`], never taken from the engine's
//!   internal ids. Engine ids are assigned eagerly at fork sites and
//!   skip numbers for pruned children; trace ids are dense, which is
//!   what lets `BufferedRecorder` merges remap them with a plain base
//!   offset.
//!
//! Work attribution is differential: each event carries the steps,
//! solver search nodes, and solver wall-µs accumulated since the
//! *previous* lineage event. The engine executes one state at a time,
//! so the interval between two events is exactly the work done by the
//! state named in the second one (or by its parent, for `root`/`fork`
//! introductions — forks are billed to the fork site, which is the
//! parent's frontier).

use crate::state::State;
use sir::Module;
use statsym_telemetry::{lineage_op, LineageEvent, Recorder};
use std::collections::HashMap;

/// Cumulative work counters sampled at an emission point; the tracker
/// turns consecutive samples into per-event deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WorkSnapshot {
    /// Executor instructions retired so far.
    pub steps: u64,
    /// Solver search nodes visited so far.
    pub solver_nodes: u64,
    /// Wall-clock µs spent inside traced solver queries so far.
    pub solver_us: u64,
}

/// One tracked tree node: the engine-local id maps to the trace-level
/// id the recorder allocated, plus the parent's trace id for rendering
/// transitions without a second lookup.
#[derive(Debug, Clone, Copy)]
struct Node {
    trace_id: u64,
    parent: u64,
}

/// One lineage event captured during a steal-mode segment with
/// *segment-local* state ids. Workers cannot allocate global trace ids
/// (allocation order would depend on the schedule), so they capture
/// events verbatim and the walker replays them against the real
/// recorder in deterministic commit order (see `crate::steal`).
#[derive(Debug, Clone)]
pub(crate) struct CapturedLin {
    pub op: &'static str,
    pub local_id: u64,
    pub parent_local: Option<u64>,
    pub loc: String,
    pub hops: u32,
    pub depth: u32,
    pub steps: u64,
    pub snodes: u64,
    pub solver_us: u64,
}

/// Per-run lineage emitter. Inert (all methods early-return) unless
/// constructed enabled, so the default engine path pays one branch per
/// would-be event and allocates nothing.
///
/// In *capture* mode ([`Lineage::capture`]) events are buffered as
/// [`CapturedLin`] records instead of being emitted, and the recorder
/// passed to [`Lineage::emit`] is never touched.
pub(crate) struct Lineage {
    on: bool,
    nodes: HashMap<u64, Node>,
    last: WorkSnapshot,
    captured: Option<Vec<CapturedLin>>,
}

impl Lineage {
    /// Creates a tracker. `base` is the work already charged before this
    /// run started (a reused solver's counters), so the first event's
    /// deltas cover only this run.
    pub fn new(on: bool, base: WorkSnapshot) -> Lineage {
        Lineage {
            on,
            nodes: HashMap::new(),
            last: base,
            captured: None,
        }
    }

    /// Creates a capturing tracker for one steal-mode segment. The
    /// executing state is known under local id 0; ids introduced by
    /// forks within the segment are bound as they appear.
    pub fn capture(on: bool, base: WorkSnapshot) -> Lineage {
        let mut lin = Lineage::new(on, base);
        if on {
            lin.nodes.insert(
                0,
                Node {
                    trace_id: 0,
                    parent: 0,
                },
            );
            lin.captured = Some(Vec::new());
        }
        lin
    }

    /// Takes the events captured so far (capture mode only).
    pub fn take_captured(&mut self) -> Vec<CapturedLin> {
        self.captured.take().unwrap_or_default()
    }

    /// Whether lineage events are being emitted.
    pub fn on(&self) -> bool {
        self.on
    }

    /// Emits one lineage event for the engine-local state `local_id`.
    ///
    /// For introducing ops (`root`/`fork`) a fresh trace id is drawn
    /// from the recorder and bound to `local_id`; `parent_local` names
    /// the fork parent (`None` for roots). For transitions the bound
    /// trace id is reused and `parent_local` is ignored. Transitions on
    /// ids that were never introduced (the defensive case; it would
    /// fail strict parsing) are dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &mut self,
        rec: &dyn Recorder,
        op: &'static str,
        local_id: u64,
        parent_local: Option<u64>,
        loc: &str,
        hops: u32,
        depth: u32,
        cum: WorkSnapshot,
    ) {
        if !self.on {
            return;
        }
        if let Some(buf) = &mut self.captured {
            // Capture mode: record the event with its segment-local ids;
            // the walker translates them to trace ids at replay. The
            // nodes map still tracks which locals were introduced so the
            // introduced-before-named invariant is enforced at capture
            // time (local 0 is pre-seeded by `capture`).
            if lineage_op::introduces(op) {
                self.nodes.insert(
                    local_id,
                    Node {
                        trace_id: local_id,
                        parent: 0,
                    },
                );
            } else if !self.nodes.contains_key(&local_id) {
                return;
            }
            let delta = WorkSnapshot {
                steps: cum.steps.saturating_sub(self.last.steps),
                solver_nodes: cum.solver_nodes.saturating_sub(self.last.solver_nodes),
                solver_us: cum.solver_us.saturating_sub(self.last.solver_us),
            };
            self.last = cum;
            buf.push(CapturedLin {
                op,
                local_id,
                parent_local,
                loc: loc.to_string(),
                hops,
                depth,
                steps: delta.steps,
                snodes: delta.solver_nodes,
                solver_us: delta.solver_us,
            });
            return;
        }
        let (id, parent) = if lineage_op::introduces(op) {
            let parent = parent_local
                .and_then(|p| self.nodes.get(&p))
                .map_or(0, |n| n.trace_id);
            let trace_id = rec.alloc_state_id();
            self.nodes.insert(local_id, Node { trace_id, parent });
            (trace_id, parent)
        } else {
            match self.nodes.get(&local_id) {
                Some(n) => (n.trace_id, n.parent),
                None => return,
            }
        };
        let delta = WorkSnapshot {
            steps: cum.steps.saturating_sub(self.last.steps),
            solver_nodes: cum.solver_nodes.saturating_sub(self.last.solver_nodes),
            solver_us: cum.solver_us.saturating_sub(self.last.solver_us),
        };
        self.last = cum;
        rec.state(&LineageEvent {
            op,
            id,
            parent,
            loc,
            hops,
            depth,
            steps: delta.steps,
            snodes: delta.solver_nodes,
            solver_us: delta.solver_us,
        });
    }
}

/// The lineage location label for a state: `{function}:b{block}`, or
/// `exit` once the call stack has fully unwound (terminal `exit` events
/// fire after the last `Return` pops the final frame).
pub(crate) fn state_loc(module: &Module, state: &State) -> String {
    match state.frames.last() {
        Some(f) => format!("{}:b{}", module.func(f.func).name, f.block.index()),
        None => "exit".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::{Clock, MemRecorder, TraceEvent};

    fn work(steps: u64, nodes: u64, us: u64) -> WorkSnapshot {
        WorkSnapshot {
            steps,
            solver_nodes: nodes,
            solver_us: us,
        }
    }

    fn state_events(events: &[TraceEvent]) -> Vec<&TraceEvent> {
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::State { .. }))
            .collect()
    }

    #[test]
    fn disabled_tracker_emits_nothing() {
        let rec = MemRecorder::new(Clock::steps());
        let mut lin = Lineage::new(false, WorkSnapshot::default());
        lin.emit(
            &rec,
            lineage_op::ROOT,
            0,
            None,
            "main:b0",
            0,
            0,
            work(10, 5, 1),
        );
        assert!(state_events(&rec.finish()).is_empty());
    }

    #[test]
    fn ids_are_dense_and_deltas_differential() {
        let rec = MemRecorder::new(Clock::steps());
        // Pretend 100 steps happened before this run started.
        let mut lin = Lineage::new(true, work(100, 50, 0));
        lin.emit(
            &rec,
            lineage_op::ROOT,
            0,
            None,
            "main:b0",
            0,
            0,
            work(100, 50, 0),
        );
        // Engine ids skip 7 (a pruned child); trace ids must not.
        lin.emit(
            &rec,
            lineage_op::FORK,
            8,
            Some(0),
            "main:b2",
            0,
            1,
            work(130, 80, 0),
        );
        lin.emit(
            &rec,
            lineage_op::EXIT,
            8,
            None,
            "exit",
            0,
            1,
            work(150, 95, 0),
        );
        let events = rec.finish();
        let states: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::State {
                    op,
                    id,
                    par,
                    steps,
                    snodes,
                    ..
                } => Some((op.as_str(), *id, *par, *steps, *snodes)),
                _ => None,
            })
            .collect();
        assert_eq!(
            states,
            vec![
                ("root", 1, 0, 0, 0),
                ("fork", 2, 1, 30, 30),
                ("exit", 2, 1, 20, 15),
            ]
        );
    }

    #[test]
    fn capture_buffers_locally_without_touching_recorder() {
        let rec = MemRecorder::new(Clock::steps());
        let mut lin = Lineage::capture(true, work(10, 0, 0));
        // Local 0 is pre-seeded; a transition on it is captured.
        lin.emit(
            &rec,
            lineage_op::SUSPEND_BRANCH,
            0,
            None,
            "f:b1",
            2,
            1,
            work(15, 3, 0),
        );
        // Fork introduces local 1; a transition on it is captured too.
        lin.emit(
            &rec,
            lineage_op::FORK,
            1,
            Some(0),
            "f:b2",
            0,
            2,
            work(20, 3, 0),
        );
        // Unknown local is dropped even in capture mode.
        lin.emit(
            &rec,
            lineage_op::KILL,
            9,
            None,
            "f:b3",
            0,
            2,
            work(21, 3, 0),
        );
        let cap = lin.take_captured();
        assert!(state_events(&rec.finish()).is_empty());
        let summary: Vec<_> = cap
            .iter()
            .map(|c| (c.op, c.local_id, c.parent_local, c.steps, c.snodes))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("suspend.branch", 0, None, 5, 3),
                ("fork", 1, Some(0), 5, 0),
            ]
        );
        // Captured buffer is consumed exactly once.
        assert!(lin.take_captured().is_empty());
    }

    #[test]
    fn transition_on_unknown_id_is_dropped() {
        let rec = MemRecorder::new(Clock::steps());
        let mut lin = Lineage::new(true, WorkSnapshot::default());
        lin.emit(
            &rec,
            lineage_op::KILL,
            42,
            None,
            "f:b1",
            0,
            0,
            work(5, 0, 0),
        );
        assert!(state_events(&rec.finish()).is_empty());
    }
}
