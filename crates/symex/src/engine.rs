//! The symbolic execution engine: scheduling loop, budgets, and results.

use crate::attr::StepAttr;
use crate::executor::{initial_state, step, Disposition, ExecEnv, ExecStats, StepResult};
use crate::hook::{EventHook, NoGuidance};
use crate::lineage::{Lineage, WorkSnapshot};
use crate::scheduler::{build_scheduler, SchedulerKind};
use crate::state::{CondList, State};
use crate::value::SymValue;
use concrete::{Fault, InputValue, Location};
use sir::{InputId, Module};
use solver::{
    Constraint, QueryCache, SatResult, Solver, SolverConfig, SolverStats, TermCtx, UnsatCache,
};
use statsym_telemetry::{lineage_op, names, ClockMode, FieldValue, Recorder, NOOP};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative per-run resource budget. The deterministic dimensions
/// (`max_steps`, `max_states`) are checked after every executed
/// instruction; the wall-clock dimensions (`max_solver_us`,
/// `max_wall_ms`) at every scheduling decision and at the engine's
/// every-8192-instructions checkpoint. `None` fields are unlimited; the
/// default is fully unlimited, so attaching a `Budget` never changes a
/// run that stays under it.
///
/// `max_steps` and `max_states` are counted in deterministic units, so
/// a budget-limited run under the step-count clock still produces
/// byte-identical traces at any worker count. `max_solver_us` and
/// `max_wall_ms` meter wall time and are inherently non-reproducible —
/// use them for operational admission control, not for comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Executor instructions this run may retire.
    pub max_steps: Option<u64>,
    /// Wall-clock µs this run may spend inside solver queries.
    pub max_solver_us: Option<u64>,
    /// Wall-clock ms this run may take end to end.
    pub max_wall_ms: Option<u64>,
    /// States this run may ever create.
    pub max_states: Option<u64>,
}

impl Budget {
    /// A fully unlimited budget (the default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Whether any dimension is limited.
    pub fn is_limited(&self) -> bool {
        self.max_steps.is_some()
            || self.max_solver_us.is_some()
            || self.max_wall_ms.is_some()
            || self.max_states.is_some()
    }
}

/// Engine resource budgets and policy.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// State selection policy.
    pub scheduler: SchedulerKind,
    /// Maximum pending states (live set) before giving up.
    pub max_live_states: usize,
    /// Modeled memory budget in bytes across live states and the solver
    /// cache. Exceeding it reproduces the paper's KLEE out-of-memory
    /// failures (Table IV).
    pub memory_budget: usize,
    /// Wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Total instruction budget.
    pub max_steps: u64,
    /// Cooperative resource budget for this run. Unlimited by default;
    /// unlike `max_steps`/`time_budget` (engine safety rails with fixed
    /// defaults), a tripped [`Budget`] is reported as its own
    /// `budget_exceeded` disposition so operators can tell an admission
    /// cut from genuine exhaustion.
    pub budget: Budget,
    /// Call-depth limit per state.
    pub max_call_depth: usize,
    /// Limits for the underlying constraint solver.
    pub solver: SolverConfig,
    /// Emit per-state lineage events (fork/suspend/resume/terminal
    /// dispositions with differential work attribution) into the
    /// attached recorder. Off by default: lineage traces narrate every
    /// state transition and grow with the exploration tree, not with
    /// the phase structure.
    pub lineage: bool,
    /// Number of work-stealing state workers for intra-candidate
    /// parallel execution (see `crate::steal`). `0` (the default) runs
    /// the classic single-threaded scheduling loop. With `n ≥ 1`, `n`
    /// worker threads execute state *segments* concurrently while the
    /// main thread commits their results in a deterministic DFS
    /// pre-order, so traces and outcomes are byte-identical at any
    /// worker count. Steal mode ignores [`EngineConfig::scheduler`]
    /// (exploration order is the deterministic fork-tree pre-order) and
    /// requires the guidance hook to support
    /// [`crate::EventHook::clone_hook`]; hooks that return `None` fall
    /// back to the legacy loop.
    pub state_workers: usize,
    /// Steal-mode segment length: a worker pauses a state after this
    /// many executed instructions and requeues it, bounding how long a
    /// big subtree can monopolize one worker. Affects performance only,
    /// never trace content — but a different slice produces a different
    /// (equally valid) segment structure, so compare traces only across
    /// runs with the same slice.
    pub steal_slice: u64,
    /// Seed for the steal-victim order (which queue an idle worker robs
    /// first). Affects scheduling only; trace content is identical for
    /// every seed.
    pub steal_seed: u64,
    /// Emit source-level cost attribution (`attr.<func>:<line>.<dim>`
    /// counters): every step, fork, suspension, solver query, solver
    /// search node, and (wall-clock traces) solver µs is billed to the
    /// MiniC source line that caused it. Off by default: the hooks add
    /// per-step bookkeeping and the counter section grows with program
    /// size.
    pub attribution: bool,
    /// Stamp solver queries with provenance (`query` events carrying
    /// the originating state id, source location, candidate rank, and
    /// cache disposition). Off by default: query events are the
    /// highest-frequency event family.
    pub provenance: bool,
    /// Statistical candidate rank carried on provenance `query` events
    /// (1-based; `0` when the run is not a ranked candidate).
    pub candidate_rank: u32,
    /// Chaos knob: deliberately panic once the executed step count
    /// reaches this threshold. Exercises the crash-capture path (panic
    /// hook bundles, stream end-frame-on-drop) end to end; `None` (the
    /// default) never fires. Checked in the legacy scheduling loop
    /// (`state_workers == 0`), the configuration the crash drill runs.
    pub panic_after: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheduler: SchedulerKind::Bfs,
            max_live_states: 500_000,
            memory_budget: 512 << 20,
            time_budget: None,
            max_steps: 200_000_000,
            budget: Budget::default(),
            max_call_depth: 256,
            solver: SolverConfig::default(),
            lineage: false,
            state_workers: 0,
            steal_slice: 2048,
            steal_seed: 0,
            attribution: false,
            provenance: false,
            candidate_rank: 0,
            panic_after: None,
        }
    }
}

/// Why an exploration stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionReason {
    /// Modeled memory budget exceeded (the paper's KLEE failure mode).
    Memory,
    /// Wall-clock budget exceeded.
    Time,
    /// Instruction budget exceeded.
    Steps,
    /// Live-state cap exceeded.
    LiveStates,
    /// An external cancel token was tripped (portfolio execution: a
    /// better-ranked candidate already reported a find).
    Cancelled,
    /// The run's explicit [`Budget`] tripped.
    Budget,
}

impl fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustionReason::Memory => f.write_str("out of memory"),
            ExhaustionReason::Time => f.write_str("timeout"),
            ExhaustionReason::Steps => f.write_str("step budget exhausted"),
            ExhaustionReason::LiveStates => f.write_str("too many live states"),
            ExhaustionReason::Cancelled => f.write_str("cancelled"),
            ExhaustionReason::Budget => f.write_str("resource budget exceeded"),
        }
    }
}

/// A discovered vulnerable path: the paper's final output (§V-C) — the
/// complete execution path, its constraints, and a concrete triggering
/// input.
#[derive(Debug, Clone)]
pub struct FoundVulnerability {
    /// The fault (kind + fault point).
    pub fault: Fault,
    /// The function-boundary event trace of the vulnerable path.
    pub trace: Vec<Location>,
    /// Hard path constraints of the vulnerable path.
    pub constraints: Vec<Constraint>,
    /// Human-readable rendering of `constraints`.
    pub rendered_constraints: Vec<String>,
    /// A concrete input assignment that drives the program down this
    /// path (generated from the solver model; replayable on the VM).
    pub inputs: concrete::InputMap,
    /// Fork depth of the faulting state.
    pub depth: u32,
}

/// How a run ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// A vulnerable path was found.
    Found(Box<FoundVulnerability>),
    /// A budget ran out first.
    Exhausted(ExhaustionReason),
    /// Every path was explored without finding a fault.
    Completed,
}

impl RunOutcome {
    /// The discovered vulnerability, if any.
    pub fn found(&self) -> Option<&FoundVulnerability> {
        match self {
            RunOutcome::Found(f) => Some(f),
            _ => None,
        }
    }

    /// True when a vulnerable path was found.
    pub fn is_found(&self) -> bool {
        matches!(self, RunOutcome::Found(_))
    }
}

/// Work counters for a whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Executor counters (steps, forks, pruning, ...).
    pub exec: ExecStats,
    /// Paths that terminated normally.
    pub paths_completed: u64,
    /// Total paths examined: completed + pruned + faulting + states
    /// still pending or suspended when the run stopped.
    pub paths_explored: u64,
    /// Total states ever created.
    pub states_created: u64,
    /// Peak modeled memory (bytes).
    pub peak_memory: usize,
    /// Peak live state count.
    pub peak_live_states: usize,
    /// Solver counters.
    pub solver: SolverStats,
    /// States suspended by guidance and never resumed.
    pub left_suspended: u64,
}

/// Report of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Work counters.
    pub stats: EngineStats,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
}

/// The symbolic execution engine over a SIR module.
pub struct Engine<'m> {
    pub(crate) module: &'m Module,
    pub(crate) config: EngineConfig,
    pub(crate) ctx: TermCtx,
    pub(crate) solver: Solver,
    pub(crate) hook: Box<dyn EventHook + 'm>,
    pub(crate) pinned: concrete::InputMap,
    pub(crate) suppressed: Vec<(String, minic::Span)>,
    pub(crate) rec: &'m dyn Recorder,
    pub(crate) cancel: Option<Arc<AtomicBool>>,
}

impl<'m> Engine<'m> {
    /// Creates a pure (unguided) engine — the KLEE baseline.
    pub fn new(module: &'m Module, config: EngineConfig) -> Engine<'m> {
        Engine::with_hook(module, config, Box::new(NoGuidance))
    }

    /// Creates an engine guided by `hook` (the StatSym mode).
    pub fn with_hook(
        module: &'m Module,
        config: EngineConfig,
        hook: Box<dyn EventHook + 'm>,
    ) -> Engine<'m> {
        Engine {
            module,
            config,
            ctx: TermCtx::new(),
            solver: Solver::with_config(config.solver),
            hook,
            pinned: concrete::InputMap::new(),
            suppressed: Vec::new(),
            rec: &NOOP,
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation token. The engine polls it at
    /// every scheduling decision and every 8192 executed instructions
    /// (the same cadence as the step-budget check); when tripped, the
    /// run ends promptly with
    /// `RunOutcome::Exhausted(ExhaustionReason::Cancelled)`.
    pub fn set_cancel_token(&mut self, token: Arc<AtomicBool>) {
        self.cancel = Some(token);
    }

    /// Injects a shared solver verdict cache (see `solver::cache`):
    /// definitive Sat/Unsat verdicts cross engine boundaries while
    /// models stay local, keeping exploration identical to an unshared
    /// run.
    pub fn set_shared_cache(&mut self, cache: Arc<dyn QueryCache + Send + Sync>) {
        self.solver.set_query_cache(cache);
    }

    /// Injects a shared unsat/counterexample cache (see
    /// `solver::ucache`): unsat cores prune supersets of known-unsat
    /// conjunct sets, and cached models are re-checked against subset
    /// queries before any search. Sharing is sound (a hit never changes
    /// a verdict) but makes *hit counts* schedule-dependent, so leave it
    /// off for byte-identical trace comparisons.
    pub fn set_unsat_cache(&mut self, cache: Arc<UnsatCache>) {
        self.solver.set_unsat_cache(cache);
    }

    /// Attaches a telemetry recorder. The engine wraps each run in an
    /// `engine.run` span, streams state-lifecycle counters (fork,
    /// suspend-on-τ, suspend-on-predicate-conflict, resume, kill,
    /// scheduler picks) and the hop-divergence histogram, advances the
    /// deterministic trace clock by its step count, and emits its
    /// [`EngineStats`] as counter deltas when the run ends.
    pub fn set_recorder(&mut self, rec: &'m dyn Recorder) {
        self.rec = rec;
    }

    /// Suppresses faults at a known fault site (function + span): states
    /// reaching it terminate as ordinary completed paths instead of
    /// stopping the search. This enables the paper's §III-C iterative
    /// discovery of multiple vulnerabilities — each found vulnerable
    /// path is eliminated and exploration continues for the next.
    pub fn suppress_fault_site(&mut self, func: impl Into<String>, span: minic::Span) {
        self.suppressed.push((func.into(), span));
    }

    /// Pins a named input to a concrete value: the engine treats it as a
    /// constant instead of a symbolic variable. This mirrors the paper's
    /// methodology (§VII-A): semantically required program options are
    /// configured concretely for both StatSym and the KLEE baseline so
    /// neither wastes time enumerating option-parsing paths.
    pub fn pin_input(&mut self, name: impl Into<String>, value: concrete::InputValue) {
        self.pinned.insert(name.into(), value);
    }

    /// The term context (for rendering constraints after a run).
    pub fn ctx(&self) -> &TermCtx {
        &self.ctx
    }

    /// Explores the program until a fault is found or a budget runs out.
    ///
    /// With [`EngineConfig::state_workers`] ≥ 1 and a guidance hook that
    /// supports [`EventHook::clone_hook`], execution runs on the
    /// work-stealing intra-candidate scheduler (`crate::steal`):
    /// identical results and byte-identical traces at any worker count,
    /// but wall-clock scales with workers. Otherwise the classic
    /// single-threaded loop runs.
    pub fn run(&mut self) -> EngineReport {
        if self.config.state_workers > 0 {
            if let Some(report) = crate::steal::run_steal(self) {
                return report;
            }
        }
        self.run_legacy()
    }

    /// The classic single-threaded scheduling loop.
    fn run_legacy(&mut self) -> EngineReport {
        let start = Instant::now();
        let rec = self.rec;
        let run_span = rec.span_open(names::ENGINE_RUN);
        let solver_before = self.solver.stats();
        // Lineage deltas are charged from this run's start, not from the
        // solver's birth (the solver may be reused across runs).
        let mut lineage = Lineage::new(
            self.config.lineage && rec.enabled(),
            WorkSnapshot {
                steps: 0,
                solver_nodes: solver_before.nodes,
                solver_us: solver_before.query_us,
            },
        );
        let mut last_tick: u64 = 0;
        // Source-level cost attribution and solver-query provenance.
        // Both are trace features: without a recorder the per-step
        // hooks are skipped entirely.
        let mut attr = StepAttr::new(
            self.config.attribution && rec.enabled(),
            self.config.provenance && rec.enabled(),
        );
        if self.config.provenance && rec.enabled() {
            self.solver.set_provenance(self.config.candidate_rank);
        }
        let mut stats = EngineStats::default();
        let mut sched = build_scheduler(self.config.scheduler);
        let mut suspended: Vec<State> = Vec::new();
        let mut inputs_map: HashMap<InputId, SymValue> = HashMap::new();
        for (i, def) in self.module.inputs.iter().enumerate() {
            if let Some(v) = self.pinned.get(&def.name) {
                let sym = match (v, def.kind) {
                    (InputValue::Int(n), sir::InputKind::Int) => SymValue::Int(self.ctx.int(*n)),
                    (InputValue::Str(bytes), sir::InputKind::Str { cap }) => {
                        let mut b = bytes.clone();
                        b.truncate(cap as usize);
                        SymValue::Str(crate::value::SymStr::concrete(&mut self.ctx, &b))
                    }
                    // Kind mismatch: leave the input symbolic.
                    _ => continue,
                };
                inputs_map.insert(InputId(i as u32), sym);
            }
        }
        let cancel = self.cancel.clone();
        let cancelled = || cancel.as_ref().is_some_and(|t| t.load(Ordering::Relaxed));
        let mut next_id: u64 = 0;
        let mut live_mem: usize = 0;
        let mut mem_by_state: HashMap<u64, usize> = HashMap::new();
        let max_call_depth = self.config.max_call_depth;
        let suppressed = self.suppressed.clone();
        // Coverage-optimized search: blocks ever executed by any state.
        let coverage_mode = matches!(self.config.scheduler, SchedulerKind::Coverage);
        let mut covered: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let is_suppressed = |fault: &Fault| {
            suppressed
                .iter()
                .any(|(func, span)| *func == fault.func && *span == fault.span)
        };

        enum LoopEnd {
            Found(Box<State>, Fault, solver::Model),
            Exhausted(ExhaustionReason),
            Completed,
        }

        // Faulting paths whose triggering model the solver could not
        // produce within budget. Reported as suspended work, never as
        // found vulnerabilities: a Found with fabricated inputs would
        // not replay concretely.
        let mut unconfirmed: u64 = 0;

        // The state popped from the scheduler and currently executing:
        // it is live too, so peak accounting must include it.
        let mut in_flight: usize = 0;
        let mut in_flight_mem: usize = 0;

        // Explicit resource budget. The deterministic dimensions (steps,
        // states) are enforced per executed instruction so the trip point
        // is exact and reproducible; the wall-clock dimensions only at
        // checkpoint cadence. All budget telemetry is gated on a budget
        // actually being set, so unlimited runs emit byte-identical
        // traces to builds that predate budgets.
        let budget = self.config.budget;
        let limited = budget.is_limited();
        let budget_telemetry = limited && rec.enabled();
        let wall_clock = rec.clock_mode() == ClockMode::Wall;
        let mut last_budget_note: Option<u64> = None;
        let det_tripped = |steps: u64, states: u64| {
            budget.max_steps.is_some_and(|m| steps > m)
                || budget.max_states.is_some_and(|m| states > m)
        };

        let end = {
            let mut env = ExecEnv {
                module: self.module,
                ctx: &mut self.ctx,
                solver: &mut self.solver,
                inputs: &mut inputs_map,
                hook: self.hook.as_mut(),
                stats: &mut stats.exec,
                rec,
                max_call_depth,
                next_state_id: &mut next_id,
                lineage: &mut lineage,
            };

            // Peaks are updated at *every* state-set mutation (push, pop,
            // fork, suspend, resume) — not just at loop checkpoints — so
            // a fork burst right before the run ends is still counted.
            macro_rules! note_peaks {
                () => {{
                    let total_mem = live_mem + in_flight_mem + env.solver.cache_len() * 160;
                    stats.peak_memory = stats.peak_memory.max(total_mem);
                    stats.peak_live_states = stats
                        .peak_live_states
                        .max(sched.len() + suspended.len() + in_flight);
                }};
            }

            // True when a wall-clock budget dimension is over its limit.
            // The deterministic dimensions only trip at the per-step
            // check inside the inner loop, where an in-flight state
            // exists to carry the terminal lineage disposition; a run
            // whose final state completes exactly on budget is reported
            // Completed, not budget_exceeded — the budget only interrupts
            // pending work.
            macro_rules! wall_tripped {
                () => {{
                    budget.max_solver_us.is_some_and(|m| {
                        env.solver
                            .stats()
                            .query_us
                            .saturating_sub(solver_before.query_us)
                            > m
                    }) || budget
                        .max_wall_ms
                        .is_some_and(|m| start.elapsed().as_millis() as u64 > m)
                }};
            }

            // Periodic budget progress telemetry, deduplicated by step
            // count (the step-0 checkpoint re-fires once per popped
            // state). Wall-clock usage is only reported under a wall
            // clock, keeping step-clock traces deterministic.
            macro_rules! budget_note {
                () => {{
                    if budget_telemetry && last_budget_note != Some(env.stats.steps) {
                        last_budget_note = Some(env.stats.steps);
                        let states = *env.next_state_id + 1;
                        rec.gauge_max(names::BUDGET_STEPS_USED, env.stats.steps as i64);
                        rec.gauge_max(names::BUDGET_STATES_USED, states as i64);
                        if wall_clock {
                            let solver_us = env
                                .solver
                                .stats()
                                .query_us
                                .saturating_sub(solver_before.query_us);
                            let wall_ms = start.elapsed().as_millis() as u64;
                            rec.gauge_max(names::BUDGET_SOLVER_US_USED, solver_us as i64);
                            rec.gauge_max(names::BUDGET_WALL_MS_USED, wall_ms as i64);
                            rec.event(
                                names::BUDGET_TICK,
                                &[
                                    ("steps", FieldValue::from(env.stats.steps)),
                                    ("states", FieldValue::from(states)),
                                    ("solver_us", FieldValue::from(solver_us)),
                                    ("wall_ms", FieldValue::from(wall_ms)),
                                ],
                            );
                        } else {
                            rec.event(
                                names::BUDGET_TICK,
                                &[
                                    ("steps", FieldValue::from(env.stats.steps)),
                                    ("states", FieldValue::from(states)),
                                ],
                            );
                        }
                    }
                }};
            }

            // Solves the faulting state's path for a triggering model
            // *before* committing to a Found outcome. `None` means the
            // solver budget ran out (or, vacuously, the path turned out
            // infeasible): the fault cannot be confirmed and must not be
            // reported with made-up inputs.
            macro_rules! confirm_model {
                ($state:expr) => {{
                    let constraints = $state.path.to_vec();
                    // The confirmation query runs outside step(), so it
                    // gets its own pre/post bracket: the solver work is
                    // billed to (and its provenance stamped with) the
                    // faulting state's final source location.
                    let pre = attr
                        .active()
                        .then(|| attr.pre_step(env.module, &$state, env.solver, env.stats));
                    let res =
                        env.solver
                            .check_traced_at(env.ctx, &constraints, rec, "report_model");
                    if let Some(pre) = pre {
                        attr.post_step(pre, &env.solver.stats(), env.stats);
                    }
                    match res {
                        SatResult::Sat(m) => Some(m),
                        _ => None,
                    }
                }};
            }

            let init = initial_state(&mut env);
            let est = init.est_bytes();
            live_mem += est;
            mem_by_state.insert(init.id, est);
            let pr = env.hook.priority(&init.meta, init.depth);
            sched.push(init, pr);
            note_peaks!();
            let _ = &covered;

            'outer: loop {
                // Budget checks.
                rec.tick(env.stats.steps - last_tick);
                last_tick = env.stats.steps;
                if let Some(threshold) = self.config.panic_after {
                    if env.stats.steps >= threshold {
                        panic!(
                            "chaos: forced engine panic after {} steps (panic_after={threshold})",
                            env.stats.steps
                        );
                    }
                }
                if limited && wall_tripped!() {
                    rec.counter_add(names::BUDGET_EXCEEDED, 1);
                    budget_note!();
                    break LoopEnd::Exhausted(ExhaustionReason::Budget);
                }
                if cancelled() {
                    break LoopEnd::Exhausted(ExhaustionReason::Cancelled);
                }
                if let Some(tb) = self.config.time_budget {
                    if start.elapsed() > tb {
                        break LoopEnd::Exhausted(ExhaustionReason::Time);
                    }
                }
                if env.stats.steps > self.config.max_steps {
                    break LoopEnd::Exhausted(ExhaustionReason::Steps);
                }
                let total_mem = live_mem + env.solver.cache_len() * 160;
                note_peaks!();
                if total_mem > self.config.memory_budget {
                    break LoopEnd::Exhausted(ExhaustionReason::Memory);
                }
                if sched.len() + suspended.len() > self.config.max_live_states {
                    break LoopEnd::Exhausted(ExhaustionReason::LiveStates);
                }

                let Some(mut state) = sched.pop() else {
                    if suspended.is_empty() {
                        break LoopEnd::Completed;
                    }
                    // Resume suspended states with guidance disabled: the
                    // worst case degrades to pure symbolic execution.
                    let resumed = suspended.len() as u64;
                    for mut s in suspended.drain(..) {
                        env.lineage_event(lineage_op::RESUME, &s, None);
                        s.guidance_off = true;
                        s.soft = CondList::new();
                        sched.push(s, i64::MAX);
                    }
                    rec.counter_add(names::SYMEX_RESUME, resumed);
                    note_peaks!();
                    continue;
                };
                rec.counter_add(names::SYMEX_SCHED_PICKS, 1);
                if let Some(est) = mem_by_state.remove(&state.id) {
                    live_mem = live_mem.saturating_sub(est);
                    in_flight_mem = est;
                } else {
                    in_flight_mem = state.est_bytes();
                }
                in_flight = 1;
                note_peaks!();

                // Run this state until it forks, terminates, or parks.
                // Its id is the lineage fork parent for any fresh
                // children; the continuing fork child keeps this id and
                // stays the same tree node.
                let exec_id = state.id;
                let step_end = loop {
                    // Deterministic budget dimensions trip mid-state at
                    // an exact instruction count: the in-flight state
                    // gets the terminal `budget_exceeded` disposition.
                    if limited && det_tripped(env.stats.steps, *env.next_state_id + 1) {
                        rec.tick(env.stats.steps - last_tick);
                        last_tick = env.stats.steps;
                        env.lineage_event(lineage_op::BUDGET_EXCEEDED, &state, None);
                        rec.counter_add(names::BUDGET_EXCEEDED, 1);
                        budget_note!();
                        break 'outer LoopEnd::Exhausted(ExhaustionReason::Budget);
                    }
                    if env.stats.steps.is_multiple_of(8192) {
                        rec.tick(env.stats.steps - last_tick);
                        last_tick = env.stats.steps;
                        if limited && wall_tripped!() {
                            env.lineage_event(lineage_op::BUDGET_EXCEEDED, &state, None);
                            rec.counter_add(names::BUDGET_EXCEEDED, 1);
                            budget_note!();
                            break 'outer LoopEnd::Exhausted(ExhaustionReason::Budget);
                        }
                        budget_note!();
                        if cancelled() {
                            break 'outer LoopEnd::Exhausted(ExhaustionReason::Cancelled);
                        }
                        if let Some(tb) = self.config.time_budget {
                            if start.elapsed() > tb {
                                break 'outer LoopEnd::Exhausted(ExhaustionReason::Time);
                            }
                        }
                        if env.stats.steps > self.config.max_steps {
                            break 'outer LoopEnd::Exhausted(ExhaustionReason::Steps);
                        }
                    }
                    let pre = attr
                        .active()
                        .then(|| attr.pre_step(env.module, &state, env.solver, env.stats));
                    let res = step(&mut env, state);
                    if let Some(pre) = pre {
                        attr.post_step(pre, &env.solver.stats(), env.stats);
                    }
                    match res {
                        StepResult::Continue(s) => {
                            state = s;
                            if coverage_mode {
                                if let Some(f) = state.frames.last() {
                                    covered.insert((f.func.0, f.block.0));
                                }
                            }
                        }
                        other => break other,
                    }
                };
                // The popped state was consumed; its successors (if any)
                // are accounted individually below.
                in_flight = 0;
                in_flight_mem = 0;
                match step_end {
                    StepResult::Continue(_) => unreachable!("inner loop keeps Continue"),
                    StepResult::Fork(children) => {
                        for child in children {
                            if child.state.id != exec_id {
                                env.lineage_event(lineage_op::FORK, &child.state, Some(exec_id));
                            }
                            match child.disposition {
                                Disposition::Active => {
                                    let est = child.state.est_bytes();
                                    live_mem += est;
                                    mem_by_state.insert(child.state.id, est);
                                    let pr = if coverage_mode {
                                        let f = child.state.frame();
                                        if covered.contains(&(f.func.0, f.block.0)) {
                                            1_000_000 + child.state.depth as i64
                                        } else {
                                            child.state.depth as i64
                                        }
                                    } else {
                                        env.hook.priority(&child.state.meta, child.state.depth)
                                    };
                                    sched.push(child.state, pr);
                                    note_peaks!();
                                }
                                Disposition::Suspended => {
                                    let est = child.state.est_bytes();
                                    live_mem += est;
                                    mem_by_state.insert(child.state.id, est);
                                    rec.counter_add(names::SYMEX_SUSPEND_BRANCH, 1);
                                    rec.observe(
                                        names::SYMEX_HOP_DIVERGENCE,
                                        child.state.meta.hops as u64,
                                    );
                                    env.lineage_event(
                                        lineage_op::SUSPEND_BRANCH,
                                        &child.state,
                                        None,
                                    );
                                    suspended.push(child.state);
                                    note_peaks!();
                                }
                                Disposition::Fault(fault) => {
                                    if is_suppressed(&fault) {
                                        env.lineage_event(lineage_op::EXIT, &child.state, None);
                                        stats.paths_completed += 1;
                                        continue;
                                    }
                                    // The faulting state is live until the
                                    // report is built; count it.
                                    in_flight = 1;
                                    in_flight_mem = child.state.est_bytes();
                                    note_peaks!();
                                    match confirm_model!(child.state) {
                                        Some(model) => {
                                            env.lineage_event(
                                                lineage_op::FAULT,
                                                &child.state,
                                                None,
                                            );
                                            break 'outer LoopEnd::Found(
                                                Box::new(child.state),
                                                fault,
                                                model,
                                            );
                                        }
                                        None => {
                                            env.lineage_event(
                                                lineage_op::UNCONFIRMED,
                                                &child.state,
                                                None,
                                            );
                                            in_flight = 0;
                                            in_flight_mem = 0;
                                            unconfirmed += 1;
                                            rec.counter_add(names::SYMEX_UNCONFIRMED, 1);
                                        }
                                    }
                                }
                            }
                        }
                        continue 'outer;
                    }
                    StepResult::Exit(s) => {
                        env.lineage_event(lineage_op::EXIT, &s, None);
                        stats.paths_completed += 1;
                        continue 'outer;
                    }
                    StepResult::Fault(s, fault) => {
                        if is_suppressed(&fault) {
                            env.lineage_event(lineage_op::EXIT, &s, None);
                            stats.paths_completed += 1;
                            continue 'outer;
                        }
                        in_flight = 1;
                        in_flight_mem = s.est_bytes();
                        note_peaks!();
                        match confirm_model!(s) {
                            Some(model) => {
                                env.lineage_event(lineage_op::FAULT, &s, None);
                                break 'outer LoopEnd::Found(Box::new(s), fault, model);
                            }
                            None => {
                                env.lineage_event(lineage_op::UNCONFIRMED, &s, None);
                                in_flight = 0;
                                in_flight_mem = 0;
                                unconfirmed += 1;
                                rec.counter_add(names::SYMEX_UNCONFIRMED, 1);
                                continue 'outer;
                            }
                        }
                    }
                    StepResult::Suspend(s) => {
                        let est = s.est_bytes();
                        live_mem += est;
                        mem_by_state.insert(s.id, est);
                        suspended.push(s);
                        note_peaks!();
                        continue 'outer;
                    }
                    StepResult::Kill => continue 'outer,
                }
            }
        };

        // The budget-note dedupe marker is last written on trip paths
        // that immediately leave the loop.
        let _ = last_budget_note;
        stats.states_created = next_id + 1;
        stats.left_suspended = suspended.len() as u64 + unconfirmed;
        stats.paths_explored = stats.paths_completed
            + stats.exec.pruned
            + sched.len() as u64
            + suspended.len() as u64
            + unconfirmed;
        let outcome = match end {
            LoopEnd::Found(state, fault, model) => {
                stats.paths_explored += 1;
                RunOutcome::Found(Box::new(self.report(*state, fault, model, &inputs_map)))
            }
            LoopEnd::Exhausted(r) => RunOutcome::Exhausted(r),
            LoopEnd::Completed => RunOutcome::Completed,
        };
        stats.solver = self.solver.stats();

        rec.tick(stats.exec.steps.saturating_sub(last_tick));
        attr.flush(self.module, rec);
        record_run_telemetry(rec, &stats, &solver_before, &outcome);
        rec.span_close(run_span);

        EngineReport {
            outcome,
            stats,
            wall_time: start.elapsed(),
        }
    }

    /// Builds the final vulnerable-path report from the triggering model
    /// the run loop confirmed at the fault site.
    pub(crate) fn report(
        &mut self,
        state: State,
        fault: Fault,
        model: solver::Model,
        inputs_map: &HashMap<InputId, SymValue>,
    ) -> FoundVulnerability {
        let constraints = state.path.to_vec();
        let mut inputs = concrete::InputMap::new();
        for (i, def) in self.module.inputs.iter().enumerate() {
            let id = InputId(i as u32);
            let value = match inputs_map.get(&id) {
                Some(SymValue::Int(t)) => {
                    InputValue::Int(model.value_of(*t, &self.ctx).unwrap_or(0))
                }
                Some(SymValue::Str(s)) => {
                    let mut bytes = Vec::new();
                    for &cell in s.bytes.iter() {
                        let b = model.value_of(cell, &self.ctx).unwrap_or(0);
                        if b == 0 {
                            break;
                        }
                        bytes.push(b as u8);
                    }
                    InputValue::Str(bytes)
                }
                // Input never read on this path: provide a benign default.
                _ => match def.kind {
                    sir::InputKind::Int => InputValue::Int(0),
                    sir::InputKind::Str { .. } => InputValue::Str(Vec::new()),
                },
            };
            inputs.insert(def.name.clone(), value);
        }
        let rendered_constraints = constraints
            .iter()
            .map(|c| self.ctx.render_constraint(c))
            .collect();
        FoundVulnerability {
            fault,
            trace: state.trace.to_vec(),
            constraints,
            rendered_constraints,
            inputs,
            depth: state.depth,
        }
    }
}

/// Stable string label for a run outcome, as emitted in the
/// `engine.outcome` trace event.
pub fn outcome_label(outcome: &RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Found(_) => "found",
        RunOutcome::Completed => "completed",
        RunOutcome::Exhausted(ExhaustionReason::Steps) => "exhausted_steps",
        RunOutcome::Exhausted(ExhaustionReason::Time) => "exhausted_time",
        RunOutcome::Exhausted(ExhaustionReason::Memory) => "exhausted_memory",
        RunOutcome::Exhausted(ExhaustionReason::LiveStates) => "exhausted_live_states",
        RunOutcome::Exhausted(ExhaustionReason::Cancelled) => "cancelled",
        RunOutcome::Exhausted(ExhaustionReason::Budget) => "budget_exceeded",
    }
}

/// Mirrors one finished run's [`EngineStats`] into recorder counters and
/// emits the `engine.outcome` event, so a trace file reconciles exactly
/// with the printed report. Counters accumulate across candidate attempts
/// sharing one recorder.
///
/// `solver_before` is the solver's stats snapshot taken before the run:
/// solver counters are emitted as deltas so a solver reused across runs
/// is not double-counted. Pass `SolverStats::default()` for a fresh
/// solver.
///
/// This is called by [`Engine::run`] itself; portfolio workers get it
/// for free by pointing the engine at their private `BufferedRecorder`
/// (the buffers are merged into the main trace after the join, so no
/// replay step exists anymore).
pub fn record_run_telemetry(
    rec: &dyn Recorder,
    stats: &EngineStats,
    solver_before: &SolverStats,
    outcome: &RunOutcome,
) {
    if !rec.enabled() {
        return;
    }
    rec.counter_add(names::SYMEX_STEPS, stats.exec.steps);
    rec.counter_add(names::SYMEX_FORKS, stats.exec.forks);
    rec.counter_add(names::SYMEX_PRUNED, stats.exec.pruned);
    rec.counter_add(names::SYMEX_SUSPENDED, stats.exec.suspended);
    rec.counter_add(names::SYMEX_CONCRETIZATIONS, stats.exec.concretizations);
    rec.counter_add(names::SYMEX_STRLEN_FORKS, stats.exec.strlen_forks);
    rec.counter_add(names::SYMEX_PATHS_COMPLETED, stats.paths_completed);
    rec.counter_add(names::SYMEX_PATHS_EXPLORED, stats.paths_explored);
    rec.counter_add(names::SYMEX_STATES_CREATED, stats.states_created);
    rec.counter_add(names::SYMEX_LEFT_SUSPENDED, stats.left_suspended);
    rec.gauge_max(names::SYMEX_PEAK_LIVE_STATES, stats.peak_live_states as i64);
    rec.gauge_max(names::SYMEX_PEAK_MEMORY, stats.peak_memory as i64);
    let sv = &stats.solver;
    rec.counter_add(names::SOLVER_QUERIES, sv.queries - solver_before.queries);
    rec.counter_add(names::SOLVER_SAT, sv.sat - solver_before.sat);
    rec.counter_add(names::SOLVER_UNSAT, sv.unsat - solver_before.unsat);
    rec.counter_add(names::SOLVER_UNKNOWN, sv.unknown - solver_before.unknown);
    rec.counter_add(
        names::SOLVER_CACHE_HITS,
        sv.cache_hits - solver_before.cache_hits,
    );
    rec.counter_add(
        names::SOLVER_SHARED_HITS,
        sv.shared_hits - solver_before.shared_hits,
    );
    rec.counter_add(
        names::SOLVER_SHARED_MISSES,
        sv.shared_misses - solver_before.shared_misses,
    );
    rec.counter_add(names::SOLVER_NODES, sv.nodes - solver_before.nodes);
    rec.counter_add(
        names::SOLVER_PROPAGATION_ROUNDS,
        sv.propagation_rounds - solver_before.propagation_rounds,
    );
    rec.counter_add(
        names::SOLVER_BACKTRACKS,
        sv.backtracks - solver_before.backtracks,
    );
    // Independence-slicing and unsat-cache counters follow the
    // zero-vs-absent convention: emitted only when the run actually
    // exercised the feature, so traces of runs with slicing/ucache off
    // are byte-identical to pre-feature traces. The gate is per
    // *family*, not per counter: once a family is exercised, all of its
    // counters are emitted — zeros included — so a legitimate zero
    // (e.g. no component hits despite sliced queries) reads as `0` in
    // `inspect diff`, not as a schema change.
    let indep = [
        (
            names::SOLVER_INDEP_QUERIES,
            sv.indep_queries.saturating_sub(solver_before.indep_queries),
        ),
        (
            names::SOLVER_INDEP_COMPONENTS,
            sv.indep_components
                .saturating_sub(solver_before.indep_components),
        ),
        (
            names::SOLVER_INDEP_COMP_HITS,
            sv.indep_comp_hits
                .saturating_sub(solver_before.indep_comp_hits),
        ),
    ];
    if sv.indep_queries > solver_before.indep_queries {
        for (name, delta) in indep {
            rec.counter_add(name, delta);
        }
    }
    let ucache = [
        (
            names::SOLVER_UCACHE_SUB_HITS,
            sv.ucache_sub_hits
                .saturating_sub(solver_before.ucache_sub_hits),
        ),
        (
            names::SOLVER_UCACHE_SUP_HITS,
            sv.ucache_sup_hits
                .saturating_sub(solver_before.ucache_sup_hits),
        ),
        (
            names::SOLVER_UCACHE_SUP_REJECTS,
            sv.ucache_sup_rejects
                .saturating_sub(solver_before.ucache_sup_rejects),
        ),
        (
            names::SOLVER_UCACHE_STORES,
            sv.ucache_stores.saturating_sub(solver_before.ucache_stores),
        ),
        (
            names::SOLVER_UCACHE_MISSES,
            sv.ucache_misses.saturating_sub(solver_before.ucache_misses),
        ),
    ];
    if ucache.iter().any(|&(_, delta)| delta > 0) {
        for (name, delta) in ucache {
            rec.counter_add(name, delta);
        }
    }
    rec.event(
        names::ENGINE_OUTCOME,
        &[
            ("outcome", FieldValue::from(outcome_label(outcome))),
            ("steps", FieldValue::from(stats.exec.steps)),
            ("paths_explored", FieldValue::from(stats.paths_explored)),
            ("forks", FieldValue::from(stats.exec.forks)),
            (
                "solver_queries",
                FieldValue::from(sv.queries - solver_before.queries),
            ),
            (
                "solver_nodes",
                FieldValue::from(sv.nodes - solver_before.nodes),
            ),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::{FaultKind, Vm, VmConfig};

    fn engine_run(src: &str, config: EngineConfig) -> (EngineReport, sir::Module) {
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let report = {
            let mut eng = Engine::new(&m, config);
            eng.run()
        };
        (report, m)
    }

    #[test]
    fn concrete_program_completes_without_fault() {
        let (r, _) = engine_run(
            "fn main() -> int { let i: int = 0; while (i < 10) { i = i + 1; } return i; }",
            EngineConfig::default(),
        );
        assert!(matches!(r.outcome, RunOutcome::Completed));
        assert_eq!(r.stats.paths_completed, 1);
    }

    #[test]
    fn finds_assert_violation_and_model_replays() {
        let src = r#"
            fn main() {
                let n: int = input_int("n");
                if (n > 100) { assert(n < 150); }
            }
        "#;
        let (r, m) = engine_run(src, EngineConfig::default());
        let found = r.outcome.found().expect("fault expected");
        assert_eq!(found.fault.kind, FaultKind::AssertFailed);
        // The generated input must actually crash the concrete VM.
        let vm = Vm::new(&m, VmConfig::default());
        let replay = vm.run(&found.inputs).unwrap();
        assert!(replay.outcome.is_fault(), "model input must reproduce");
        let n = match found.inputs.get("n") {
            Some(InputValue::Int(v)) => *v,
            other => panic!("unexpected input {other:?}"),
        };
        assert!(n >= 150, "constraint n >= 150 required, got {n}");
    }

    #[test]
    fn finds_string_driven_buffer_overflow() {
        // The polymorph pattern in miniature: copy a symbolic string into
        // a fixed 4-byte buffer without a bounds check.
        let src = r#"
            fn copy(s: str) {
                let b: buf[4];
                let i: int = 0;
                while (char_at(s, i) != 0) {
                    buf_set(b, i, char_at(s, i));
                    i = i + 1;
                }
            }
            fn main() {
                let s: str = input_str("arg", 8);
                copy(s);
            }
        "#;
        let (r, m) = engine_run(src, EngineConfig::default());
        let found = r.outcome.found().expect("overflow expected");
        assert!(matches!(
            found.fault.kind,
            FaultKind::BufferOverflow { cap: 4, .. }
        ));
        assert_eq!(found.fault.func, "copy");
        // Trace passes through copy():enter and never leaves it.
        assert!(found.trace.contains(&Location::enter("copy")));
        assert!(!found.trace.contains(&Location::leave("copy")));
        // Replay.
        let vm = Vm::new(&m, VmConfig::default());
        let replay = vm.run(&found.inputs).unwrap();
        let fault = replay.outcome.fault().expect("replay faults");
        assert!(matches!(fault.kind, FaultKind::BufferOverflow { .. }));
        // The triggering string must have at least 5 bytes.
        match found.inputs.get("arg") {
            Some(InputValue::Str(bytes)) => assert!(bytes.len() >= 5, "len {}", bytes.len()),
            other => panic!("unexpected input {other:?}"),
        }
    }

    #[test]
    fn infeasible_fault_is_not_reported() {
        let src = r#"
            fn main() {
                let n: int = input_int("n");
                if (n > 10) {
                    if (n < 5) { assert(false); } // unreachable
                }
            }
        "#;
        let (r, _) = engine_run(src, EngineConfig::default());
        assert!(matches!(r.outcome, RunOutcome::Completed));
        assert!(r.stats.exec.pruned > 0);
    }

    #[test]
    fn memory_budget_exhaustion() {
        // Exponential forking over 24 independent symbolic branches with
        // a tiny modeled memory budget must exhaust memory (the paper's
        // pure-KLEE failure mode).
        let src = r#"
            fn main() -> int {
                let s: str = input_str("x", 24);
                let acc: int = 0;
                let i: int = 0;
                while (i < 24) {
                    if (char_at(s, i) > 64) { acc = acc + 1; } else { acc = acc + 2; }
                    i = i + 1;
                }
                return acc;
            }
        "#;
        let cfg = EngineConfig {
            memory_budget: 200_000,
            ..EngineConfig::default()
        };
        let (r, _) = engine_run(src, cfg);
        assert!(
            matches!(r.outcome, RunOutcome::Exhausted(ExhaustionReason::Memory)),
            "got {:?}",
            r.outcome
        );
        assert!(r.stats.peak_memory >= 200_000);
    }

    #[test]
    fn dfs_reaches_deep_fault_quickly() {
        // DFS following the loop-continuation branch reaches the overflow
        // at depth 16 without enumerating shallow exits first.
        let src = r#"
            fn main() {
                let s: str = input_str("a", 32);
                let b: buf[16];
                let i: int = 0;
                while (char_at(s, i) != 0) {
                    buf_set(b, i, 1);
                    i = i + 1;
                }
            }
        "#;
        let bfs = engine_run(src, EngineConfig::default()).0;
        let dfs = engine_run(
            src,
            EngineConfig {
                scheduler: SchedulerKind::Dfs,
                ..EngineConfig::default()
            },
        )
        .0;
        assert!(bfs.outcome.is_found());
        assert!(dfs.outcome.is_found());
        assert!(
            dfs.stats.peak_live_states <= bfs.stats.peak_live_states,
            "dfs {} vs bfs {}",
            dfs.stats.peak_live_states,
            bfs.stats.peak_live_states
        );
    }

    #[test]
    fn random_scheduler_is_deterministic() {
        let src = r#"
            fn main() {
                let s: str = input_str("a", 8);
                let b: buf[4];
                let i: int = 0;
                while (char_at(s, i) != 0) { buf_set(b, i, 1); i = i + 1; }
            }
        "#;
        let cfg = EngineConfig {
            scheduler: SchedulerKind::Random { seed: 11 },
            ..EngineConfig::default()
        };
        let a = engine_run(src, cfg).0;
        let b = engine_run(src, cfg).0;
        assert_eq!(a.stats.exec.steps, b.stats.exec.steps);
        assert_eq!(a.stats.paths_explored, b.stats.paths_explored);
    }

    #[test]
    fn strlen_on_symbolic_string_forks_per_length() {
        let src = r#"
            fn main() -> int {
                let s: str = input_str("x", 3);
                return len(s);
            }
        "#;
        let (r, _) = engine_run(src, EngineConfig::default());
        assert!(matches!(r.outcome, RunOutcome::Completed));
        // Lengths 0, 1, 2, 3 are all feasible -> 4 completed paths.
        assert_eq!(r.stats.paths_completed, 4);
        assert_eq!(r.stats.exec.strlen_forks, 1);
    }

    #[test]
    fn div_by_symbolic_zero_forks_fault() {
        let src = r#"
            fn main() -> int {
                let d: int = input_int("d");
                return 100 / d;
            }
        "#;
        let (r, m) = engine_run(src, EngineConfig::default());
        let found = r.outcome.found().expect("div fault");
        assert_eq!(found.fault.kind, FaultKind::DivByZero);
        let vm = Vm::new(&m, VmConfig::default());
        let replay = vm.run(&found.inputs).unwrap();
        assert_eq!(replay.outcome.fault().unwrap().kind, FaultKind::DivByZero);
    }

    #[test]
    fn step_budget_exhaustion() {
        let cfg = EngineConfig {
            max_steps: 100,
            ..EngineConfig::default()
        };
        let (r, _) = engine_run(
            "fn main() { let i: int = 0; while (i < 100000) { i = i + 1; } }",
            cfg,
        );
        assert!(matches!(
            r.outcome,
            RunOutcome::Exhausted(ExhaustionReason::Steps)
        ));
    }

    // Shared driver for the budget tests: records a lineage trace of a
    // budget-limited run and returns (report, trace events).
    fn budget_run(src: &str, budget: Budget) -> (EngineReport, Vec<statsym_telemetry::TraceEvent>) {
        use statsym_telemetry::{Clock, MemRecorder};
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let rec = MemRecorder::new(Clock::steps());
        let report = {
            let mut eng = Engine::new(
                &m,
                EngineConfig {
                    budget,
                    lineage: true,
                    ..EngineConfig::default()
                },
            );
            eng.set_recorder(&rec);
            eng.run()
        };
        (report, rec.finish())
    }

    const LONG_LOOP: &str = "fn main() { let i: int = 0; while (i < 100000) { i = i + 1; } }";

    #[test]
    fn step_budget_trips_as_budget_exceeded_with_full_telemetry() {
        use statsym_telemetry::TraceEvent;
        let budget = Budget {
            max_steps: Some(100),
            ..Budget::default()
        };
        let (r, events) = budget_run(LONG_LOOP, budget);
        assert!(matches!(
            r.outcome,
            RunOutcome::Exhausted(ExhaustionReason::Budget)
        ));
        assert_eq!(outcome_label(&r.outcome), "budget_exceeded");
        // The in-flight state carries the terminal disposition.
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::State { op, .. } if op == lineage_op::BUDGET_EXCEEDED
            )),
            "lineage budget_exceeded disposition expected"
        );
        // Trip counter and usage gauges are materialized.
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Counter { name, value: 1 } if name == names::BUDGET_EXCEEDED
        )));
        let steps_used = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Gauge { name, value } if name == names::BUDGET_STEPS_USED => {
                    Some(*value)
                }
                _ => None,
            })
            .expect("budget.steps_used gauge present");
        assert!(steps_used > 100, "gauge reflects usage, got {steps_used}");
        // Periodic progress events use deterministic fields only under
        // the step clock.
        let tick_fields: Vec<&str> = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Event { name, fields, .. } if name == names::BUDGET_TICK => {
                    Some(fields.iter().map(|(k, _)| k.as_str()).collect())
                }
                _ => None,
            })
            .expect("budget.tick event present");
        assert_eq!(tick_fields, ["steps", "states"]);
    }

    #[test]
    fn state_budget_trips_on_fork_heavy_program() {
        let src = r#"
            fn main() -> int {
                let s: str = input_str("s", 6);
                let t: str = input_str("t", 6);
                return len(s) + len(t);
            }
        "#;
        let budget = Budget {
            max_states: Some(4),
            ..Budget::default()
        };
        let (r, events) = budget_run(src, budget);
        assert!(matches!(
            r.outcome,
            RunOutcome::Exhausted(ExhaustionReason::Budget)
        ));
        assert!(r.stats.states_created > 4);
        assert!(events.iter().any(|e| matches!(
            e,
            statsym_telemetry::TraceEvent::State { op, .. } if op == lineage_op::BUDGET_EXCEEDED
        )));
    }

    #[test]
    fn budget_limited_runs_are_deterministic() {
        use statsym_telemetry::render_trace;
        let budget = Budget {
            max_steps: Some(1000),
            max_states: Some(100),
            ..Budget::default()
        };
        let (r1, ev1) = budget_run(LONG_LOOP, budget);
        let (r2, ev2) = budget_run(LONG_LOOP, budget);
        assert!(matches!(
            r1.outcome,
            RunOutcome::Exhausted(ExhaustionReason::Budget)
        ));
        assert_eq!(r1.stats.exec.steps, r2.stats.exec.steps);
        assert_eq!(render_trace(&ev1), render_trace(&ev2));
    }

    #[test]
    fn unlimited_budget_emits_no_budget_telemetry() {
        let (r, events) = budget_run(LONG_LOOP, Budget::unlimited());
        assert!(matches!(r.outcome, RunOutcome::Completed));
        let trace = statsym_telemetry::render_trace(&events);
        assert!(
            !trace.contains("budget"),
            "default-budget traces must be free of budget.* telemetry"
        );
    }

    #[test]
    fn coverage_scheduler_finds_faults_and_prefers_new_blocks() {
        let src = r#"
            fn main() {
                let s: str = input_str("a", 16);
                let b: buf[8];
                let i: int = 0;
                while (char_at(s, i) != 0) {
                    buf_set(b, i, 1);
                    i = i + 1;
                }
            }
        "#;
        let cov = engine_run(
            src,
            EngineConfig {
                scheduler: SchedulerKind::Coverage,
                ..EngineConfig::default()
            },
        )
        .0;
        assert!(cov.outcome.is_found());
        let bfs = engine_run(src, EngineConfig::default()).0;
        assert!(bfs.outcome.is_found());
        // Coverage search is at least as frugal with live states here.
        assert!(cov.stats.peak_live_states <= bfs.stats.peak_live_states);
    }

    #[test]
    fn suppressed_fault_sites_are_skipped() {
        let src = r#"
            fn main() {
                let n: int = input_int("n");
                if (n > 10) { assert(false); }
                if (n < -10) {
                    let b: buf[2];
                    buf_set(b, 5, 1);
                }
            }
        "#;
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        // First run: finds one of the two faults.
        let first = {
            let mut eng = Engine::new(&m, EngineConfig::default());
            eng.run()
        };
        let f1 = first.outcome.found().expect("first fault").fault.clone();
        // Second run with the first site suppressed: finds the *other*.
        let second = {
            let mut eng = Engine::new(&m, EngineConfig::default());
            eng.suppress_fault_site(f1.func.clone(), f1.span);
            eng.run()
        };
        let f2 = second.outcome.found().expect("second fault").fault.clone();
        assert_ne!((&f1.func, f1.span), (&f2.func, f2.span));
        // Third run with both suppressed: completes.
        let third = {
            let mut eng = Engine::new(&m, EngineConfig::default());
            eng.suppress_fault_site(f1.func.clone(), f1.span);
            eng.suppress_fault_site(f2.func.clone(), f2.span);
            eng.run()
        };
        assert!(matches!(third.outcome, RunOutcome::Completed));
    }

    #[test]
    fn globals_are_tracked_per_state() {
        let src = r#"
            global seen: int = 0;
            fn mark(v: int) { seen = v; }
            fn main() {
                let n: int = input_int("n");
                if (n > 0) { mark(1); } else { mark(2); }
                assert(seen != 2);
            }
        "#;
        let (r, m) = engine_run(src, EngineConfig::default());
        let found = r.outcome.found().expect("assert reachable via else");
        let vm = Vm::new(&m, VmConfig::default());
        let replay = vm.run(&found.inputs).unwrap();
        assert_eq!(
            replay.outcome.fault().unwrap().kind,
            FaultKind::AssertFailed
        );
        match found.inputs.get("n") {
            Some(InputValue::Int(v)) => assert!(*v <= 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pre_tripped_cancel_token_exits_before_any_work() {
        let src = r#"
            fn main() {
                let i: int = 0;
                while (i < 100000) { i = i + 1; }
            }
        "#;
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let mut eng = Engine::new(&m, EngineConfig::default());
        let token = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        eng.set_cancel_token(token);
        let r = eng.run();
        assert!(
            matches!(
                r.outcome,
                RunOutcome::Exhausted(ExhaustionReason::Cancelled)
            ),
            "got {:?}",
            r.outcome
        );
        // The token is checked before the first scheduler pop: no state
        // was ever selected, so no instruction ran.
        assert_eq!(r.stats.exec.steps, 0);
    }

    #[test]
    fn cancel_token_interrupts_a_long_straight_line_run() {
        // A long concrete loop between scheduling points: the inner
        // every-8192-steps check must observe the token without waiting
        // for the state to terminate.
        let src = r#"
            fn main() {
                let i: int = 0;
                while (i < 100000000) { i = i + 1; }
            }
        "#;
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let mut eng = Engine::new(&m, EngineConfig::default());
        let token = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        eng.set_cancel_token(token.clone());
        let flipper = std::thread::spawn({
            let token = token.clone();
            move || {
                std::thread::sleep(Duration::from_millis(30));
                token.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        });
        let r = eng.run();
        flipper.join().unwrap();
        assert!(
            matches!(
                r.outcome,
                RunOutcome::Exhausted(ExhaustionReason::Cancelled)
            ),
            "got {:?}",
            r.outcome
        );
        // It made progress, then stopped well short of the loop's end.
        assert!(r.stats.exec.steps > 0);
    }

    #[test]
    fn cancelled_outcome_renders_and_reconciles_in_telemetry() {
        use statsym_telemetry::{names, Clock, MemRecorder, TraceEvent};
        let src = r#"
            fn main() {
                let i: int = 0;
                while (i < 100000) { i = i + 1; }
            }
        "#;
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let rec = MemRecorder::new(Clock::steps());
        let stats = {
            let mut eng = Engine::new(&m, EngineConfig::default());
            eng.set_recorder(&rec);
            let token = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
            eng.set_cancel_token(token);
            eng.run().stats
        };
        let events = rec.finish();
        let outcome = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Event { name, fields, .. } if name == names::ENGINE_OUTCOME => fields
                    .iter()
                    .find(|(k, _)| k == "outcome")
                    .map(|(_, v)| format!("{v:?}")),
                _ => None,
            })
            .expect("engine.outcome event present");
        assert!(outcome.contains("cancelled"), "outcome was {outcome}");
        // Counters still reconcile with the returned EngineStats.
        let counter = |name: &str| {
            events
                .iter()
                .find_map(|e| match e {
                    TraceEvent::Counter { name: n, value } if n == name => Some(*value),
                    _ => None,
                })
                .unwrap_or(0)
        };
        assert_eq!(counter(names::SYMEX_STEPS), stats.exec.steps);
        assert_eq!(counter(names::SYMEX_PATHS_EXPLORED), stats.paths_explored);
        assert_eq!(counter(names::SOLVER_QUERIES), stats.solver.queries);
        assert_eq!(ExhaustionReason::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn peak_live_states_is_exact_under_bfs() {
        // Two sequential strlen fan-outs over cap-3 strings. Under FIFO
        // BFS all four first-level children fork before any second-level
        // child is consumed, so exactly 12 queued + 4 freshly pushed
        // states coexist. Peak tracking must report precisely 16 — no
        // more (over-counting the consumed parent) and no less (sampling
        // too coarsely to see the burst).
        let src = r#"
            fn main() -> int {
                let s: str = input_str("x", 3);
                let a: int = len(s);
                let t: str = input_str("y", 3);
                let b: int = len(t);
                return a + b;
            }
        "#;
        let (r, _) = engine_run(src, EngineConfig::default());
        assert!(matches!(r.outcome, RunOutcome::Completed));
        assert_eq!(r.stats.paths_completed, 16);
        assert_eq!(r.stats.peak_live_states, 16, "peak must be exact");
    }

    #[test]
    fn peak_memory_counts_in_flight_state_at_fault() {
        // The only state that ever holds the 2000-cell buffer is the one
        // in flight when the fault fires: it allocates the buffer after
        // being popped and the run ends at the fault, so checkpoint-only
        // sampling never sees the 8 KB heap. Peak tracking must include
        // the in-flight state.
        let src = r#"
            fn main() {
                let b: buf[2000];
                let i: int = input_int("i");
                buf_set(b, i, 1);
            }
        "#;
        let (r, _) = engine_run(src, EngineConfig::default());
        let found = r.outcome.found().expect("overflow expected");
        assert!(matches!(
            found.fault.kind,
            FaultKind::BufferOverflow { cap: 2000, .. }
        ));
        assert!(
            r.stats.peak_memory >= 8000,
            "peak_memory {} must cover the in-flight 2000-cell heap",
            r.stats.peak_memory
        );
    }

    // Shared driver for the attribution tests: records a step-clock
    // trace of a run under `config` and returns (report, trace text).
    fn attr_run(src: &str, config: EngineConfig) -> (EngineReport, String) {
        use statsym_telemetry::{Clock, MemRecorder};
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let rec = MemRecorder::new(Clock::steps());
        let report = {
            let mut eng = Engine::new(&m, config);
            eng.set_recorder(&rec);
            eng.run()
        };
        let trace = statsym_telemetry::render_trace(&rec.finish());
        (report, trace)
    }

    const ATTR_SRC: &str = r#"
        fn main() {
            let b: buf[8];
            let i: int = input_int("i");
            let j: int = 0;
            while (j < 3) { j = j + 1; }
            buf_set(b, i, 1);
        }
    "#;

    #[test]
    fn attribution_bills_every_step_to_a_source_line() {
        let cfg = EngineConfig {
            attribution: true,
            ..EngineConfig::default()
        };
        let (r, trace) = attr_run(ATTR_SRC, cfg);
        assert!(r.outcome.found().is_some());
        let events = statsym_telemetry::parse_trace_strict(&trace).expect("strict parse");
        let mut step_total = 0u64;
        let mut saw_attr = false;
        for e in &events {
            if let statsym_telemetry::TraceEvent::Counter { name, value } = e {
                let Some(rest) = name.strip_prefix(names::ATTR_PREFIX) else {
                    continue;
                };
                saw_attr = true;
                let (loc, dim) = rest.rsplit_once('.').expect("attr name has a dim");
                assert!(
                    names::ATTR_DIMS.contains(&dim),
                    "unknown attr dim in {name}"
                );
                assert_ne!(dim, "us", "no wall µs under the step clock");
                assert!(loc.contains(':'), "attr loc {loc} is function:line");
                if dim == "steps" {
                    step_total += value;
                }
            }
        }
        assert!(saw_attr, "attribution counters expected");
        // Conservation: every executed instruction is billed exactly once.
        assert_eq!(step_total, r.stats.exec.steps);
    }

    #[test]
    fn attribution_and_provenance_default_off_emit_nothing() {
        let (_, trace) = attr_run(ATTR_SRC, EngineConfig::default());
        assert!(
            !trace.contains("\"k\":\"counter\",\"name\":\"attr."),
            "default traces must be free of attr.* counters"
        );
        assert!(
            !trace.contains("\"k\":\"query\""),
            "default traces must be free of query events"
        );
    }

    #[test]
    fn provenance_stamps_queries_with_rank_and_location() {
        let cfg = EngineConfig {
            provenance: true,
            candidate_rank: 3,
            ..EngineConfig::default()
        };
        let (_, trace) = attr_run(ATTR_SRC, cfg);
        let events = statsym_telemetry::parse_trace_strict(&trace).expect("strict parse");
        let mut saw_query = false;
        for e in &events {
            if let statsym_telemetry::TraceEvent::Query {
                loc, rank, site, ..
            } = e
            {
                saw_query = true;
                assert_eq!(*rank, 3);
                assert!(loc.contains(':'), "query loc {loc} is function:line");
                assert!(!site.is_empty());
            }
        }
        assert!(saw_query, "provenance query events expected");
    }

    // Two independent symbolic inputs: slicing finds two components.
    const INDEP_SRC: &str = r#"
        fn main() {
            let b: buf[8];
            let i: int = input_int("i");
            let k: int = input_int("k");
            if (i > 2) {
                if (k > 3) {
                    buf_set(b, i, 1);
                }
            }
        }
    "#;

    #[test]
    fn disabled_solver_features_emit_no_counters() {
        // Zero-vs-absent: a run with slicing off and no unsat cache
        // must not mention either counter family at all — its trace is
        // byte-identical to one from a build that predates the features.
        let (_, trace) = attr_run(INDEP_SRC, EngineConfig::default());
        assert!(!trace.contains("solver.indep."), "{trace}");
        assert!(!trace.contains("solver.ucache."), "{trace}");

        // Slicing on: the indep family appears, ucache stays absent.
        let mut cfg = EngineConfig::default();
        cfg.solver.slice = true;
        let (_, trace) = attr_run(INDEP_SRC, cfg);
        assert!(
            trace.contains("\"name\":\"solver.indep.queries\""),
            "{trace}"
        );
        assert!(!trace.contains("solver.ucache."), "{trace}");

        // Unsat cache attached: the ucache family appears (misses at
        // minimum), indep stays absent with slicing off.
        use statsym_telemetry::{Clock, MemRecorder};
        let p = minic::parse_program(INDEP_SRC).unwrap();
        let m = sir::lower(&p).unwrap();
        let rec = MemRecorder::new(Clock::steps());
        {
            let mut eng = Engine::new(&m, EngineConfig::default());
            eng.set_unsat_cache(Arc::new(UnsatCache::new(1024)));
            eng.set_recorder(&rec);
            eng.run();
        }
        let trace = statsym_telemetry::render_trace(&rec.finish());
        assert!(trace.contains("\"name\":\"solver.ucache."), "{trace}");
        assert!(!trace.contains("solver.indep."), "{trace}");
    }

    #[test]
    fn attribution_is_byte_identical_across_state_worker_counts() {
        let run = |workers: usize| {
            let cfg = EngineConfig {
                attribution: true,
                provenance: true,
                candidate_rank: 1,
                lineage: true,
                state_workers: workers,
                ..EngineConfig::default()
            };
            attr_run(ATTR_SRC, cfg)
        };
        let (r1, t1) = run(1);
        let (r4, t4) = run(4);
        assert!(r1.outcome.found().is_some());
        assert_eq!(r1.stats.exec.steps, r4.stats.exec.steps);
        assert_eq!(t1, t4, "attr/query trace must not depend on worker count");
        assert!(t1.contains("\"name\":\"attr."));
        assert!(t1.contains("\"k\":\"query\""));
    }
}
