//! Symbolic instruction stepping: forking, fault detection, guidance
//! application, and concretization.

use crate::hook::{EventCtx, EventHook};
use crate::lineage::{state_loc, Lineage, WorkSnapshot};
use crate::state::{Frame, State};
use crate::value::{BoolVal, SymBuf, SymStr, SymValue};
use concrete::{Fault, FaultKind, Location, MAX_ALLOC};
use minic::{BinOp, Span};
use sir::{ConstValue, FuncId, InputId, InputKind, Inst, Module, Reg, Terminator};
use solver::{CmpOp, Constraint, SatResult, Solver, TermCtx, TermId};
use statsym_telemetry::{lineage_op, names, FieldValue, Recorder};
use std::collections::HashMap;
use std::sync::Arc;

/// Mutable engine context threaded through stepping.
pub(crate) struct ExecEnv<'e> {
    pub module: &'e Module,
    pub ctx: &'e mut TermCtx,
    pub solver: &'e mut Solver,
    /// Symbolic values for named inputs, shared by all states.
    pub inputs: &'e mut HashMap<InputId, SymValue>,
    pub hook: &'e mut dyn EventHook,
    pub stats: &'e mut ExecStats,
    pub rec: &'e dyn Recorder,
    pub max_call_depth: usize,
    pub next_state_id: &'e mut u64,
    pub lineage: &'e mut Lineage,
}

/// Work counters for the executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub steps: u64,
    /// Fork points executed (branches, symbolic asserts, strlen, ...).
    pub forks: u64,
    /// Children discarded as infeasible.
    pub pruned: u64,
    /// Children parked because they conflict with guidance.
    pub suspended: u64,
    /// Symbolic indices pinned to a concrete model value.
    pub concretizations: u64,
    /// `strlen` fan-outs on symbolic strings.
    pub strlen_forks: u64,
}

/// What became of one fork child.
#[derive(Debug)]
pub(crate) enum Disposition {
    /// Keep exploring.
    Active,
    /// Conflicts with soft guidance constraints; park it.
    Suspended,
    /// The child reaches a fault (feasible on its hard constraints).
    Fault(Fault),
}

/// One fork child plus its classification.
#[derive(Debug)]
pub(crate) struct ForkChild {
    pub state: State,
    pub disposition: Disposition,
}

/// Result of stepping a state by one instruction or terminator.
#[derive(Debug)]
pub(crate) enum StepResult {
    /// The state advanced in place.
    Continue(State),
    /// The state split; children are classified individually.
    Fork(Vec<ForkChild>),
    /// The path terminated normally.
    Exit(State),
    /// The path reached a fault.
    Fault(State, Fault),
    /// Guidance asked to park the state.
    Suspend(State),
    /// The state became infeasible (e.g. guidance injection contradicts
    /// the hard path); it is dropped.
    Kill,
}

impl<'e> ExecEnv<'e> {
    fn fresh_id(&mut self) -> u64 {
        *self.next_state_id += 1;
        *self.next_state_id
    }

    /// Cumulative work counters for lineage delta attribution.
    fn work(&self) -> WorkSnapshot {
        let sv = self.solver.stats();
        WorkSnapshot {
            steps: self.stats.steps,
            solver_nodes: sv.nodes,
            solver_us: sv.query_us,
        }
    }

    /// Emits one lineage event for `state` (no-op unless lineage
    /// tracing is on). `parent` is the fork parent's engine-local id
    /// for introducing ops.
    pub(crate) fn lineage_event(&mut self, op: &'static str, state: &State, parent: Option<u64>) {
        if !self.lineage.on() {
            return;
        }
        let loc = state_loc(self.module, state);
        let work = self.work();
        self.lineage.emit(
            self.rec,
            op,
            state.id,
            parent,
            &loc,
            state.meta.hops,
            state.depth,
            work,
        );
    }

    /// Emits the `candidate.node` coverage event for a guidance-hook
    /// match (lineage tracing only): candidate-path node `node` matched
    /// at `loc`, conjoining `conj` predicates, with `outcome` `ok`,
    /// `conflict`, or `kill`.
    fn note_candidate_node(
        &self,
        matched: Option<usize>,
        loc: &Location,
        conj: usize,
        outcome: &str,
    ) {
        let Some(node) = matched else { return };
        if !self.lineage.on() {
            return;
        }
        self.rec.event(
            names::CANDIDATE_NODE,
            &[
                ("node", FieldValue::from(node)),
                ("loc", FieldValue::from(loc.to_string())),
                ("conj", FieldValue::from(conj)),
                ("outcome", FieldValue::from(outcome)),
            ],
        );
    }

    /// Feasibility of a conjunction; `Unknown` counts as feasible.
    /// Model-free (`check_sat_traced`), so shared-cache `Sat` verdicts
    /// can answer it — `Sat` and `Unknown` are interchangeable here,
    /// which is what makes verdict sharing exploration-invariant.
    fn feasible(&mut self, cons: &[Constraint]) -> bool {
        !self
            .solver
            .check_sat_traced_at(self.ctx, cons, self.rec, "feasibility")
            .is_unsat()
    }

    fn feasible_state(&mut self, state: &State) -> bool {
        let cons = state.all_constraints();
        self.feasible(&cons)
    }

    /// Classifies a candidate child: active, suspended (violates soft
    /// constraints only), or pruned (`None`).
    fn classify(&mut self, state: &State) -> Option<Disposition> {
        if self.feasible_state(state) {
            return Some(Disposition::Active);
        }
        if !state.soft.is_empty() {
            let hard = state.path.to_vec();
            if self.feasible(&hard) {
                return Some(Disposition::Suspended);
            }
        }
        None
    }

    fn fault(&self, state: &State, kind: FaultKind, span: Span) -> Fault {
        Fault {
            kind,
            func: self.module.func(state.frame().func).name.clone(),
            span,
        }
    }

    /// Runs the guidance hook for a function-boundary event. Returns
    /// `Some(result)` when the event decides the state's fate.
    fn apply_event(
        &mut self,
        state: &mut State,
        loc: Location,
        params: &[(String, minic::Type)],
        args: &[SymValue],
        ret: Option<&SymValue>,
    ) -> Option<StepResult> {
        state.trace = state.trace.push(loc.clone());
        if state.guidance_off {
            return None;
        }
        let result = {
            let ev = EventCtx {
                loc: &loc,
                params,
                args,
                ret,
                global_defs: &self.module.globals,
                globals: &state.globals,
            };
            self.hook.on_event(&ev, &mut state.meta, self.ctx)
        };
        let matched = result.matched;
        let conj = result.constraints.len();
        let injected = !result.constraints.is_empty();
        for c in result.constraints {
            state.soft = state.soft.push(c);
        }
        if injected && !self.feasible_state(state) {
            let hard = state.path.to_vec();
            return if self.feasible(&hard) {
                self.note_candidate_node(matched, &loc, conj, "conflict");
                self.stats.suspended += 1;
                self.rec.counter_add(names::SYMEX_SUSPEND_PREDICATE, 1);
                self.rec
                    .observe(names::SYMEX_HOP_DIVERGENCE, state.meta.hops as u64);
                self.lineage_event(lineage_op::SUSPEND_PREDICATE, state, None);
                Some(StepResult::Suspend(std::mem::replace(state, dummy_state())))
            } else {
                self.note_candidate_node(matched, &loc, conj, "kill");
                self.stats.pruned += 1;
                self.rec.counter_add(names::SYMEX_KILL, 1);
                self.lineage_event(lineage_op::KILL, state, None);
                Some(StepResult::Kill)
            };
        }
        self.note_candidate_node(matched, &loc, conj, "ok");
        if result.suspend {
            self.stats.suspended += 1;
            self.rec.counter_add(names::SYMEX_SUSPEND_TAU, 1);
            self.rec
                .observe(names::SYMEX_HOP_DIVERGENCE, state.meta.hops as u64);
            self.lineage_event(lineage_op::SUSPEND_TAU, state, None);
            return Some(StepResult::Suspend(std::mem::replace(state, dummy_state())));
        }
        None
    }
}

/// Placeholder used when a step consumes the state by value.
fn dummy_state() -> State {
    State {
        id: u64::MAX,
        frames: Vec::new(),
        globals: Vec::new(),
        heap: Vec::new(),
        path: crate::state::CondList::new(),
        soft: crate::state::CondList::new(),
        trace: crate::state::TraceList::default(),
        depth: 0,
        meta: crate::state::StateMeta::default(),
        guidance_off: false,
    }
}

/// Builds the initial state entering `main`.
pub(crate) fn initial_state(env: &mut ExecEnv<'_>) -> State {
    let main_id = env.module.main;
    let main = env.module.func(main_id);
    let globals: Vec<SymValue> = env
        .module
        .globals
        .iter()
        .map(|g| const_sym(env.ctx, &g.init))
        .collect();
    let mut state = State {
        id: 0,
        frames: Vec::new(),
        globals,
        heap: Vec::new(),
        path: crate::state::CondList::new(),
        soft: crate::state::CondList::new(),
        trace: crate::state::TraceList::default(),
        depth: 0,
        meta: crate::state::StateMeta::default(),
        guidance_off: false,
    };
    let args: Vec<SymValue> = main
        .params
        .iter()
        .map(|(_, ty)| default_sym(env.ctx, *ty))
        .collect();
    push_frame(env.module, &mut state, main_id, args.clone(), None);
    // The root lineage node must exist before the main():enter event
    // below, which may itself emit a suspend transition for it.
    env.lineage_event(lineage_op::ROOT, &state, None);
    // Deliver the main():enter event (guidance may constrain globals or
    // advance candidate-path progress). A suspend decision here is
    // ignored — the initial state must run.
    let params = main.params.clone();
    match env.apply_event(
        &mut state,
        Location::enter(&main.name),
        &params,
        &args,
        None,
    ) {
        Some(StepResult::Suspend(s)) => s,
        _ => state,
    }
}

fn const_sym(ctx: &mut TermCtx, c: &ConstValue) -> SymValue {
    match c {
        ConstValue::Int(v) => SymValue::Int(ctx.int(*v)),
        ConstValue::Bool(b) => SymValue::Bool(BoolVal::Const(*b)),
        ConstValue::Str(s) => SymValue::Str(SymStr::concrete(ctx, s.as_bytes())),
    }
}

fn default_sym(ctx: &mut TermCtx, ty: minic::Type) -> SymValue {
    match ty {
        minic::Type::Int => SymValue::Int(ctx.int(0)),
        minic::Type::Bool => SymValue::Bool(BoolVal::Const(false)),
        minic::Type::Str => SymValue::Str(SymStr::concrete(ctx, b"")),
        minic::Type::Buf(_) => SymValue::Unit,
    }
}

fn push_frame(
    module: &Module,
    state: &mut State,
    func: FuncId,
    args: Vec<SymValue>,
    ret_dst: Option<Reg>,
) {
    let body = module.func(func);
    let mut regs = vec![SymValue::Unit; body.num_regs as usize];
    for (i, a) in args.into_iter().enumerate() {
        regs[i] = a;
    }
    state.frames.push(Frame {
        func,
        block: body.entry(),
        idx: 0,
        regs,
        ret_dst,
    });
}

/// Executes one instruction (or terminator) of `state`.
pub(crate) fn step(env: &mut ExecEnv<'_>, mut state: State) -> StepResult {
    env.stats.steps += 1;
    let frame = state.frame();
    let body = env.module.func(frame.func);
    let block = &body.blocks[frame.block.index()];

    if frame.idx < block.insts.len() {
        let (inst, span) = block.insts[frame.idx].clone();
        state.frame_mut().idx += 1;
        exec_inst(env, state, inst, span)
    } else {
        let (term, span) = block.term.clone();
        exec_term(env, state, term, span)
    }
}

fn reg(state: &State, r: Reg) -> &SymValue {
    &state.frame().regs[r.index()]
}

fn set_reg(state: &mut State, r: Reg, v: SymValue) {
    state.frame_mut().regs[r.index()] = v;
}

fn exec_inst(env: &mut ExecEnv<'_>, mut state: State, inst: Inst, span: Span) -> StepResult {
    match inst {
        Inst::Const { dst, value } => {
            let v = const_sym(env.ctx, &value);
            set_reg(&mut state, dst, v);
            StepResult::Continue(state)
        }
        Inst::Move { dst, src } => {
            let v = reg(&state, src).clone();
            set_reg(&mut state, dst, v);
            StepResult::Continue(state)
        }
        Inst::Bin { op, dst, a, b } => exec_bin(env, state, op, dst, a, b, span),
        Inst::Not { dst, src } => {
            let v = reg(&state, src).as_bool().not();
            set_reg(&mut state, dst, SymValue::Bool(v));
            StepResult::Continue(state)
        }
        Inst::Neg { dst, src } => {
            let t = reg(&state, src).as_int();
            let v = env.ctx.neg(t);
            set_reg(&mut state, dst, SymValue::Int(v));
            StepResult::Continue(state)
        }
        Inst::LoadGlobal { dst, global } => {
            let v = state.globals[global.index()].clone();
            set_reg(&mut state, dst, v);
            StepResult::Continue(state)
        }
        Inst::StoreGlobal { global, src } => {
            state.globals[global.index()] = reg(&state, src).clone();
            StepResult::Continue(state)
        }
        Inst::Call { dst, func, args } => {
            if state.frames.len() >= env.max_call_depth {
                let fault = env.fault(&state, FaultKind::StackOverflow, span);
                return StepResult::Fault(state, fault);
            }
            let argv: Vec<SymValue> = args.iter().map(|r| reg(&state, *r).clone()).collect();
            push_frame(env.module, &mut state, func, argv.clone(), dst);
            let body = env.module.func(func);
            let name = body.name.clone();
            let params = body.params.clone();
            if let Some(outcome) =
                env.apply_event(&mut state, Location::enter(name), &params, &argv, None)
            {
                return outcome;
            }
            StepResult::Continue(state)
        }
        Inst::AllocBuf { dst, cap } => {
            let zero = env.ctx.int(0);
            let id = state.heap.len();
            state.heap.push(SymBuf::stack(vec![zero; cap as usize]));
            set_reg(&mut state, dst, SymValue::Buf(id));
            StepResult::Continue(state)
        }
        Inst::Alloc { dst, size } => exec_alloc(env, state, dst, size, span),
        Inst::Free { buf } => match live_buf(&state, buf) {
            Err(kind) => {
                let fault = env.fault(&state, kind, span);
                StepResult::Fault(state, fault)
            }
            Ok(bid) if !state.heap[bid].dynamic => {
                // Freeing a stack buffer is an invalid free.
                let fault = env.fault(&state, FaultKind::UseAfterFree, span);
                StepResult::Fault(state, fault)
            }
            Ok(bid) => {
                state.heap[bid].live = false;
                StepResult::Continue(state)
            }
        },
        Inst::Format { fmt } => exec_format(env, state, fmt, span),
        Inst::BufSet { buf, idx, val } => {
            let bid = match live_buf(&state, buf) {
                Ok(bid) => bid,
                Err(kind) => {
                    let fault = env.fault(&state, kind, span);
                    return StepResult::Fault(state, fault);
                }
            };
            let cap = state.heap[bid].cells.len();
            let dynamic = state.heap[bid].dynamic;
            let idx_t = reg(&state, idx).as_int();
            let val_t = reg(&state, val).as_int();
            bounds_checked_access(env, state, idx_t, cap, dynamic, span, move |state, i| {
                state.heap[bid].cells[i] = val_t;
            })
        }
        Inst::BufGet { dst, buf, idx } => {
            let bid = match live_buf(&state, buf) {
                Ok(bid) => bid,
                Err(kind) => {
                    let fault = env.fault(&state, kind, span);
                    return StepResult::Fault(state, fault);
                }
            };
            let cap = state.heap[bid].cells.len();
            let dynamic = state.heap[bid].dynamic;
            let idx_t = reg(&state, idx).as_int();
            bounds_checked_access(env, state, idx_t, cap, dynamic, span, move |state, i| {
                let cell = state.heap[bid].cells[i];
                set_reg(state, dst, SymValue::Int(cell));
            })
        }
        Inst::BufCap { dst, buf } => {
            let bid = match live_buf(&state, buf) {
                Ok(bid) => bid,
                Err(kind) => {
                    let fault = env.fault(&state, kind, span);
                    return StepResult::Fault(state, fault);
                }
            };
            let cap = state.heap[bid].cells.len() as i64;
            let t = env.ctx.int(cap);
            set_reg(&mut state, dst, SymValue::Int(t));
            StepResult::Continue(state)
        }
        Inst::StrAt { dst, s, idx } => {
            let sym = reg(&state, s).as_str().clone();
            let cap = sym.cap();
            let idx_t = reg(&state, idx).as_int();
            // Valid indices are [0, cap]: index cap reads the guaranteed
            // NUL terminator. (Reads between an earlier NUL and cap read
            // allocated bytes — defined, as in C.)
            bounds_checked_access_incl(env, state, idx_t, cap, span, move |env2, state, i| {
                let byte = sym.byte_at(env2, i);
                set_reg(state, dst, SymValue::Int(byte));
            })
        }
        Inst::StrLen { dst, s } => exec_strlen(env, state, dst, s),
        Inst::Input { dst, input } => {
            let v = input_value(env, input);
            set_reg(&mut state, dst, v);
            StepResult::Continue(state)
        }
        Inst::Print { .. } => StepResult::Continue(state),
        Inst::Exit { .. } => StepResult::Exit(state),
        Inst::Assert { cond } => {
            let c = reg(&state, cond).as_bool();
            match c {
                BoolVal::Const(true) => StepResult::Continue(state),
                BoolVal::Const(false) => {
                    let fault = env.fault(&state, FaultKind::AssertFailed, span);
                    StepResult::Fault(state, fault)
                }
                BoolVal::Atom(atom) => {
                    env.stats.forks += 1;
                    let mut children = Vec::new();
                    // Failing side.
                    let mut bad = state.clone();
                    bad.id = env.fresh_id();
                    bad.path = bad.path.push(atom.negate());
                    bad.depth += 1;
                    let bad_hard = bad.path.to_vec();
                    if env.feasible(&bad_hard) {
                        let fault = env.fault(&bad, FaultKind::AssertFailed, span);
                        children.push(ForkChild {
                            state: bad,
                            disposition: Disposition::Fault(fault),
                        });
                    } else {
                        env.stats.pruned += 1;
                    }
                    // Passing side.
                    let mut ok = state;
                    ok.path = ok.path.push(atom);
                    ok.depth += 1;
                    match env.classify(&ok) {
                        Some(d) => children.push(ForkChild {
                            state: ok,
                            disposition: d,
                        }),
                        None => env.stats.pruned += 1,
                    }
                    StepResult::Fork(children)
                }
            }
        }
    }
}

fn exec_bin(
    env: &mut ExecEnv<'_>,
    mut state: State,
    op: BinOp,
    dst: Reg,
    a: Reg,
    b: Reg,
    span: Span,
) -> StepResult {
    use BinOp::*;
    match op {
        Add | Sub | Mul => {
            let (ta, tb) = (reg(&state, a).as_int(), reg(&state, b).as_int());
            let t = match op {
                Add => env.ctx.add(ta, tb),
                Sub => env.ctx.sub(ta, tb),
                _ => env.ctx.mul(ta, tb),
            };
            set_reg(&mut state, dst, SymValue::Int(t));
            StepResult::Continue(state)
        }
        Div | Rem => {
            let (ta, tb) = (reg(&state, a).as_int(), reg(&state, b).as_int());
            if env.ctx.as_const(tb) == Some(0) {
                let fault = env.fault(&state, FaultKind::DivByZero, span);
                return StepResult::Fault(state, fault);
            }
            let zero = env.ctx.int(0);
            let div_zero = Constraint::new(CmpOp::Eq, tb, zero);
            if env.ctx.as_const(tb).is_none() {
                // Divisor is symbolic: fork a fault child if it can be 0.
                let mut cons = state.all_constraints();
                cons.push(div_zero);
                if env.feasible(&cons) {
                    env.stats.forks += 1;
                    let mut children = Vec::new();
                    let mut bad = state.clone();
                    bad.id = env.fresh_id();
                    bad.path = bad.path.push(div_zero);
                    bad.depth += 1;
                    let fault = env.fault(&bad, FaultKind::DivByZero, span);
                    children.push(ForkChild {
                        state: bad,
                        disposition: Disposition::Fault(fault),
                    });
                    let mut ok = state;
                    ok.path = ok.path.push(div_zero.negate());
                    ok.depth += 1;
                    let t = if op == Div {
                        env.ctx.div(ta, tb)
                    } else {
                        env.ctx.rem(ta, tb)
                    };
                    set_reg(&mut ok, dst, SymValue::Int(t));
                    match env.classify(&ok) {
                        Some(d) => children.push(ForkChild {
                            state: ok,
                            disposition: d,
                        }),
                        None => env.stats.pruned += 1,
                    }
                    return StepResult::Fork(children);
                }
            }
            let t = if op == Div {
                env.ctx.div(ta, tb)
            } else {
                env.ctx.rem(ta, tb)
            };
            set_reg(&mut state, dst, SymValue::Int(t));
            StepResult::Continue(state)
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let bv = match (reg(&state, a).clone(), reg(&state, b).clone()) {
                (SymValue::Bool(x), SymValue::Bool(y)) => bool_eq(op, x, y),
                (va, vb) => {
                    let (ta, tb) = (va.as_int(), vb.as_int());
                    int_cmp(env.ctx, op, ta, tb)
                }
            };
            set_reg(&mut state, dst, SymValue::Bool(bv));
            StepResult::Continue(state)
        }
        And | Or => unreachable!("&&/|| are lowered to control flow"),
    }
}

/// `Eq`/`Ne` over booleans. At most one side may be symbolic (MiniC has
/// no way to produce two independent symbolic bools in one comparison
/// without a branch in between, which normalizes one side).
fn bool_eq(op: BinOp, x: BoolVal, y: BoolVal) -> BoolVal {
    let negate = matches!(op, BinOp::Ne);
    let v = match (x, y) {
        (BoolVal::Const(a), BoolVal::Const(b)) => BoolVal::Const(a == b),
        (BoolVal::Const(true), other) | (other, BoolVal::Const(true)) => other,
        (BoolVal::Const(false), other) | (other, BoolVal::Const(false)) => other.not(),
        (BoolVal::Atom(a), BoolVal::Atom(b)) if a == b => BoolVal::Const(true),
        _ => panic!("comparison of two distinct symbolic booleans is unsupported"),
    };
    if negate {
        v.not()
    } else {
        v
    }
}

fn int_cmp(ctx: &mut TermCtx, op: BinOp, a: TermId, b: TermId) -> BoolVal {
    if let (Some(x), Some(y)) = (ctx.as_const(a), ctx.as_const(b)) {
        let r = match op {
            BinOp::Eq => x == y,
            BinOp::Ne => x != y,
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            BinOp::Ge => x >= y,
            _ => unreachable!(),
        };
        return BoolVal::Const(r);
    }
    let c = match op {
        BinOp::Eq => Constraint::new(CmpOp::Eq, a, b),
        BinOp::Ne => Constraint::new(CmpOp::Ne, a, b),
        BinOp::Lt => Constraint::new(CmpOp::Lt, a, b),
        BinOp::Le => Constraint::new(CmpOp::Le, a, b),
        BinOp::Gt => Constraint::new(CmpOp::Lt, b, a),
        BinOp::Ge => Constraint::new(CmpOp::Le, b, a),
        _ => unreachable!(),
    };
    BoolVal::Atom(c)
}

/// Shared bounds-check logic for buffer reads/writes: valid range is
/// `[0, cap)`. Concrete indices resolve directly; symbolic indices fork
/// fault children for each feasible violation and concretize the
/// in-range access.
fn bounds_checked_access(
    env: &mut ExecEnv<'_>,
    state: State,
    idx_t: TermId,
    cap: usize,
    dynamic: bool,
    span: Span,
    apply: impl FnOnce(&mut State, usize),
) -> StepResult {
    bounds_checked_common(
        env,
        state,
        idx_t,
        cap as i64,
        false,
        dynamic,
        span,
        move |_, state, i| apply(state, i),
    )
}

/// Like [`bounds_checked_access`] but the valid range is `[0, cap]`
/// (string reads may touch the NUL terminator at `cap`).
fn bounds_checked_access_incl(
    env: &mut ExecEnv<'_>,
    state: State,
    idx_t: TermId,
    cap: usize,
    span: Span,
    apply: impl FnOnce(&mut TermCtx, &mut State, usize),
) -> StepResult {
    bounds_checked_common(env, state, idx_t, cap as i64, true, false, span, apply)
}

#[allow(clippy::too_many_arguments)]
fn bounds_checked_common(
    env: &mut ExecEnv<'_>,
    mut state: State,
    idx_t: TermId,
    cap: i64,
    inclusive: bool,
    dynamic: bool,
    span: Span,
    apply: impl FnOnce(&mut TermCtx, &mut State, usize),
) -> StepResult {
    let in_range = |i: i64| i >= 0 && (i < cap || (inclusive && i == cap));
    if let Some(i) = env.ctx.as_const(idx_t) {
        if in_range(i) {
            apply(env.ctx, &mut state, i as usize);
            return StepResult::Continue(state);
        }
        let kind = oob_kind(cap, i, inclusive, dynamic);
        let fault = env.fault(&state, kind, span);
        return StepResult::Fault(state, fault);
    }

    // Symbolic index.
    env.stats.forks += 1;
    let zero = env.ctx.int(0);
    let cap_t = env.ctx.int(cap);
    let mut children = Vec::new();

    // Fault child: idx beyond the upper bound.
    let too_big = if inclusive {
        Constraint::new(CmpOp::Lt, cap_t, idx_t)
    } else {
        Constraint::new(CmpOp::Le, cap_t, idx_t)
    };
    // Fault child: negative idx.
    let negative = Constraint::new(CmpOp::Lt, idx_t, zero);
    for violation in [too_big, negative] {
        let mut bad = state.clone();
        bad.id = env.fresh_id();
        bad.path = bad.path.push(violation);
        bad.depth += 1;
        let hard = bad.path.to_vec();
        if env.feasible(&hard) {
            // Resolve a concrete violating index for the report.
            let model_idx = match env
                .solver
                .check_traced_at(env.ctx, &hard, env.rec, "fault_model")
            {
                SatResult::Sat(m) => m.value_of(idx_t, env.ctx).unwrap_or(cap),
                _ => cap,
            };
            let kind = oob_kind(cap, model_idx, inclusive, dynamic);
            let fault = env.fault(&bad, kind, span);
            children.push(ForkChild {
                state: bad,
                disposition: Disposition::Fault(fault),
            });
        } else {
            env.stats.pruned += 1;
        }
    }

    // In-range child, concretized.
    let lower = Constraint::new(CmpOp::Le, zero, idx_t);
    let upper = if inclusive {
        Constraint::new(CmpOp::Le, idx_t, cap_t)
    } else {
        Constraint::new(CmpOp::Lt, idx_t, cap_t)
    };
    let mut ok = state;
    ok.path = ok.path.push(lower).push(upper);
    ok.depth += 1;
    let cons = ok.all_constraints();
    match env
        .solver
        .check_traced_at(env.ctx, &cons, env.rec, "concretize")
    {
        SatResult::Sat(model) => {
            let i = model.value_of(idx_t, env.ctx).unwrap_or(0).clamp(0, cap);
            let point = env.ctx.int(i);
            ok.path = ok.path.push(Constraint::new(CmpOp::Eq, idx_t, point));
            env.stats.concretizations += 1;
            apply(env.ctx, &mut ok, i as usize);
            children.push(ForkChild {
                state: ok,
                disposition: Disposition::Active,
            });
        }
        SatResult::Unsat => {
            // Possibly only soft constraints block it.
            if let Some(Disposition::Suspended) = env.classify(&ok) {
                children.push(ForkChild {
                    state: ok,
                    disposition: Disposition::Suspended,
                });
            } else {
                env.stats.pruned += 1;
            }
        }
        SatResult::Unknown => {
            // Cannot concretize without a model; drop conservatively.
            env.stats.pruned += 1;
        }
    }
    StepResult::Fork(children)
}

fn oob_kind(cap: i64, idx: i64, inclusive: bool, dynamic: bool) -> FaultKind {
    if inclusive {
        FaultKind::StringOob {
            len: cap as u32,
            idx,
        }
    } else if dynamic && idx == cap {
        // Dynamic buffers classify the `idx == cap` fencepost as the
        // off-by-one class, matching the concrete VM.
        FaultKind::OffByOne { cap: cap as u32 }
    } else {
        FaultKind::BufferOverflow {
            cap: cap as u32,
            idx,
        }
    }
}

/// Resolves a buffer register to a live heap id. `Err` carries the
/// fault to raise: unbound or stale handles (registers still holding
/// their `Unit` default, or ids whose cell was freed) are the
/// use-after-free class, matching the concrete VM's handle protocol.
fn live_buf(state: &State, r: Reg) -> Result<usize, FaultKind> {
    match reg(state, r) {
        SymValue::Buf(id) if *id < state.heap.len() && state.heap[*id].live => Ok(*id),
        _ => Err(FaultKind::UseAfterFree),
    }
}

/// `alloc(n)`: sizes in `[0, MAX_ALLOC]` produce a live dynamic buffer;
/// anything else is the allocation-overflow fault. A symbolic size forks
/// fault children for each feasible violation (mirroring
/// [`bounds_checked_common`]) and concretizes the in-range allocation so
/// the heap shape stays a single deterministic point per path.
fn exec_alloc(
    env: &mut ExecEnv<'_>,
    mut state: State,
    dst: Reg,
    size: Reg,
    span: Span,
) -> StepResult {
    let size_t = reg(&state, size).as_int();
    let zero = env.ctx.int(0);
    let alloc_cells = |env: &mut ExecEnv<'_>, state: &mut State, n: i64| {
        let z = env.ctx.int(0);
        let id = state.heap.len();
        state.heap.push(SymBuf::dynamic(vec![z; n as usize]));
        set_reg(state, dst, SymValue::Buf(id));
    };

    if let Some(n) = env.ctx.as_const(size_t) {
        if !(0..=MAX_ALLOC).contains(&n) {
            let fault = env.fault(&state, FaultKind::AllocOverflow { req: n }, span);
            return StepResult::Fault(state, fault);
        }
        alloc_cells(env, &mut state, n);
        return StepResult::Continue(state);
    }

    // Symbolic request size.
    env.stats.forks += 1;
    let max_t = env.ctx.int(MAX_ALLOC);
    let mut children = Vec::new();

    let too_big = Constraint::new(CmpOp::Lt, max_t, size_t);
    let negative = Constraint::new(CmpOp::Lt, size_t, zero);
    for (violation, fallback) in [(too_big, MAX_ALLOC + 1), (negative, -1)] {
        let mut bad = state.clone();
        bad.id = env.fresh_id();
        bad.path = bad.path.push(violation);
        bad.depth += 1;
        let hard = bad.path.to_vec();
        if env.feasible(&hard) {
            let req = match env
                .solver
                .check_traced_at(env.ctx, &hard, env.rec, "fault_model")
            {
                SatResult::Sat(m) => m.value_of(size_t, env.ctx).unwrap_or(fallback),
                _ => fallback,
            };
            let fault = env.fault(&bad, FaultKind::AllocOverflow { req }, span);
            children.push(ForkChild {
                state: bad,
                disposition: Disposition::Fault(fault),
            });
        } else {
            env.stats.pruned += 1;
        }
    }

    // In-range child, concretized to one allocation size.
    let lower = Constraint::new(CmpOp::Le, zero, size_t);
    let upper = Constraint::new(CmpOp::Le, size_t, max_t);
    let mut ok = state;
    ok.path = ok.path.push(lower).push(upper);
    ok.depth += 1;
    let cons = ok.all_constraints();
    match env
        .solver
        .check_traced_at(env.ctx, &cons, env.rec, "concretize")
    {
        SatResult::Sat(model) => {
            let n = model
                .value_of(size_t, env.ctx)
                .unwrap_or(0)
                .clamp(0, MAX_ALLOC);
            let point = env.ctx.int(n);
            ok.path = ok.path.push(Constraint::new(CmpOp::Eq, size_t, point));
            env.stats.concretizations += 1;
            alloc_cells(env, &mut ok, n);
            children.push(ForkChild {
                state: ok,
                disposition: Disposition::Active,
            });
        }
        SatResult::Unsat => {
            if let Some(Disposition::Suspended) = env.classify(&ok) {
                children.push(ForkChild {
                    state: ok,
                    disposition: Disposition::Suspended,
                });
            } else {
                env.stats.pruned += 1;
            }
        }
        SatResult::Unknown => {
            env.stats.pruned += 1;
        }
    }
    StepResult::Fork(children)
}

/// The `format(s)` taint sink: a `%` byte anywhere before the NUL
/// terminator is the format-string fault. A symbolic string fans out
/// over the first `%`-or-NUL position like [`exec_strlen`]: at each
/// offset `k` the prefix pins bytes `0..k` to non-NUL non-`%`, the fault
/// child pins `s[k] == '%'`, and the clean child pins `s[k] == 0`.
fn exec_format(env: &mut ExecEnv<'_>, state: State, fmt: Reg, span: Span) -> StepResult {
    let sym = reg(&state, fmt).as_str().clone();
    // Fully concrete fast path.
    if let Some(scan) = concrete_format_scan(env.ctx, &sym) {
        return match scan {
            Some(pos) => {
                let kind = FaultKind::FormatString { idx: pos as i64 };
                let fault = env.fault(&state, kind, span);
                StepResult::Fault(state, fault)
            }
            None => StepResult::Continue(state),
        };
    }

    env.stats.forks += 1;
    let zero = env.ctx.int(0);
    let pct = env.ctx.int(i64::from(b'%'));
    let mut children = Vec::new();
    let mut prefix = state.path.clone();
    for k in 0..=sym.cap() {
        if k < sym.cap() {
            // Fault child: first interesting byte is a `%` at offset k.
            let mut bad = state.clone();
            bad.id = env.fresh_id();
            bad.depth += 1;
            bad.path = prefix.push(Constraint::new(CmpOp::Eq, sym.bytes[k], pct));
            if env.feasible(&bad.path.to_vec()) {
                let fault = env.fault(&bad, FaultKind::FormatString { idx: k as i64 }, span);
                children.push(ForkChild {
                    state: bad,
                    disposition: Disposition::Fault(fault),
                });
            } else {
                env.stats.pruned += 1;
            }
        }
        // Clean child: the string ends at offset k, no `%` seen.
        let mut ok = state.clone();
        ok.id = env.fresh_id();
        ok.depth += 1;
        ok.path = if k < sym.cap() {
            prefix.push(Constraint::new(CmpOp::Eq, sym.bytes[k], zero))
        } else {
            prefix.clone()
        };
        match env.classify(&ok) {
            Some(d) => children.push(ForkChild {
                state: ok,
                disposition: d,
            }),
            None => env.stats.pruned += 1,
        }
        if k < sym.cap() {
            prefix = prefix
                .push(Constraint::new(CmpOp::Ne, sym.bytes[k], zero))
                .push(Constraint::new(CmpOp::Ne, sym.bytes[k], pct));
        }
    }
    StepResult::Fork(children)
}

/// Concrete `%`-scan: `None` if any byte before the terminator is
/// symbolic, otherwise `Some(Some(pos))` for the first `%` before the
/// NUL or `Some(None)` for a clean string.
fn concrete_format_scan(ctx: &TermCtx, s: &SymStr) -> Option<Option<usize>> {
    for (i, &b) in s.bytes.iter().enumerate() {
        match ctx.as_const(b) {
            Some(0) => return Some(None),
            Some(v) if v == i64::from(b'%') => return Some(Some(i)),
            Some(_) => {}
            None => return None,
        }
    }
    Some(None)
}

/// `strlen` over a possibly-symbolic string: forks one child per
/// feasible first-NUL position — the paper's loop-iteration explosion in
/// its most concentrated form.
fn exec_strlen(env: &mut ExecEnv<'_>, state: State, dst: Reg, s: Reg) -> StepResult {
    let sym = reg(&state, s).as_str().clone();
    // Fully concrete fast path.
    if let Some(len) = concrete_strlen(env.ctx, &sym) {
        let mut st = state;
        let t = env.ctx.int(len as i64);
        set_reg(&mut st, dst, SymValue::Int(t));
        return StepResult::Continue(st);
    }

    env.stats.strlen_forks += 1;
    env.stats.forks += 1;
    let zero = env.ctx.int(0);
    let mut children = Vec::new();
    let mut prefix = state.path.clone();
    for len in 0..=sym.cap() {
        let mut child = state.clone();
        child.id = env.fresh_id();
        child.depth += 1;
        child.path = if len < sym.cap() {
            prefix.push(Constraint::new(CmpOp::Eq, sym.bytes[len], zero))
        } else {
            prefix.clone()
        };
        match env.classify(&child) {
            Some(d) => {
                let t = env.ctx.int(len as i64);
                set_reg(&mut child, dst, SymValue::Int(t));
                children.push(ForkChild {
                    state: child,
                    disposition: d,
                });
            }
            None => env.stats.pruned += 1,
        }
        if len < sym.cap() {
            prefix = prefix.push(Constraint::new(CmpOp::Ne, sym.bytes[len], zero));
        }
    }
    StepResult::Fork(children)
}

fn concrete_strlen(ctx: &TermCtx, s: &SymStr) -> Option<usize> {
    let mut len = 0;
    for &b in s.bytes.iter() {
        match ctx.as_const(b) {
            Some(0) => return Some(len),
            Some(_) => len += 1,
            None => return None,
        }
    }
    Some(len)
}

fn input_value(env: &mut ExecEnv<'_>, input: InputId) -> SymValue {
    if let Some(v) = env.inputs.get(&input) {
        return v.clone();
    }
    let def = &env.module.inputs[input.index()];
    let v = make_input_sym(env.ctx, def);
    env.inputs.insert(input, v.clone());
    v
}

/// Builds the fresh symbolic value for one input definition.
fn make_input_sym(ctx: &mut TermCtx, def: &sir::InputDef) -> SymValue {
    match def.kind {
        InputKind::Int => {
            let t = ctx.new_var(def.name.clone(), i32::MIN as i64, i32::MAX as i64);
            SymValue::Int(t)
        }
        InputKind::Str { cap } => {
            let bytes: Vec<TermId> = (0..cap)
                .map(|i| ctx.new_var(format!("{}[{i}]", def.name), 0, 255))
                .collect();
            SymValue::Str(SymStr {
                bytes: Arc::new(bytes),
            })
        }
    }
}

/// Creates the symbolic value for every module input up front, in
/// definition order, skipping inputs already pinned by the caller.
///
/// Steal mode (`EngineConfig::state_workers`) calls this once on the
/// main thread before spawning workers: lazily creating input variables
/// at first `Inst::Input` execution would assign solver `VarId`s in a
/// schedule-dependent order, and the solver's branching heuristic
/// tie-breaks on `VarId` — so lazy creation would break byte-identical
/// traces across worker counts. Eager creation in definition order makes
/// variable ids a function of the module alone.
pub(crate) fn materialize_inputs(
    module: &Module,
    ctx: &mut TermCtx,
    inputs: &mut HashMap<InputId, SymValue>,
) {
    for (i, def) in module.inputs.iter().enumerate() {
        let id = InputId(i as u32);
        if inputs.contains_key(&id) {
            continue;
        }
        let v = make_input_sym(ctx, def);
        inputs.insert(id, v);
    }
}

fn exec_term(env: &mut ExecEnv<'_>, mut state: State, term: Terminator, span: Span) -> StepResult {
    match term {
        Terminator::Jump(b) => {
            let f = state.frame_mut();
            f.block = b;
            f.idx = 0;
            StepResult::Continue(state)
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            let c = reg(&state, cond).as_bool();
            match c {
                BoolVal::Const(taken) => {
                    let f = state.frame_mut();
                    f.block = if taken { then_bb } else { else_bb };
                    f.idx = 0;
                    StepResult::Continue(state)
                }
                BoolVal::Atom(atom) => {
                    env.stats.forks += 1;
                    let mut children = Vec::new();
                    for (target, constraint) in [(then_bb, atom), (else_bb, atom.negate())] {
                        let mut child = state.clone();
                        child.id = env.fresh_id();
                        child.path = child.path.push(constraint);
                        child.depth += 1;
                        {
                            let f = child.frame_mut();
                            f.block = target;
                            f.idx = 0;
                        }
                        match env.classify(&child) {
                            Some(d) => children.push(ForkChild {
                                state: child,
                                disposition: d,
                            }),
                            None => env.stats.pruned += 1,
                        }
                    }
                    StepResult::Fork(children)
                }
            }
        }
        Terminator::Return(r) => {
            let _ = span;
            let ret = r.map(|r| reg(&state, r).clone());
            let body = env.module.func(state.frame().func);
            let name = body.name.clone();
            if let Some(outcome) =
                env.apply_event(&mut state, Location::leave(name), &[], &[], ret.as_ref())
            {
                return outcome;
            }
            let ret_dst = state.frame().ret_dst;
            state.frames.pop();
            match state.frames.last_mut() {
                None => StepResult::Exit(state),
                Some(caller) => {
                    if let (Some(dst), Some(v)) = (ret_dst, ret) {
                        caller.regs[dst.index()] = v;
                    }
                    StepResult::Continue(state)
                }
            }
        }
    }
}
