//! Work-stealing intra-candidate parallel symbolic execution.
//!
//! The legacy engine loop runs one state at a time; with guidance
//! pruning the frontier to a handful of states, candidate-level
//! portfolio parallelism plateaus at ~2 effective workers. This module
//! breaks that plateau by parallelizing *within* one candidate run:
//! worker threads execute state **segments** (up to
//! [`crate::EngineConfig::steal_slice`] instructions) concurrently,
//! stealing work from each other's deques when idle, while the main
//! thread — the **walker** — commits finished segments in a fixed
//! deterministic order.
//!
//! # Determinism
//!
//! The hard requirement is PR 2/3's guarantee: identical outcome
//! (lowest-rank winner) and byte-identical traces at *any* worker
//! count. Three mechanisms deliver it:
//!
//! * **Segment-local ids.** Workers cannot draw from a global state-id
//!   counter (allocation order would depend on the schedule), so each
//!   segment renumbers its executing state to `0` and numbers fork
//!   children from a per-segment counter. The walker translates local
//!   ids to trace-global ids at commit time.
//! * **Deterministic commit order.** Every task is addressed by its
//!   fork-lineage key (`root = [0]`, child *i* of `k` = `k + [i]`), and
//!   the walker commits segments in DFS pre-order over that tree — a
//!   pure function of the program, independent of which worker ran
//!   what. Workers record into private [`BufferedRecorder`]s; buffers
//!   are spliced into the real trace only at commit.
//! * **Boundary-checked budgets.** The deterministic budget dimensions
//!   (`max_steps`, `max_states`) are enforced by the walker at segment
//!   boundaries against globally-ordered committed counts, so the trip
//!   point is a function of the committed prefix, not of wall-clock
//!   interleaving. A segment that would overrun is *not* merged.
//!
//! The byte-identity bar is steal(1) == steal(N) for a fixed
//! `steal_slice`; the legacy loop (`state_workers = 0`) remains the
//! reference implementation with its own (also deterministic) traces.
//! Cross-task *shared* solver caches (`set_shared_cache` /
//! `set_unsat_cache`) keep verdicts sound but make hit *counts*
//! schedule-dependent; leave them off when comparing traces.
//!
//! Steal mode ignores [`crate::SchedulerKind`]: exploration order is
//! the fork-tree pre-order (a DFS). Guidance still applies — suspension
//! and resumption work exactly as in the legacy loop, with suspended
//! states resumed (guidance off) in commit order once the active
//! frontier drains.

use crate::attr::StepAttr;
use crate::engine::{
    record_run_telemetry, Engine, EngineReport, EngineStats, ExhaustionReason, RunOutcome,
};
use crate::executor::{
    initial_state, materialize_inputs, step, Disposition, ExecEnv, ExecStats, StepResult,
};
use crate::hook::EventHook;
use crate::lineage::{state_loc, CapturedLin, Lineage, WorkSnapshot};
use crate::scheduler::{victim_order, StealQueues};
use crate::state::{CondList, State};
use crate::value::{SymStr, SymValue};
use concrete::{Fault, InputValue};
use sir::{InputId, Module};
use solver::{Model, SatResult, Solver, SolverStats, TermCtx};
use statsym_telemetry::{
    lineage_op, names, BufferedRecorder, ClockMode, LineageEvent, Recorder, TraceBuffer, NOOP,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Fork-lineage address of a task: the root is `[0]`; the *i*-th fork
/// child of a task extends its parent's key with `i`. Resumed
/// (phase-2+) tasks get fresh keys outside the `[0, ...]` subtree.
type TaskKey = Vec<u32>;

/// A schedulable unit: one state plus its private solver, positioned at
/// segment `seg` of the task addressed by `key`.
struct Task {
    key: TaskKey,
    seg: u32,
    state: State,
    solver: Solver,
}

/// What became of one fork child, as shipped to the walker.
enum ChildKind {
    /// Keeps exploring as its own task.
    Active { est: usize },
    /// Parked by guidance; resumed in a later phase.
    Suspended { state: Box<State>, est: usize },
    /// Confirmed fault: a winner candidate (first in commit order wins).
    Found {
        state: Box<State>,
        fault: Fault,
        model: Model,
    },
    /// Faulting path whose model the solver could not produce.
    Unconfirmed,
    /// Fault at a suppressed site: an ordinary completed path.
    CompletedSuppressed,
}

/// One fork child record; `local_id` is the child's *segment-local*
/// state id (0 = the continuing child that keeps the parent's tree
/// node).
struct ChildRec {
    local_id: u64,
    kind: ChildKind,
}

/// How a segment ended.
enum SegEnd {
    /// Slice exhausted; the task continues as `(key, seg + 1)`.
    Paused { est: usize },
    /// The path terminated normally (or hit a suppressed fault site).
    Exit,
    /// The state became infeasible and was dropped.
    Kill,
    /// Guidance parked the executing state.
    Suspended { state: Box<State>, est: usize },
    /// Confirmed fault on the executing state.
    Found {
        state: Box<State>,
        fault: Fault,
        model: Model,
    },
    /// Fault found but no triggering model within solver budget.
    Unconfirmed,
    /// The state forked; children in classification order.
    Forked(Vec<ChildRec>),
}

/// Everything the walker needs to commit one executed segment.
struct SegRecord {
    key: TaskKey,
    seg: u32,
    /// Executor counters for this segment alone.
    exec: ExecStats,
    /// Solver counter deltas for this segment alone.
    solver: SolverStats,
    /// Fresh segment-local state ids drawn (pruned children included),
    /// for the deterministic `max_states` budget.
    locals_used: u64,
    /// The segment's private trace, spliced into the real trace at
    /// commit (None when recording is off).
    buffer: Option<TraceBuffer>,
    /// Lineage events with segment-local ids, replayed at commit.
    lineage: Vec<CapturedLin>,
    /// Where the segment started (for boundary budget-trip lineage).
    start_loc: String,
    start_hops: u32,
    start_depth: u32,
    end: SegEnd,
}

fn solver_delta(now: &SolverStats, base: &SolverStats) -> SolverStats {
    let mut d = SolverStats::default();
    macro_rules! sub {
        ($($f:ident),* $(,)?) => { $( d.$f = now.$f.saturating_sub(base.$f); )* };
    }
    sub!(
        queries,
        sat,
        unsat,
        unknown,
        cache_hits,
        shared_hits,
        shared_misses,
        nodes,
        propagation_rounds,
        backtracks,
        query_us,
        indep_queries,
        indep_components,
        indep_comp_hits,
        ucache_sub_hits,
        ucache_sup_hits,
        ucache_sup_rejects,
        ucache_stores,
        ucache_misses,
    );
    d
}

fn solver_accum(into: &mut SolverStats, d: &SolverStats) {
    macro_rules! add {
        ($($f:ident),* $(,)?) => { $( into.$f += d.$f; )* };
    }
    add!(
        queries,
        sat,
        unsat,
        unknown,
        cache_hits,
        shared_hits,
        shared_misses,
        nodes,
        propagation_rounds,
        backtracks,
        query_us,
        indep_queries,
        indep_components,
        indep_comp_hits,
        ucache_sub_hits,
        ucache_sup_hits,
        ucache_sup_rejects,
        ucache_stores,
        ucache_misses,
    );
}

fn exec_accum(into: &mut ExecStats, d: &ExecStats) {
    into.steps += d.steps;
    into.forks += d.forks;
    into.pruned += d.pruned;
    into.suspended += d.suspended;
    into.concretizations += d.concretizations;
    into.strlen_forks += d.strlen_forks;
}

/// Immutable per-run parameters shared by all workers.
struct SegCtx<'a> {
    module: &'a Module,
    max_call_depth: usize,
    slice: u64,
    traced: bool,
    lineage_on: bool,
    attribution: bool,
    provenance: bool,
    clock_mode: ClockMode,
    suppressed: &'a [(String, minic::Span)],
}

impl SegCtx<'_> {
    fn is_suppressed(&self, fault: &Fault) -> bool {
        self.suppressed
            .iter()
            .any(|(func, span)| *func == fault.func && *span == fault.span)
    }
}

/// Cross-worker run controls for one phase.
struct PhaseShared {
    stop: AtomicBool,
    tripped: Mutex<Option<ExhaustionReason>>,
    start: Instant,
    cancel: Option<Arc<AtomicBool>>,
    time_budget: Option<Duration>,
    max_wall_ms: Option<u64>,
}

impl PhaseShared {
    /// Polled by workers every 1024 segment-local steps. True means
    /// abort the current segment (its record is discarded; the walker
    /// already holds a terminal end or a trip reason).
    fn should_abort(&self) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return true;
        }
        let reason = if self
            .cancel
            .as_ref()
            .is_some_and(|t| t.load(Ordering::Relaxed))
        {
            Some(ExhaustionReason::Cancelled)
        } else if self.time_budget.is_some_and(|tb| self.start.elapsed() > tb) {
            Some(ExhaustionReason::Time)
        } else if self
            .max_wall_ms
            .is_some_and(|m| self.start.elapsed().as_millis() as u64 > m)
        {
            Some(ExhaustionReason::Budget)
        } else {
            None
        };
        match reason {
            Some(r) => {
                self.trip(r);
                true
            }
            None => false,
        }
    }

    /// Records the first trip reason and stops every worker.
    fn trip(&self, r: ExhaustionReason) {
        let mut g = self.tripped.lock().unwrap_or_else(|e| e.into_inner());
        if g.is_none() {
            *g = Some(r);
        }
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Per-worker private resources, persistent across phases. The `TermCtx`
/// is a handle onto the engine's shared term store (concurrent interning
/// is safe; input variables are pre-materialized on the main thread so
/// `VarId`s — which the solver's branching tie-break keys on — never
/// depend on the schedule).
struct WorkerRes<'h> {
    ctx: TermCtx,
    hook: Box<dyn EventHook + Send + 'h>,
    inputs: HashMap<InputId, SymValue>,
}

/// Runs one segment of `task`. Returns the segment record (None when
/// aborted by the stop flag) and any follow-on tasks (the paused
/// continuation and/or active fork children).
fn run_segment(
    sc: &SegCtx<'_>,
    shared: &PhaseShared,
    res: &mut WorkerRes<'_>,
    task: Task,
) -> (Option<SegRecord>, Vec<Task>) {
    let Task {
        key,
        seg,
        mut state,
        mut solver,
    } = task;
    let buf = sc.traced.then(|| BufferedRecorder::new(sc.clock_mode));
    let rec: &dyn Recorder = match &buf {
        Some(b) => b,
        None => &NOOP,
    };
    let sv0 = solver.stats();
    let mut lineage = Lineage::capture(
        sc.lineage_on,
        WorkSnapshot {
            steps: 0,
            solver_nodes: sv0.nodes,
            solver_us: sv0.query_us,
        },
    );
    let mut exec = ExecStats::default();
    // Segment-local renumbering: the executing state is 0, fork children
    // draw 1, 2, ... from a fresh counter.
    state.id = 0;
    let mut next_local: u64 = 0;
    let start_loc = state_loc(sc.module, &state);
    let start_hops = state.meta.hops;
    let start_depth = state.depth;

    let mut env = ExecEnv {
        module: sc.module,
        ctx: &mut res.ctx,
        solver: &mut solver,
        inputs: &mut res.inputs,
        hook: res.hook.as_mut(),
        stats: &mut exec,
        rec,
        max_call_depth: sc.max_call_depth,
        next_state_id: &mut next_local,
        lineage: &mut lineage,
    };

    enum Seg {
        Paused(State),
        End(StepResult),
        Aborted,
    }

    // Per-segment attribution: cells accumulate segment-locally and
    // flush into the segment's private buffer, folding by counter name
    // across segments at splice — totals are schedule-independent.
    let mut attr = StepAttr::new(sc.attribution, sc.provenance);

    let outcome = loop {
        if env.stats.steps >= sc.slice {
            break Seg::Paused(state);
        }
        if env.stats.steps.is_multiple_of(1024) && shared.should_abort() {
            break Seg::Aborted;
        }
        let pre = attr
            .active()
            .then(|| attr.pre_step(sc.module, &state, env.solver, env.stats));
        let res = step(&mut env, state);
        if let Some(pre) = pre {
            attr.post_step(pre, &env.solver.stats(), env.stats);
        }
        match res {
            StepResult::Continue(s) => {
                state = s;
                rec.tick(1);
            }
            other => {
                rec.tick(1);
                break Seg::End(other);
            }
        }
    };

    let mut tasks_out: Vec<Task> = Vec::new();
    let mut cont_state: Option<State> = None;
    let end = match outcome {
        Seg::Aborted => return (None, Vec::new()),
        Seg::Paused(s) => {
            let est = s.est_bytes();
            cont_state = Some(s);
            SegEnd::Paused { est }
        }
        Seg::End(step_end) => match step_end {
            StepResult::Continue(_) => unreachable!("loop keeps Continue"),
            StepResult::Exit(s) => {
                env.lineage_event(lineage_op::EXIT, &s, None);
                SegEnd::Exit
            }
            StepResult::Kill => SegEnd::Kill,
            StepResult::Suspend(s) => {
                let est = s.est_bytes();
                SegEnd::Suspended {
                    state: Box::new(s),
                    est,
                }
            }
            StepResult::Fault(s, fault) => {
                if sc.is_suppressed(&fault) {
                    env.lineage_event(lineage_op::EXIT, &s, None);
                    SegEnd::Exit
                } else {
                    match confirm(&mut env, &mut attr, &s) {
                        Some(model) => {
                            env.lineage_event(lineage_op::FAULT, &s, None);
                            SegEnd::Found {
                                state: Box::new(s),
                                fault,
                                model,
                            }
                        }
                        None => {
                            env.lineage_event(lineage_op::UNCONFIRMED, &s, None);
                            rec.counter_add(names::SYMEX_UNCONFIRMED, 1);
                            SegEnd::Unconfirmed
                        }
                    }
                }
            }
            StepResult::Fork(children) => {
                let mut recs: Vec<ChildRec> = Vec::with_capacity(children.len());
                for child in children {
                    let local_id = child.state.id;
                    if local_id != 0 {
                        env.lineage_event(lineage_op::FORK, &child.state, Some(0));
                    }
                    match child.disposition {
                        Disposition::Active => {
                            let est = child.state.est_bytes();
                            let mut ck = key.clone();
                            ck.push(recs.len() as u32);
                            tasks_out.push(Task {
                                key: ck,
                                seg: 0,
                                state: child.state,
                                solver: env.solver.clone(),
                            });
                            recs.push(ChildRec {
                                local_id,
                                kind: ChildKind::Active { est },
                            });
                        }
                        Disposition::Suspended => {
                            rec.counter_add(names::SYMEX_SUSPEND_BRANCH, 1);
                            rec.observe(names::SYMEX_HOP_DIVERGENCE, child.state.meta.hops as u64);
                            env.lineage_event(lineage_op::SUSPEND_BRANCH, &child.state, None);
                            let est = child.state.est_bytes();
                            recs.push(ChildRec {
                                local_id,
                                kind: ChildKind::Suspended {
                                    state: Box::new(child.state),
                                    est,
                                },
                            });
                        }
                        Disposition::Fault(fault) => {
                            if sc.is_suppressed(&fault) {
                                env.lineage_event(lineage_op::EXIT, &child.state, None);
                                recs.push(ChildRec {
                                    local_id,
                                    kind: ChildKind::CompletedSuppressed,
                                });
                                continue;
                            }
                            match confirm(&mut env, &mut attr, &child.state) {
                                Some(model) => {
                                    env.lineage_event(lineage_op::FAULT, &child.state, None);
                                    recs.push(ChildRec {
                                        local_id,
                                        kind: ChildKind::Found {
                                            state: Box::new(child.state),
                                            fault,
                                            model,
                                        },
                                    });
                                    // Mirror the legacy loop: a confirmed
                                    // find stops child processing; later
                                    // siblings are never materialized.
                                    break;
                                }
                                None => {
                                    env.lineage_event(lineage_op::UNCONFIRMED, &child.state, None);
                                    rec.counter_add(names::SYMEX_UNCONFIRMED, 1);
                                    recs.push(ChildRec {
                                        local_id,
                                        kind: ChildKind::Unconfirmed,
                                    });
                                }
                            }
                        }
                    }
                }
                SegEnd::Forked(recs)
            }
        },
    };

    attr.flush(sc.module, rec);
    let locals_used = next_local;
    let record = SegRecord {
        key: key.clone(),
        seg,
        exec,
        solver: solver_delta(&solver.stats(), &sv0),
        locals_used,
        buffer: buf.map(|b| b.finish()),
        lineage: lineage.take_captured(),
        start_loc,
        start_hops,
        start_depth,
        end,
    };
    if let Some(s) = cont_state {
        tasks_out.push(Task {
            key,
            seg: seg + 1,
            state: s,
            solver,
        });
    }
    (Some(record), tasks_out)
}

/// Solves the faulting state's path for a triggering model before
/// committing to a Found outcome (same contract as the legacy loop's
/// `confirm_model!`).
fn confirm(env: &mut ExecEnv<'_>, attr: &mut StepAttr, state: &State) -> Option<Model> {
    let constraints = state.path.to_vec();
    // Outside step(): the confirmation query gets its own attribution
    // bracket, billed to the faulting state's final source location.
    let pre = attr
        .active()
        .then(|| attr.pre_step(env.module, state, env.solver, env.stats));
    let res = env
        .solver
        .check_traced_at(env.ctx, &constraints, env.rec, "report_model");
    if let Some(pre) = pre {
        attr.post_step(pre, &env.solver.stats(), env.stats);
    }
    match res {
        SatResult::Sat(m) => Some(m),
        _ => None,
    }
}

/// Registry entry for a live tree node: its trace-level ids (0 when
/// lineage is off) and modeled memory estimate.
#[derive(Debug, Clone, Copy)]
struct NodeInfo {
    trace_id: u64,
    parent_trace: u64,
    est: usize,
}

/// How the walk ended (None while still running / completed).
enum WalkEnd {
    Found(Box<State>, Fault, Model),
    Exhausted(ExhaustionReason),
}

/// The main-thread committer: consumes [`SegRecord`]s in deterministic
/// DFS pre-order, splices buffers, replays lineage, enforces budgets
/// and safety rails, and detects the winner.
struct Walker<'a> {
    rec: &'a dyn Recorder,
    lineage_on: bool,

    budget: crate::engine::Budget,
    limited: bool,
    budget_telemetry: bool,
    wall_clock: bool,
    last_budget_note: Option<u64>,
    max_steps: u64,
    memory_budget: usize,
    max_live_states: usize,
    time_budget: Option<Duration>,
    start: Instant,
    cancel: Option<Arc<AtomicBool>>,

    nodes: HashMap<TaskKey, NodeInfo>,
    /// Expected next segments, top of stack first (DFS pre-order).
    stack: Vec<(TaskKey, u32)>,
    /// Out-of-order arrivals waiting for their turn.
    ready: HashMap<(TaskKey, u32), SegRecord>,
    suspended: Vec<(TaskKey, State)>,

    exec: ExecStats,
    solver: SolverStats,
    fresh_states: u64,
    paths_completed: u64,
    unconfirmed: u64,
    live: usize,
    live_mem: usize,
    peak_live: usize,
    peak_mem: usize,
    end: Option<WalkEnd>,
}

impl Walker<'_> {
    fn deliver(&mut self, r: SegRecord) {
        self.ready.insert((r.key.clone(), r.seg), r);
    }

    /// Commits every ready segment that is next in order.
    fn advance(&mut self) {
        while self.end.is_none() {
            let Some((k, s)) = self.stack.last().cloned() else {
                break;
            };
            match self.ready.remove(&(k, s)) {
                Some(r) => {
                    self.stack.pop();
                    self.commit(r);
                }
                None => break,
            }
        }
    }

    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|t| t.load(Ordering::Relaxed))
    }

    fn note_peaks(&mut self) {
        self.peak_live = self.peak_live.max(self.live);
        self.peak_mem = self.peak_mem.max(self.live_mem);
    }

    /// Emits the budget-usage gauges and the `budget.tick` event.
    fn note_budget_values(&mut self, steps: u64, states: u64) {
        if !self.budget_telemetry {
            return;
        }
        use statsym_telemetry::FieldValue;
        self.rec.gauge_max(names::BUDGET_STEPS_USED, steps as i64);
        self.rec.gauge_max(names::BUDGET_STATES_USED, states as i64);
        if self.wall_clock {
            let solver_us = self.solver.query_us;
            let wall_ms = self.start.elapsed().as_millis() as u64;
            self.rec
                .gauge_max(names::BUDGET_SOLVER_US_USED, solver_us as i64);
            self.rec
                .gauge_max(names::BUDGET_WALL_MS_USED, wall_ms as i64);
            self.rec.event(
                names::BUDGET_TICK,
                &[
                    ("steps", FieldValue::from(steps)),
                    ("states", FieldValue::from(states)),
                    ("solver_us", FieldValue::from(solver_us)),
                    ("wall_ms", FieldValue::from(wall_ms)),
                ],
            );
        } else {
            self.rec.event(
                names::BUDGET_TICK,
                &[
                    ("steps", FieldValue::from(steps)),
                    ("states", FieldValue::from(states)),
                ],
            );
        }
    }

    /// Periodic budget progress note at commit cadence, deduplicated by
    /// committed step count (like the legacy per-checkpoint note).
    fn budget_note(&mut self) {
        if self.budget_telemetry && self.last_budget_note != Some(self.exec.steps) {
            self.last_budget_note = Some(self.exec.steps);
            let steps = self.exec.steps;
            let states = 1 + self.fresh_states;
            self.note_budget_values(steps, states);
        }
    }

    fn wall_tripped(&self) -> bool {
        self.budget
            .max_solver_us
            .is_some_and(|m| self.solver.query_us > m)
            || self
                .budget
                .max_wall_ms
                .is_some_and(|m| self.start.elapsed().as_millis() as u64 > m)
    }

    /// Deterministic budget trip at a segment boundary: the offending
    /// segment is *not* merged, so committed counters and the trace
    /// clock reflect only the committed prefix.
    fn trip_budget(&mut self, r: &SegRecord, would_steps: u64, would_states: u64) {
        if self.lineage_on {
            if let Some(n) = self.nodes.get(&r.key).copied() {
                self.rec.state(&LineageEvent {
                    op: lineage_op::BUDGET_EXCEEDED,
                    id: n.trace_id,
                    parent: n.parent_trace,
                    loc: &r.start_loc,
                    hops: r.start_hops,
                    depth: r.start_depth,
                    steps: 0,
                    snodes: 0,
                    solver_us: 0,
                });
            }
        }
        self.rec.counter_add(names::BUDGET_EXCEEDED, 1);
        self.note_budget_values(would_steps, would_states);
        self.end = Some(WalkEnd::Exhausted(ExhaustionReason::Budget));
    }

    /// Replays the segment's captured lineage on the real recorder,
    /// translating segment-local ids to trace-global ids. Returns the
    /// local → (trace_id, parent_trace) map for child registration.
    fn replay(&mut self, r: &SegRecord) -> HashMap<u64, (u64, u64)> {
        let mut map: HashMap<u64, (u64, u64)> = HashMap::new();
        if let Some(n) = self.nodes.get(&r.key) {
            map.insert(0, (n.trace_id, n.parent_trace));
        }
        if !self.lineage_on {
            return map;
        }
        for ev in &r.lineage {
            let (id, parent) = if lineage_op::introduces(ev.op) {
                let parent = ev.parent_local.and_then(|p| map.get(&p)).map_or(0, |e| e.0);
                let id = self.rec.alloc_state_id();
                map.insert(ev.local_id, (id, parent));
                (id, parent)
            } else {
                match map.get(&ev.local_id) {
                    Some(&e) => e,
                    None => continue,
                }
            };
            self.rec.state(&LineageEvent {
                op: ev.op,
                id,
                parent,
                loc: &ev.loc,
                hops: ev.hops,
                depth: ev.depth,
                steps: ev.steps,
                snodes: ev.snodes,
                solver_us: ev.solver_us,
            });
        }
        // The bootstrap segment's ROOT introduction rebinds local 0.
        if let Some(&e) = map.get(&0) {
            if let Some(n) = self.nodes.get_mut(&r.key) {
                n.trace_id = e.0;
                n.parent_trace = e.1;
            }
        }
        map
    }

    /// Re-estimates a live node's modeled memory.
    fn update_est(&mut self, key: &TaskKey, est: usize) {
        let e = self.nodes.entry(key.clone()).or_insert(NodeInfo {
            trace_id: 0,
            parent_trace: 0,
            est: 0,
        });
        self.live_mem = self.live_mem.saturating_sub(e.est) + est;
        e.est = est;
    }

    /// Removes a state from the live set (its registry entry survives
    /// for child inheritance).
    fn terminal(&mut self, key: &TaskKey) {
        if let Some(n) = self.nodes.get(key) {
            self.live_mem = self.live_mem.saturating_sub(n.est);
        }
        self.live = self.live.saturating_sub(1);
    }

    /// Commits one in-order segment: budget pre-check, buffer splice,
    /// lineage replay, counter accumulation, end application, rails.
    fn commit(&mut self, r: SegRecord) {
        // Deterministic budget dimensions trip *before* the merge, on
        // globally-ordered committed counts.
        if self.limited {
            let would_steps = self.exec.steps + r.exec.steps;
            let would_states = 1 + self.fresh_states + r.locals_used;
            if self.budget.max_steps.is_some_and(|m| would_steps > m)
                || self.budget.max_states.is_some_and(|m| would_states > m)
            {
                self.trip_budget(&r, would_steps, would_states);
                return;
            }
        }
        if let Some(buf) = &r.buffer {
            self.rec.merge_buffer(buf, None);
        }
        let map = self.replay(&r);
        exec_accum(&mut self.exec, &r.exec);
        solver_accum(&mut self.solver, &r.solver);
        self.fresh_states += r.locals_used;

        self.apply_end(r, &map);
        if self.end.is_some() {
            return;
        }

        self.budget_note();
        if self.limited && self.wall_tripped() {
            self.rec.counter_add(names::BUDGET_EXCEEDED, 1);
            let steps = self.exec.steps;
            let states = 1 + self.fresh_states;
            self.note_budget_values(steps, states);
            self.end = Some(WalkEnd::Exhausted(ExhaustionReason::Budget));
            return;
        }
        if self.cancelled() {
            self.end = Some(WalkEnd::Exhausted(ExhaustionReason::Cancelled));
            return;
        }
        if let Some(tb) = self.time_budget {
            if self.start.elapsed() > tb {
                self.end = Some(WalkEnd::Exhausted(ExhaustionReason::Time));
                return;
            }
        }
        if self.exec.steps > self.max_steps {
            self.end = Some(WalkEnd::Exhausted(ExhaustionReason::Steps));
            return;
        }
        if self.live_mem > self.memory_budget {
            self.end = Some(WalkEnd::Exhausted(ExhaustionReason::Memory));
            return;
        }
        if self.live > self.max_live_states {
            self.end = Some(WalkEnd::Exhausted(ExhaustionReason::LiveStates));
        }
    }

    /// Applies a committed segment's end to the live-set simulation.
    fn apply_end(&mut self, r: SegRecord, map: &HashMap<u64, (u64, u64)>) {
        let key = r.key;
        match r.end {
            SegEnd::Paused { est } => {
                self.update_est(&key, est);
                self.stack.push((key, r.seg + 1));
                self.note_peaks();
            }
            SegEnd::Exit => {
                self.terminal(&key);
                self.paths_completed += 1;
            }
            SegEnd::Kill => {
                self.terminal(&key);
            }
            SegEnd::Unconfirmed => {
                self.terminal(&key);
                self.unconfirmed += 1;
            }
            SegEnd::Suspended { state, est } => {
                self.update_est(&key, est);
                self.suspended.push((key, *state));
            }
            SegEnd::Found {
                state,
                fault,
                model,
            } => {
                self.terminal(&key);
                self.end = Some(WalkEnd::Found(state, fault, model));
            }
            SegEnd::Forked(children) => {
                // The parent is consumed; children are accounted one by
                // one (peaks noted between additions, like the legacy
                // per-push accounting).
                self.terminal(&key);
                let parent_info = self.nodes.get(&key).copied().unwrap_or(NodeInfo {
                    trace_id: 0,
                    parent_trace: 0,
                    est: 0,
                });
                let mut active_keys: Vec<TaskKey> = Vec::new();
                for (i, ch) in children.into_iter().enumerate() {
                    let mut ck = key.clone();
                    ck.push(i as u32);
                    let (trace_id, parent_trace) = if ch.local_id == 0 {
                        (parent_info.trace_id, parent_info.parent_trace)
                    } else {
                        map.get(&ch.local_id).copied().unwrap_or((0, 0))
                    };
                    match ch.kind {
                        ChildKind::Active { est } => {
                            self.nodes.insert(
                                ck.clone(),
                                NodeInfo {
                                    trace_id,
                                    parent_trace,
                                    est,
                                },
                            );
                            self.live += 1;
                            self.live_mem += est;
                            active_keys.push(ck);
                            self.note_peaks();
                        }
                        ChildKind::Suspended { state, est } => {
                            self.nodes.insert(
                                ck.clone(),
                                NodeInfo {
                                    trace_id,
                                    parent_trace,
                                    est,
                                },
                            );
                            self.live += 1;
                            self.live_mem += est;
                            self.suspended.push((ck, *state));
                            self.note_peaks();
                        }
                        ChildKind::Found {
                            state,
                            fault,
                            model,
                        } => {
                            self.end = Some(WalkEnd::Found(state, fault, model));
                            break;
                        }
                        ChildKind::Unconfirmed => {
                            self.unconfirmed += 1;
                        }
                        ChildKind::CompletedSuppressed => {
                            self.paths_completed += 1;
                        }
                    }
                }
                // Expect children in order: reversed pushes onto the
                // LIFO stack put child 0 on top.
                for ck in active_keys.into_iter().rev() {
                    self.stack.push((ck, 0));
                }
            }
        }
    }
}

/// Runs one phase: spawns `workers` threads over `tasks`, commits
/// records on the main thread until the channel drains.
fn run_phase<'s>(
    sc: &SegCtx<'_>,
    shared: &PhaseShared,
    walker: &mut Walker<'_>,
    worker_res: &mut [WorkerRes<'s>],
    tasks: Vec<Task>,
    steal_seed: u64,
) {
    let workers = worker_res.len();
    let queues: StealQueues<Task> = StealQueues::new(workers);
    for (i, t) in tasks.into_iter().enumerate() {
        queues.push(i % workers, t);
    }
    let (tx, rx) = mpsc::channel::<SegRecord>();
    std::thread::scope(|s| {
        for (wid, res) in worker_res.iter_mut().enumerate() {
            let tx = tx.clone();
            let queues = &queues;
            s.spawn(move || {
                let victims = victim_order(workers, wid, steal_seed);
                loop {
                    if shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match queues.pop(wid, &victims) {
                        Some(task) => {
                            let (record, children) = run_segment(sc, shared, res, task);
                            // Reverse push so the first child is popped
                            // first: workers explore the fork tree in
                            // the same pre-order the walker commits.
                            for t in children.into_iter().rev() {
                                queues.push(wid, t);
                            }
                            if let Some(r) = record {
                                let _ = tx.send(r);
                            }
                            queues.done();
                        }
                        None => {
                            if queues.pending() == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                drop(tx);
            });
        }
        drop(tx);
        while let Ok(r) = rx.recv() {
            walker.deliver(r);
            walker.advance();
            if walker.end.is_some() {
                shared.stop.store(true, Ordering::SeqCst);
            }
        }
    });
    walker.advance();
    if walker.end.is_none() {
        if let Some(r) = shared
            .tripped
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            walker.end = Some(WalkEnd::Exhausted(r));
        }
    }
}

/// Drains the suspended pool into resumed phase tasks (guidance off),
/// emitting `resume` lineage and the resume counter in commit order.
fn resume_tasks(
    walker: &mut Walker<'_>,
    module: &Module,
    base_solver: &Solver,
    phase: u32,
) -> Vec<Task> {
    let drained = std::mem::take(&mut walker.suspended);
    let n = drained.len() as u64;
    let mut tasks = Vec::with_capacity(drained.len());
    let mut keys: Vec<TaskKey> = Vec::with_capacity(drained.len());
    for (i, (old_key, mut s)) in drained.into_iter().enumerate() {
        // Resumed tasks live outside the `[0, ...]` fork-key subtree so
        // phase keys never collide with phase-1 descendants.
        let new_key: TaskKey = vec![u32::MAX - phase, i as u32];
        let info = walker.nodes.get(&old_key).copied().unwrap_or(NodeInfo {
            trace_id: 0,
            parent_trace: 0,
            est: 0,
        });
        if walker.lineage_on {
            let loc = state_loc(module, &s);
            walker.rec.state(&LineageEvent {
                op: lineage_op::RESUME,
                id: info.trace_id,
                parent: info.parent_trace,
                loc: &loc,
                hops: s.meta.hops,
                depth: s.depth,
                steps: 0,
                snodes: 0,
                solver_us: 0,
            });
        }
        s.guidance_off = true;
        s.soft = CondList::new();
        walker.nodes.insert(new_key.clone(), info);
        keys.push(new_key.clone());
        tasks.push(Task {
            key: new_key,
            seg: 0,
            state: s,
            solver: base_solver.clone(),
        });
    }
    if n > 0 {
        walker.rec.counter_add(names::SYMEX_RESUME, n);
    }
    for k in keys.into_iter().rev() {
        walker.stack.push((k, 0));
    }
    tasks
}

/// Entry point: work-stealing execution of `eng`'s run. Returns None
/// when the guidance hook does not support cloning (the caller falls
/// back to the legacy loop before any recording happens).
pub(crate) fn run_steal(eng: &mut Engine<'_>) -> Option<EngineReport> {
    let workers = eng.config.state_workers.max(1);
    let mut hook_boxes: Vec<Box<dyn EventHook + Send + '_>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        hook_boxes.push(eng.hook.clone_hook()?);
    }

    let config = eng.config;
    let module = eng.module;
    let rec = eng.rec;
    let start = Instant::now();
    let run_span = rec.span_open(names::ENGINE_RUN);
    let solver_before = eng.solver.stats();

    // Pin and pre-materialize every input on the main thread: VarIds —
    // which the solver's branching tie-break keys on — are allocated in
    // module declaration order, never in execution order.
    let mut base_ctx = eng.ctx.clone();
    let mut inputs_map: HashMap<InputId, SymValue> = HashMap::new();
    for (i, def) in module.inputs.iter().enumerate() {
        if let Some(v) = eng.pinned.get(&def.name) {
            let sym = match (v, def.kind) {
                (InputValue::Int(n), sir::InputKind::Int) => SymValue::Int(base_ctx.int(*n)),
                (InputValue::Str(bytes), sir::InputKind::Str { cap }) => {
                    let mut b = bytes.clone();
                    b.truncate(cap as usize);
                    SymValue::Str(SymStr::concrete(&mut base_ctx, &b))
                }
                _ => continue,
            };
            inputs_map.insert(InputId(i as u32), sym);
        }
    }
    materialize_inputs(module, &mut base_ctx, &mut inputs_map);

    let traced = rec.enabled();
    let lineage_on = config.lineage && rec.enabled();
    let clock_mode = rec.clock_mode();
    // Provenance rides the solver itself, so enabling it on the
    // engine's solver *before* the bootstrap/base clones propagates the
    // flag (and the candidate rank) into every task's private solver.
    if config.provenance && traced {
        eng.solver.set_provenance(config.candidate_rank);
    }
    let suppressed = eng.suppressed.clone();
    let sc = SegCtx {
        module,
        max_call_depth: config.max_call_depth,
        slice: config.steal_slice.max(1),
        traced,
        lineage_on,
        attribution: config.attribution && traced,
        provenance: config.provenance && traced,
        clock_mode,
        suppressed: &suppressed,
    };

    let mut worker_res: Vec<WorkerRes<'_>> = hook_boxes
        .into_iter()
        .map(|hook| WorkerRes {
            ctx: base_ctx.clone(),
            hook,
            inputs: inputs_map.clone(),
        })
        .collect();

    // Bootstrap: build the initial state on the main thread as segment
    // 0 of the root task (guidance may query the solver here, so it is
    // recorded like any other segment).
    let root_key: TaskKey = vec![0];
    let mut boot_solver = eng.solver.clone();
    let boot_record = {
        let res = &mut worker_res[0];
        let buf = traced.then(|| BufferedRecorder::new(clock_mode));
        let brec: &dyn Recorder = match &buf {
            Some(b) => b,
            None => &NOOP,
        };
        let sv0 = boot_solver.stats();
        let mut lineage = Lineage::capture(
            lineage_on,
            WorkSnapshot {
                steps: 0,
                solver_nodes: sv0.nodes,
                solver_us: sv0.query_us,
            },
        );
        let mut exec = ExecStats::default();
        let mut next_local: u64 = 0;
        let mut env = ExecEnv {
            module,
            ctx: &mut res.ctx,
            solver: &mut boot_solver,
            inputs: &mut res.inputs,
            hook: res.hook.as_mut(),
            stats: &mut exec,
            rec: brec,
            max_call_depth: config.max_call_depth,
            next_state_id: &mut next_local,
            lineage: &mut lineage,
        };
        let init = initial_state(&mut env);
        let est = init.est_bytes();
        let start_loc = state_loc(module, &init);
        let start_hops = init.meta.hops;
        let start_depth = init.depth;
        let record = SegRecord {
            key: root_key.clone(),
            seg: 0,
            exec,
            solver: solver_delta(&boot_solver.stats(), &sv0),
            locals_used: next_local,
            buffer: buf.map(|b| b.finish()),
            lineage: lineage.take_captured(),
            start_loc,
            start_hops,
            start_depth,
            end: SegEnd::Paused { est },
        };
        (record, init)
    };
    let (boot_record, init) = boot_record;

    let mut walker = Walker {
        rec,
        lineage_on,
        budget: config.budget,
        limited: config.budget.is_limited(),
        budget_telemetry: config.budget.is_limited() && rec.enabled(),
        wall_clock: clock_mode == ClockMode::Wall,
        last_budget_note: None,
        max_steps: config.max_steps,
        memory_budget: config.memory_budget,
        max_live_states: config.max_live_states,
        time_budget: config.time_budget,
        start,
        cancel: eng.cancel.clone(),
        nodes: HashMap::from([(
            root_key.clone(),
            NodeInfo {
                trace_id: 0,
                parent_trace: 0,
                est: 0,
            },
        )]),
        stack: vec![(root_key.clone(), 0)],
        ready: HashMap::new(),
        suspended: Vec::new(),
        exec: ExecStats::default(),
        solver: SolverStats::default(),
        fresh_states: 0,
        paths_completed: 0,
        unconfirmed: 0,
        live: 1,
        live_mem: 0,
        peak_live: 1,
        peak_mem: 0,
        end: None,
    };
    walker.deliver(boot_record);
    walker.advance();

    // The engine's own solver stays the pristine base for resumed
    // phases (the bootstrap's queries live in `boot_solver`).
    let base_solver = eng.solver.clone();
    let mut tasks: Vec<Task> = vec![Task {
        key: root_key,
        seg: 1,
        state: init,
        solver: boot_solver,
    }];
    let mut phase: u32 = 0;
    while walker.end.is_none() && !tasks.is_empty() {
        let shared = PhaseShared {
            stop: AtomicBool::new(false),
            tripped: Mutex::new(None),
            start,
            cancel: eng.cancel.clone(),
            time_budget: config.time_budget,
            max_wall_ms: config.budget.max_wall_ms,
        };
        run_phase(
            &sc,
            &shared,
            &mut walker,
            &mut worker_res,
            tasks,
            config.steal_seed,
        );
        tasks = Vec::new();
        if walker.end.is_none() && !walker.suspended.is_empty() {
            phase += 1;
            tasks = resume_tasks(&mut walker, module, &base_solver, phase);
        }
    }
    drop(worker_res);

    let mut stats = EngineStats {
        exec: walker.exec,
        paths_completed: walker.paths_completed,
        states_created: 1 + walker.fresh_states,
        left_suspended: walker.suspended.len() as u64 + walker.unconfirmed,
        paths_explored: walker.paths_completed
            + walker.exec.pruned
            + walker.live as u64
            + walker.unconfirmed,
        peak_live_states: walker.peak_live,
        peak_memory: walker.peak_mem,
        solver: {
            let mut sv = solver_before;
            solver_accum(&mut sv, &walker.solver);
            sv
        },
    };

    let outcome = match walker.end.take() {
        Some(WalkEnd::Found(state, fault, model)) => {
            stats.paths_explored += 1;
            RunOutcome::Found(Box::new(eng.report(*state, fault, model, &inputs_map)))
        }
        Some(WalkEnd::Exhausted(r)) => RunOutcome::Exhausted(r),
        None => RunOutcome::Completed,
    };

    record_run_telemetry(rec, &stats, &solver_before, &outcome);
    rec.span_close(run_span);
    Some(EngineReport {
        outcome,
        stats,
        wall_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_delta_and_accum_round_trip() {
        let base = SolverStats {
            queries: 5,
            nodes: 100,
            ucache_stores: 2,
            ..Default::default()
        };
        let mut now = base;
        now.queries = 9;
        now.nodes = 150;
        now.ucache_stores = 3;
        now.indep_queries = 4;
        let d = solver_delta(&now, &base);
        assert_eq!(d.queries, 4);
        assert_eq!(d.nodes, 50);
        assert_eq!(d.ucache_stores, 1);
        assert_eq!(d.indep_queries, 4);
        let mut acc = base;
        solver_accum(&mut acc, &d);
        assert_eq!(acc.queries, now.queries);
        assert_eq!(acc.nodes, now.nodes);
        assert_eq!(acc.ucache_stores, now.ucache_stores);
        assert_eq!(acc.indep_queries, now.indep_queries);
    }

    #[test]
    fn exec_accum_sums_fieldwise() {
        let mut a = ExecStats::default();
        let b = ExecStats {
            steps: 10,
            forks: 2,
            pruned: 1,
            suspended: 3,
            concretizations: 4,
            strlen_forks: 5,
        };
        exec_accum(&mut a, &b);
        exec_accum(&mut a, &b);
        assert_eq!(a.steps, 20);
        assert_eq!(a.forks, 4);
        assert_eq!(a.pruned, 2);
        assert_eq!(a.suspended, 6);
        assert_eq!(a.concretizations, 8);
        assert_eq!(a.strlen_forks, 10);
    }
}
