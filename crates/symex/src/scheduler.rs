//! State schedulers (KLEE's "searchers").
//!
//! The engine is scheduler-agnostic: pure symbolic execution uses BFS,
//! DFS, or random selection (KLEE's built-ins, §VI-C of the paper), and
//! statistics-guided execution uses the priority scheduler fed by the
//! guidance hook (fewer diverted hops and deeper candidate-path progress
//! first).

use crate::state::State;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which scheduling policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// First-in first-out: breadth-first exploration.
    Bfs,
    /// Last-in first-out: depth-first exploration.
    Dfs,
    /// Uniformly random selection among pending states, seeded.
    Random {
        /// RNG seed (determinism).
        seed: u64,
    },
    /// Lowest priority value first (guided mode).
    Priority,
    /// KLEE-style coverage-optimized search: states whose next block has
    /// never been executed run first (the engine computes the priority).
    Coverage,
}

/// A pending-state queue.
pub trait Scheduler: std::fmt::Debug {
    /// Enqueues `state`. `priority` is meaningful only to
    /// [`SchedulerKind::Priority`] (lower runs sooner).
    fn push(&mut self, state: State, priority: i64);

    /// Removes and returns the next state to run.
    fn pop(&mut self) -> Option<State>;

    /// Number of pending states.
    fn len(&self) -> usize;

    /// True when no states are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds a scheduler of the given kind.
pub fn build_scheduler(kind: SchedulerKind) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::Bfs => Box::new(BfsScheduler::default()),
        SchedulerKind::Dfs => Box::new(DfsScheduler::default()),
        SchedulerKind::Random { seed } => Box::new(RandomScheduler::new(seed)),
        SchedulerKind::Priority | SchedulerKind::Coverage => Box::new(PriorityScheduler::default()),
    }
}

/// FIFO scheduler (breadth-first).
#[derive(Debug, Default)]
pub struct BfsScheduler {
    queue: VecDeque<State>,
}

impl Scheduler for BfsScheduler {
    fn push(&mut self, state: State, _priority: i64) {
        self.queue.push_back(state);
    }

    fn pop(&mut self) -> Option<State> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// LIFO scheduler (depth-first).
#[derive(Debug, Default)]
pub struct DfsScheduler {
    stack: Vec<State>,
}

impl Scheduler for DfsScheduler {
    fn push(&mut self, state: State, _priority: i64) {
        self.stack.push(state);
    }

    fn pop(&mut self) -> Option<State> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Random-selection scheduler (KLEE's random state search).
#[derive(Debug)]
pub struct RandomScheduler {
    states: Vec<State>,
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a deterministic random scheduler.
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn push(&mut self, state: State, _priority: i64) {
        self.states.push(state);
    }

    fn pop(&mut self) -> Option<State> {
        if self.states.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..self.states.len());
        Some(self.states.swap_remove(i))
    }

    fn len(&self) -> usize {
        self.states.len()
    }
}

/// Min-priority scheduler with FIFO tie-breaking; used by the
/// statistics-guided mode (priority = diverted hops, then negative
/// candidate-path progress).
#[derive(Debug, Default)]
pub struct PriorityScheduler {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    key: Reverse<(i64, u64)>,
    state: State,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl Scheduler for PriorityScheduler {
    fn push(&mut self, state: State, priority: i64) {
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((priority, self.seq)),
            state,
        });
    }

    fn pop(&mut self) -> Option<State> {
        self.heap.pop().map(|e| e.state)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Per-worker work-stealing deques for steal-mode execution
/// (`EngineConfig::state_workers`). Each worker owns one deque: it
/// pushes and pops at the *front* (LIFO, so its own frontier explores
/// depth-first and stays cache-warm), while idle workers steal from the
/// *back* of a victim's deque (the oldest, shallowest work — the
/// classic Cilk discipline, which steals the largest subtrees).
///
/// `pending` counts tasks that have been pushed but whose processing
/// has not been confirmed via [`StealQueues::done`]; a worker that
/// observes an empty system *and* `pending == 0` can exit, because no
/// in-flight segment can spawn more work. Callers must push any child
/// tasks *before* calling `done` on the parent to keep that invariant.
///
/// Stealing affects only which worker runs which segment — never trace
/// content — so the victim order may be arbitrary; [`victim_order`]
/// seeds it per worker to avoid convoying on one victim.
#[derive(Debug)]
pub(crate) struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    pending: AtomicUsize,
}

impl<T> StealQueues<T> {
    /// Creates `n` empty deques.
    pub fn new(n: usize) -> StealQueues<T> {
        StealQueues {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Pushes a task onto `worker`'s own deque (front).
    pub fn push(&self, worker: usize, task: T) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queues[worker]
            .lock()
            .expect("steal queue lock")
            .push_front(task);
    }

    /// Pops the next task: the worker's own front, else steal from the
    /// back of each victim in `victims` order.
    pub fn pop(&self, worker: usize, victims: &[usize]) -> Option<T> {
        if let Some(t) = self.queues[worker]
            .lock()
            .expect("steal queue lock")
            .pop_front()
        {
            return Some(t);
        }
        for &v in victims {
            if let Some(t) = self.queues[v].lock().expect("steal queue lock").pop_back() {
                return Some(t);
            }
        }
        None
    }

    /// Confirms that one previously-popped task has been fully
    /// processed (all of its children already pushed).
    pub fn done(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Tasks pushed but not yet confirmed done.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A per-worker permutation of the other workers, used as the steal
/// victim order. Seeded so runs are reproducible, and distinct per
/// worker so thieves spread out instead of all hammering worker 0.
pub(crate) fn victim_order(workers: usize, me: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..workers).filter(|&w| w != me).collect();
    let mut s = splitmix64(seed ^ (me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for i in (1..order.len()).rev() {
        s = splitmix64(s);
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{CondList, StateMeta, TraceList};

    fn mk_state(id: u64) -> State {
        State {
            id,
            frames: Vec::new(),
            globals: Vec::new(),
            heap: Vec::new(),
            path: CondList::new(),
            soft: CondList::new(),
            trace: TraceList::default(),
            depth: 0,
            meta: StateMeta::default(),
            guidance_off: false,
        }
    }

    #[test]
    fn bfs_is_fifo() {
        let mut s = BfsScheduler::default();
        s.push(mk_state(1), 0);
        s.push(mk_state(2), 0);
        assert_eq!(s.pop().unwrap().id, 1);
        assert_eq!(s.pop().unwrap().id, 2);
        assert!(s.pop().is_none());
    }

    #[test]
    fn dfs_is_lifo() {
        let mut s = DfsScheduler::default();
        s.push(mk_state(1), 0);
        s.push(mk_state(2), 0);
        assert_eq!(s.pop().unwrap().id, 2);
        assert_eq!(s.pop().unwrap().id, 1);
    }

    #[test]
    fn priority_pops_lowest_first_fifo_ties() {
        let mut s = PriorityScheduler::default();
        s.push(mk_state(1), 5);
        s.push(mk_state(2), 1);
        s.push(mk_state(3), 5);
        assert_eq!(s.pop().unwrap().id, 2);
        assert_eq!(s.pop().unwrap().id, 1); // FIFO among equal priorities
        assert_eq!(s.pop().unwrap().id, 3);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_complete() {
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            for i in 0..10 {
                s.push(mk_state(i), 0);
            }
            let mut order = Vec::new();
            while let Some(st) = s.pop() {
                order.push(st.id);
            }
            order
        };
        assert_eq!(run(7), run(7));
        let mut sorted = run(7);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn build_scheduler_dispatches() {
        assert_eq!(build_scheduler(SchedulerKind::Bfs).len(), 0);
        assert!(build_scheduler(SchedulerKind::Random { seed: 1 }).is_empty());
    }

    #[test]
    fn steal_queues_owner_lifo_thief_fifo() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.push(0, 3);
        // Owner pops its own front: most recently pushed first.
        assert_eq!(q.pop(0, &[1]), Some(3));
        // Thief steals from the back: oldest first.
        assert_eq!(q.pop(1, &[0]), Some(1));
        assert_eq!(q.pop(1, &[0]), Some(2));
        assert_eq!(q.pop(1, &[0]), None);
        assert_eq!(q.pending(), 3);
        q.done();
        q.done();
        q.done();
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn victim_order_is_a_seeded_permutation() {
        for me in 0..4 {
            let mut v = victim_order(4, me, 7);
            assert_eq!(v, victim_order(4, me, 7));
            assert!(!v.contains(&me));
            v.sort_unstable();
            let expect: Vec<usize> = (0..4).filter(|&w| w != me).collect();
            assert_eq!(v, expect);
        }
        assert!(victim_order(1, 0, 0).is_empty());
    }
}
