//! Source-level cost attribution (`attr.*` counters) and solver
//! provenance context.
//!
//! With [`crate::EngineConfig::attribution`] on, every executed
//! instruction is billed to the MiniC source line about to run: the
//! step itself plus the forks, suspensions, solver queries, solver
//! search nodes, and (wall-clock traces only) solver µs the step
//! caused. Totals accumulate in a per-run (legacy loop) or per-segment
//! (steal mode) map and flush as `attr.<function>:<line>.<dim>`
//! counters. Counters fold by name across worker-buffer merges and the
//! final counter section dumps sorted, so per-line totals are
//! byte-identical at any portfolio or state-worker count — each
//! instruction is executed exactly once no matter how segments are
//! scheduled.
//!
//! With [`crate::EngineConfig::provenance`] on, the same pre-step hook
//! pushes the originating state id and source location into the solver,
//! which stamps them onto the canonical `query` events it emits.

use crate::executor::ExecStats;
use crate::state::State;
use sir::Module;
use solver::{Solver, SolverStats};
use statsym_telemetry::{names, ClockMode, Recorder};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-dimension cost cell for one source line, in
/// [`names::ATTR_DIMS`] order.
#[derive(Debug, Default, Clone, Copy)]
struct Cell {
    steps: u64,
    forks: u64,
    suspends: u64,
    queries: u64,
    nodes: u64,
    us: u64,
}

/// Pre-step snapshot: the source line about to execute plus the work
/// counters before the step ran.
pub(crate) struct PreStep {
    key: (u32, u32),
    steps: u64,
    forks: u64,
    suspended: u64,
    solver: SolverStats,
}

/// Step-granular cost attribution and solver provenance context. Inert
/// (the engine skips the per-step hooks entirely) unless at least one
/// of the two features is enabled.
pub(crate) struct StepAttr {
    attribution: bool,
    provenance: bool,
    map: HashMap<(u32, u32), Cell>,
    cur_key: (u32, u32),
    cur_loc: String,
}

/// Sentinel function id for a state whose call stack has fully unwound.
const EXIT_KEY: (u32, u32) = (u32::MAX, 0);

impl StepAttr {
    pub(crate) fn new(attribution: bool, provenance: bool) -> StepAttr {
        StepAttr {
            attribution,
            provenance,
            map: HashMap::new(),
            cur_key: (u32::MAX, u32::MAX),
            cur_loc: String::new(),
        }
    }

    /// Whether the per-step hooks need to run at all.
    pub(crate) fn active(&self) -> bool {
        self.attribution || self.provenance
    }

    /// Called immediately before executing one instruction of `state`
    /// (or before a solver call made on the state's behalf): resolves
    /// the current source location, pushes the provenance origin into
    /// the solver, and snapshots the work counters. The location string
    /// is cached, so consecutive steps on the same line allocate
    /// nothing.
    pub(crate) fn pre_step(
        &mut self,
        module: &Module,
        state: &State,
        solver: &mut Solver,
        exec: &ExecStats,
    ) -> PreStep {
        let key = loc_key(module, state);
        if key != self.cur_key {
            self.cur_key = key;
            self.cur_loc.clear();
            if key == EXIT_KEY {
                self.cur_loc.push_str("exit:0");
            } else {
                let _ = write!(
                    self.cur_loc,
                    "{}:{}",
                    module.func(sir::FuncId(key.0)).name,
                    key.1
                );
            }
        }
        if self.provenance {
            solver.set_query_origin(state.id, &self.cur_loc);
        }
        PreStep {
            key,
            steps: exec.steps,
            forks: exec.forks,
            suspended: exec.suspended,
            solver: solver.stats(),
        }
    }

    /// Bills the work done since `pre` to the pre-step source line.
    pub(crate) fn post_step(&mut self, pre: PreStep, solver: &SolverStats, exec: &ExecStats) {
        if !self.attribution {
            return;
        }
        let cell = self.map.entry(pre.key).or_default();
        cell.steps += exec.steps - pre.steps;
        cell.forks += exec.forks - pre.forks;
        cell.suspends += exec.suspended - pre.suspended;
        cell.queries += solver.queries - pre.solver.queries;
        cell.nodes += solver.nodes - pre.solver.nodes;
        cell.us += solver.query_us - pre.solver.query_us;
    }

    /// Emits the accumulated cells as `attr.<function>:<line>.<dim>`
    /// counter adds and clears the map. Zero dims are skipped (the
    /// zero-vs-absent convention) and `.us` is emitted only under a
    /// wall clock — it is wall-measured even under the step clock, so a
    /// deterministic trace must not carry it. Emission order cannot
    /// affect trace bytes (counters dump sorted by name at finish), but
    /// keys are sorted anyway so the call sequence itself is
    /// deterministic.
    pub(crate) fn flush(&mut self, module: &Module, rec: &dyn Recorder) {
        if !self.attribution || self.map.is_empty() {
            return;
        }
        let wall = rec.clock_mode() == ClockMode::Wall;
        let mut keys: Vec<(u32, u32)> = self.map.keys().copied().collect();
        keys.sort_unstable();
        let mut name = String::new();
        for key in keys {
            let cell = self.map[&key];
            let func = if key == EXIT_KEY {
                "exit"
            } else {
                module.func(sir::FuncId(key.0)).name.as_str()
            };
            let dims = [
                cell.steps,
                cell.forks,
                cell.suspends,
                cell.queries,
                cell.nodes,
                cell.us,
            ];
            for (dim, v) in names::ATTR_DIMS.iter().zip(dims) {
                if v == 0 || (*dim == "us" && !wall) {
                    continue;
                }
                name.clear();
                let _ = write!(name, "{}{}:{}.{}", names::ATTR_PREFIX, func, key.1, dim);
                rec.counter_add(&name, v);
            }
        }
        self.map.clear();
    }
}

/// The `(function, source line)` about to execute: the span of the next
/// instruction, or of the block terminator once the instruction index
/// has run past the block body.
fn loc_key(module: &Module, state: &State) -> (u32, u32) {
    match state.frames.last() {
        Some(f) => {
            let func = module.func(f.func);
            let block = &func.blocks[f.block.index()];
            let line = match block.insts.get(f.idx) {
                Some((_, span)) => span.line,
                None => block.term.1.line,
            };
            (f.func.0, line)
        }
        None => EXIT_KEY,
    }
}
