//! The guidance seam: function-boundary event hooks.
//!
//! This is the interface through which `statsym-core` injects the
//! paper's two guidance mechanisms (§V-C) into the engine without the
//! engine knowing anything about statistics:
//!
//! * **inter-function search** — the hook tracks candidate-path progress
//!   and diverted hops in [`StateMeta`] and may *suspend* states that
//!   stray more than τ hops from the candidate path;
//! * **intra-function search** — the hook returns predicate constraints
//!   to be added to the state's *soft* constraint set; branches that
//!   contradict them get suspended rather than killed.

use crate::state::StateMeta;
use crate::value::SymValue;
use concrete::Location;
use solver::{Constraint, TermCtx};

/// Everything a hook can observe at one function-boundary event.
#[derive(Debug)]
pub struct EventCtx<'a> {
    /// The event location (`f():enter` / `f():leave`).
    pub loc: &'a Location,
    /// Callee parameter names/types (entry events; empty on exit).
    pub params: &'a [(String, minic::Type)],
    /// Argument values parallel to `params` (entry events).
    pub args: &'a [SymValue],
    /// Return value (exit events).
    pub ret: Option<&'a SymValue>,
    /// Module global definitions.
    pub global_defs: &'a [sir::GlobalDef],
    /// Current global values, parallel to `global_defs`.
    pub globals: &'a [SymValue],
}

impl EventCtx<'_> {
    /// Looks up a parameter value by name (entry events).
    pub fn arg(&self, name: &str) -> Option<&SymValue> {
        self.params
            .iter()
            .position(|(n, _)| n == name)
            .and_then(|i| self.args.get(i))
    }

    /// Looks up a global value by name.
    pub fn global(&self, name: &str) -> Option<&SymValue> {
        self.global_defs
            .iter()
            .position(|g| g.name == name)
            .and_then(|i| self.globals.get(i))
    }
}

/// What the hook wants done with the state after an event.
#[derive(Debug, Clone, Default)]
pub struct GuidanceResult {
    /// Constraints to add to the state's soft set.
    pub constraints: Vec<Constraint>,
    /// Suspend this state (resumed only when no active states remain).
    pub suspend: bool,
    /// Candidate-path node index this event matched, if any. Feeds the
    /// `candidate.node` coverage events under lineage tracing; has no
    /// effect on exploration.
    pub matched: Option<usize>,
}

/// Observer/guide for symbolic execution, called at every function entry
/// and exit the engine executes.
pub trait EventHook {
    /// Reacts to one function-boundary event. May mutate the state's
    /// guidance bookkeeping (`meta`) and build constraint terms in `ctx`.
    fn on_event(
        &mut self,
        ev: &EventCtx<'_>,
        meta: &mut StateMeta,
        ctx: &mut TermCtx,
    ) -> GuidanceResult;

    /// Scheduling priority for a state (lower runs sooner). The default
    /// treats all states equally.
    fn priority(&self, _meta: &StateMeta, _depth: u32) -> i64 {
        0
    }

    /// Produces an independent copy of this hook for a steal-mode state
    /// worker (see `EngineConfig::state_workers`). Hooks that carry only
    /// read-only guidance data (candidate path, thresholds) should
    /// return `Some`; the default `None` makes the engine fall back to
    /// the single-threaded scheduling loop, so stateful hooks stay
    /// correct without opting in.
    ///
    /// Worker copies observe only the events of the states their worker
    /// executes, in a schedule-dependent order — a hook may only opt in
    /// if its decisions are a pure function of each event (plus state
    /// `meta`), which is what keeps steal-mode traces byte-identical at
    /// any worker count.
    fn clone_hook<'a>(&'a self) -> Option<Box<dyn EventHook + Send + 'a>> {
        None
    }
}

/// The no-guidance hook: pure symbolic execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGuidance;

impl EventHook for NoGuidance {
    fn on_event(
        &mut self,
        _ev: &EventCtx<'_>,
        _meta: &mut StateMeta,
        _ctx: &mut TermCtx,
    ) -> GuidanceResult {
        GuidanceResult::default()
    }

    fn clone_hook<'a>(&'a self) -> Option<Box<dyn EventHook + Send + 'a>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_guidance_is_inert() {
        let mut hook = NoGuidance;
        let loc = Location::enter("f");
        let ev = EventCtx {
            loc: &loc,
            params: &[],
            args: &[],
            ret: None,
            global_defs: &[],
            globals: &[],
        };
        let mut meta = StateMeta::default();
        let mut ctx = TermCtx::new();
        let r = hook.on_event(&ev, &mut meta, &mut ctx);
        assert!(r.constraints.is_empty());
        assert!(!r.suspend);
        assert_eq!(hook.priority(&meta, 3), 0);
    }
}
