//! Focused behavioral tests of the symbolic executor: symbolic-index
//! concretization, string bounds, guidance worst-case degradation
//! (paper footnote 1), and trace fidelity.

use concrete::{FaultKind, Location, Vm, VmConfig};
use solver::{CmpOp, Constraint, TermCtx};
use symex::{
    Engine, EngineConfig, EventCtx, EventHook, GuidanceResult, RunOutcome, SchedulerKind, StateMeta,
};

fn run(src: &str, config: EngineConfig) -> (symex::EngineReport, sir::Module) {
    let module = sir::lower(&minic::parse_program(src).unwrap()).unwrap();
    let report = Engine::new(&module, config).run();
    (report, module)
}

#[test]
fn symbolic_buffer_index_forks_a_fault_child() {
    // The index is an input, not a loop counter: the engine must fork an
    // out-of-bounds fault child and concretize the in-range access.
    let src = r#"
        fn main() -> int {
            let i: int = input_int("i");
            let b: buf[10];
            buf_set(b, i, 65);
            return buf_get(b, i);
        }
    "#;
    let (report, module) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("oob reachable");
    assert!(matches!(
        found.fault.kind,
        FaultKind::BufferOverflow { cap: 10, .. }
    ));
    let vm = Vm::new(&module, VmConfig::default());
    let replay = vm.run(&found.inputs).unwrap();
    assert!(matches!(
        replay.outcome.fault().unwrap().kind,
        FaultKind::BufferOverflow { cap: 10, .. }
    ));
}

#[test]
fn negative_symbolic_index_is_found() {
    let src = r#"
        fn main() {
            let i: int = input_int("i");
            if (i < 5) {
                let b: buf[10];
                buf_set(b, i, 1); // fine for 0..=4, faults for negatives
            }
        }
    "#;
    let (report, module) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("negative index fault");
    let vm = Vm::new(&module, VmConfig::default());
    assert!(vm.run(&found.inputs).unwrap().outcome.is_fault());
    match found.inputs.get("i") {
        Some(concrete::InputValue::Int(v)) => assert!(*v < 0, "i = {v}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn string_read_past_capacity_faults() {
    // Reading s[cap + 1] is beyond even the guaranteed terminator.
    let src = r#"
        fn main() -> int {
            let s: str = input_str("s", 4);
            return char_at(s, 6);
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("definite oob");
    assert!(matches!(found.fault.kind, FaultKind::StringOob { .. }));
}

#[test]
fn terminator_read_is_safe() {
    // Reading s[cap] is the guaranteed NUL: no fault on any path.
    let src = r#"
        fn main() -> int {
            let s: str = input_str("s", 4);
            return char_at(s, 4);
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    assert!(matches!(report.outcome, RunOutcome::Completed));
}

#[test]
fn trace_records_call_sequence_in_order() {
    let src = r#"
        fn inner() { return; }
        fn outer() { inner(); }
        fn boom(n: int) { assert(n < 1000); }
        fn main() {
            let n: int = input_int("n");
            outer();
            boom(n);
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("assert violable");
    let names: Vec<String> = found.trace.iter().map(|l| l.to_string()).collect();
    assert_eq!(
        names,
        vec![
            "main():enter",
            "outer():enter",
            "inner():enter",
            "inner():leave",
            "outer():leave",
            "boom():enter",
        ],
        "faulting function never leaves"
    );
}

/// A deliberately wrong guidance hook: it suspends every state at its
/// second function event. Paper footnote 1: "in the (unlikely) worst
/// case when erroneous statistical inference is made, the performance of
/// StatSym is equivalent to pure symbolic execution" — the engine must
/// resume the suspended states and still find the fault.
struct HostileGuidance;

impl EventHook for HostileGuidance {
    fn on_event(
        &mut self,
        _ev: &EventCtx<'_>,
        meta: &mut StateMeta,
        _ctx: &mut TermCtx,
    ) -> GuidanceResult {
        meta.hops += 1;
        GuidanceResult {
            constraints: Vec::new(),
            suspend: meta.hops >= 2,
            matched: None,
        }
    }
}

#[test]
fn wrong_guidance_degrades_to_pure_search_and_still_finds() {
    let src = r#"
        fn step_a(v: int) -> int { return v + 1; }
        fn step_b(v: int) -> int { return v * 2; }
        fn boom(v: int) { assert(v < 50); }
        fn main() {
            let v: int = input_int("v");
            let w: int = step_a(step_b(v));
            boom(w);
        }
    "#;
    let module = sir::lower(&minic::parse_program(src).unwrap()).unwrap();
    let mut engine = Engine::with_hook(
        &module,
        EngineConfig {
            scheduler: SchedulerKind::Priority,
            ..EngineConfig::default()
        },
        Box::new(HostileGuidance),
    );
    let report = engine.run();
    let found = report
        .outcome
        .found()
        .expect("fault found despite hostile guidance");
    assert_eq!(found.fault.func, "boom");
    assert!(
        report.stats.exec.suspended > 0,
        "the hostile hook did suspend states"
    );
}

/// Guidance that injects a constraint contradicting the only fault path:
/// the fault-side states are suspended, resumed with guidance off, and
/// the fault is still found (soft constraints never cause unsoundness).
struct MisleadingPredicates;

impl EventHook for MisleadingPredicates {
    fn on_event(
        &mut self,
        ev: &EventCtx<'_>,
        _meta: &mut StateMeta,
        ctx: &mut TermCtx,
    ) -> GuidanceResult {
        let mut constraints = Vec::new();
        if ev.loc == &Location::enter("check") {
            // Wrong inference: claims v < 10, but the fault needs v >= 90.
            if let Some(symex::SymValue::Int(t)) = ev.arg("v") {
                let bound = ctx.int(10);
                constraints.push(Constraint::new(CmpOp::Lt, *t, bound));
            }
        }
        GuidanceResult {
            constraints,
            suspend: false,
            matched: None,
        }
    }
}

#[test]
fn misleading_soft_constraints_do_not_hide_the_fault() {
    let src = r#"
        fn check(v: int) { assert(v < 90); }
        fn main() {
            let v: int = input_int("v");
            check(v);
        }
    "#;
    let module = sir::lower(&minic::parse_program(src).unwrap()).unwrap();
    let mut engine = Engine::with_hook(
        &module,
        EngineConfig {
            scheduler: SchedulerKind::Priority,
            ..EngineConfig::default()
        },
        Box::new(MisleadingPredicates),
    );
    let report = engine.run();
    let found = report
        .outcome
        .found()
        .expect("fault found after resuming suspended states");
    match found.inputs.get("v") {
        Some(concrete::InputValue::Int(v)) => assert!(*v >= 90),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn exit_paths_do_not_leak_into_fault_search() {
    // exit() before the vulnerable call on some paths must not stop the
    // engine from finding the fault on others.
    let src = r#"
        fn main() {
            let n: int = input_int("n");
            if (n == 0) { exit(0); }
            let b: buf[3];
            if (n > 3) { buf_set(b, n, 1); }
        }
    "#;
    let (report, module) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("fault behind exit");
    let vm = Vm::new(&module, VmConfig::default());
    assert!(vm.run(&found.inputs).unwrap().outcome.is_fault());
}

#[test]
fn symbolic_alloc_size_forks_an_overflow_child() {
    // `n * 128` escapes [0, MAX_ALLOC] for most inputs; the engine must
    // fork the allocation-overflow child and the replay must agree.
    let src = r#"
        fn main() {
            let n: int = input_int("n");
            let h: buf = alloc(n * 128);
            buf_set(h, 0, 1);
            free(h);
        }
    "#;
    let (report, module) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("alloc overflow reachable");
    assert!(matches!(found.fault.kind, FaultKind::AllocOverflow { .. }));
    let vm = Vm::new(&module, VmConfig::default());
    let replay = vm.run(&found.inputs).unwrap();
    assert!(matches!(
        replay.outcome.fault().unwrap().kind,
        FaultKind::AllocOverflow { .. }
    ));
}

#[test]
fn off_by_one_loop_bound_on_dynamic_buffer_is_classified() {
    // `i <= buf_cap(h)` walks one past the end; dynamic buffers classify
    // the fencepost as the off-by-one family, not a generic overflow.
    let src = r#"
        fn main() {
            let n: int = input_int("n");
            let h: buf = alloc(4);
            if (n > 10) {
                let i: int = 0;
                while (i <= buf_cap(h)) {
                    buf_set(h, i, 7);
                    i = i + 1;
                }
            }
            free(h);
        }
    "#;
    let (report, module) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("off-by-one reachable");
    assert!(
        matches!(found.fault.kind, FaultKind::OffByOne { cap: 4 }),
        "got {:?}",
        found.fault.kind
    );
    let vm = Vm::new(&module, VmConfig::default());
    let replay = vm.run(&found.inputs).unwrap();
    assert!(matches!(
        replay.outcome.fault().unwrap().kind,
        FaultKind::OffByOne { cap: 4 }
    ));
}

#[test]
fn stack_buffer_fencepost_keeps_overflow_classification() {
    // The same `idx == cap` access on a stack buffer stays in the legacy
    // buffer-overflow class (the paper benchapps depend on this).
    let src = r#"
        fn main() {
            let b: buf[4];
            buf_set(b, 4, 1);
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("fencepost faults");
    assert!(matches!(
        found.fault.kind,
        FaultKind::BufferOverflow { cap: 4, idx: 4 }
    ));
}

#[test]
fn symbolic_format_string_finds_a_percent_byte() {
    let src = r#"
        fn main() {
            let s: str = input_str("s", 6);
            format(s);
        }
    "#;
    let (report, module) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("percent byte reachable");
    assert!(matches!(found.fault.kind, FaultKind::FormatString { .. }));
    let vm = Vm::new(&module, VmConfig::default());
    let replay = vm.run(&found.inputs).unwrap();
    assert!(matches!(
        replay.outcome.fault().unwrap().kind,
        FaultKind::FormatString { .. }
    ));
}

#[test]
fn concrete_clean_format_does_not_fault() {
    let src = r#"
        fn main() {
            format("plain text");
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    assert!(matches!(report.outcome, RunOutcome::Completed));
}

#[test]
fn use_after_free_behind_symbolic_guard_is_found() {
    // The free happens only on the `n > 100` branch; the later write is
    // a use-after-free exactly there, and the model must land on it.
    let src = r#"
        fn main() {
            let n: int = input_int("n");
            let h: buf = alloc(4);
            if (n > 100) {
                free(h);
            }
            buf_set(h, 1, 2);
        }
    "#;
    let (report, module) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("uaf reachable");
    assert!(matches!(found.fault.kind, FaultKind::UseAfterFree));
    let vm = Vm::new(&module, VmConfig::default());
    let replay = vm.run(&found.inputs).unwrap();
    assert!(matches!(
        replay.outcome.fault().unwrap().kind,
        FaultKind::UseAfterFree
    ));
    match found.inputs.get("n") {
        Some(concrete::InputValue::Int(v)) => assert!(*v > 100, "n = {v}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn double_free_faults_symbolically() {
    let src = r#"
        fn main() {
            let h: buf = alloc(8);
            free(h);
            free(h);
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("double free faults");
    assert!(matches!(found.fault.kind, FaultKind::UseAfterFree));
}

#[test]
fn freeing_a_stack_buffer_is_an_invalid_free() {
    let src = r#"
        fn main() {
            let b: buf[4];
            free(b);
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("invalid free faults");
    assert!(matches!(found.fault.kind, FaultKind::UseAfterFree));
}

#[test]
fn rendered_constraints_are_human_readable() {
    let src = r#"
        fn main() {
            let n: int = input_int("n");
            if (n > 41) { assert(n != 42 + 0); }
        }
    "#;
    let (report, _) = run(src, EngineConfig::default());
    let found = report.outcome.found().expect("n == 42 faults");
    let joined = found.rendered_constraints.join(" && ");
    assert!(joined.contains('n'), "{joined}");
    assert!(
        joined.contains("42") || joined.contains("41"),
        "constraints mention the threshold: {joined}"
    );
}
