//! Property tests for the symbolic engine: on programs with small input
//! domains, the engine is *sound* (generated inputs really crash the VM)
//! and *complete* (if any input in the domain crashes, the engine finds
//! a fault; if none does, it reports `Completed`).

use concrete::{InputMap, InputValue, Vm, VmConfig};
use proptest::prelude::*;
use symex::{Engine, EngineConfig, RunOutcome, SchedulerKind};

/// Linear guard `a*x + b*y <op> k` with small coefficients.
#[derive(Debug, Clone, Copy)]
struct Guard {
    a: i64,
    b: i64,
    k: i64,
    op: usize,
}

const OPS: [&str; 6] = ["==", "!=", "<", "<=", ">", ">="];

fn guard() -> impl Strategy<Value = Guard> {
    (-4i64..=4, -4i64..=4, -20i64..=20, 0usize..6).prop_map(|(a, b, k, op)| Guard { a, b, k, op })
}

fn holds(g: Guard, x: i64, y: i64) -> bool {
    let v = g.a * x + g.b * y;
    match OPS[g.op] {
        "==" => v == g.k,
        "!=" => v != g.k,
        "<" => v < g.k,
        "<=" => v <= g.k,
        ">" => v > g.k,
        _ => v >= g.k,
    }
}

/// The generated program bounds x and y to [-5, 5] with early returns,
/// then asserts the negation of `g1 && g2` — so a fault exists iff some
/// in-domain (x, y) satisfies both guards.
fn source(g1: Guard, g2: Guard) -> String {
    let guard_src = |g: Guard| format!("(({}) * x + ({}) * y {} {})", g.a, g.b, OPS[g.op], g.k);
    format!(
        "fn main() {{\n\
         \x20   let x: int = input_int(\"x\");\n\
         \x20   let y: int = input_int(\"y\");\n\
         \x20   if (x < -5 || x > 5) {{ return; }}\n\
         \x20   if (y < -5 || y > 5) {{ return; }}\n\
         \x20   if ({}) {{\n\
         \x20       if ({}) {{ assert(false); }}\n\
         \x20   }}\n\
         }}\n",
        guard_src(g1),
        guard_src(g2),
    )
}

fn brute_force_crashes(g1: Guard, g2: Guard) -> bool {
    for x in -5i64..=5 {
        for y in -5i64..=5 {
            if holds(g1, x, y) && holds(g2, x, y) {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn engine_is_sound_and_complete_on_small_domains(g1 in guard(), g2 in guard()) {
        let src = source(g1, g2);
        let program = minic::parse_program(&src).expect("generated source parses");
        let module = sir::lower(&program).expect("lowers");
        let mut engine = Engine::new(&module, EngineConfig::default());
        let report = engine.run();
        let expected_crash = brute_force_crashes(g1, g2);
        match report.outcome {
            RunOutcome::Found(found) => {
                prop_assert!(expected_crash, "engine found a fault brute force says is impossible:\n{src}");
                // Soundness: the generated input reproduces the crash.
                let vm = Vm::new(&module, VmConfig::default());
                let replay = vm.run(&found.inputs).unwrap();
                prop_assert!(replay.outcome.is_fault(), "input does not replay:\n{src}");
            }
            RunOutcome::Completed => {
                prop_assert!(!expected_crash, "engine missed a reachable fault:\n{src}");
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn schedulers_agree_on_fault_existence(g1 in guard(), g2 in guard(), seed in 0u64..100) {
        let src = source(g1, g2);
        let module = sir::lower(&minic::parse_program(&src).unwrap()).unwrap();
        let mut outcomes = Vec::new();
        for scheduler in [
            SchedulerKind::Bfs,
            SchedulerKind::Dfs,
            SchedulerKind::Random { seed },
        ] {
            let mut engine = Engine::new(&module, EngineConfig { scheduler, ..EngineConfig::default() });
            outcomes.push(engine.run().outcome.is_found());
        }
        prop_assert!(outcomes.iter().all(|&o| o == outcomes[0]), "{outcomes:?}\n{src}");
    }
}

#[test]
fn pinned_inputs_constrain_the_search() {
    // With x pinned to a non-crashing value, the fault is unreachable.
    let src = r#"
        fn main() {
            let x: int = input_int("x");
            let y: int = input_int("y");
            if (x == 7) { assert(y != 3); }
        }
    "#;
    let module = sir::lower(&minic::parse_program(src).unwrap()).unwrap();

    let mut free = Engine::new(&module, EngineConfig::default());
    assert!(
        free.run().outcome.is_found(),
        "unpinned engine finds x=7,y=3"
    );

    let mut pinned = Engine::new(&module, EngineConfig::default());
    pinned.pin_input("x", InputValue::Int(0));
    assert!(
        matches!(pinned.run().outcome, RunOutcome::Completed),
        "pinning x=0 removes the fault"
    );

    let mut pinned_hot = Engine::new(&module, EngineConfig::default());
    pinned_hot.pin_input("x", InputValue::Int(7));
    let report = pinned_hot.run();
    let found = report
        .outcome
        .found()
        .expect("x=7 keeps the fault reachable");
    assert_eq!(found.inputs.get("x"), Some(&InputValue::Int(7)));
    // Replay for good measure.
    let vm = Vm::new(&module, VmConfig::default());
    let mut inputs: InputMap = found.inputs.clone();
    inputs.insert("x".into(), InputValue::Int(7));
    assert!(vm.run(&inputs).unwrap().outcome.is_fault());
}
