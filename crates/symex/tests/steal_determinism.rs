//! Steal-mode determinism properties.
//!
//! The work-stealing executor's contract (see `symex::steal`): for a
//! fixed program and `steal_slice`, the outcome, the stats, and the
//! *byte-identical rendered trace* are invariant under the state-worker
//! count and the steal seed. These tests generate random fork trees and
//! check every pair against the 1-worker baseline, then pin down the
//! guidance-suspension (multi-phase) and budget-trip paths explicitly.

use statsym_telemetry::{render_trace, Clock, MemRecorder};
use symex::{
    Budget, Engine, EngineConfig, EventCtx, EventHook, GuidanceResult, RunOutcome, StateMeta,
};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates a random mini-C program: nested symbolic branches, bounded
/// loops, asserts (some violable → fault children), and a guarded
/// buffer access (concretization queries). Deterministic per seed.
fn gen_program(seed: u64) -> String {
    let mut r = Rng(seed ^ 0xfeed_beef);
    let mut vars: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
    let mut body = String::new();
    for v in &vars {
        body.push_str(&format!("    let {v}: int = input_int(\"{v}\");\n"));
    }
    let mut counter = 0u32;
    gen_block(&mut r, 2, &mut vars, &mut body, 1, &mut counter);
    format!("fn main() {{\n{body}}}\n")
}

fn pick<'a>(r: &mut Rng, vars: &'a [String]) -> &'a str {
    &vars[r.below(vars.len() as u64) as usize]
}

fn expr(r: &mut Rng, vars: &[String]) -> String {
    match r.below(4) {
        0 => pick(r, vars).to_string(),
        1 => format!("{} + {}", pick(r, vars), r.below(20)),
        2 => format!("{} * {}", pick(r, vars), 1 + r.below(3)),
        _ => format!("{} - {}", pick(r, vars), pick(r, vars)),
    }
}

fn cond(r: &mut Rng, vars: &[String]) -> String {
    let op = ["<", ">", "=="][r.below(3) as usize];
    format!("{} {} {}", expr(r, vars), op, r.below(60) as i64 - 10)
}

fn gen_block(
    r: &mut Rng,
    depth: u32,
    vars: &mut Vec<String>,
    out: &mut String,
    indent: usize,
    counter: &mut u32,
) {
    let pad = "    ".repeat(indent);
    let stmts = 2 + r.below(2);
    for _ in 0..stmts {
        let choice = if depth > 0 { r.below(6) } else { r.below(4) };
        match choice {
            0 => {
                *counter += 1;
                let name = format!("t{}", *counter);
                out.push_str(&format!("{pad}let {name}: int = {};\n", expr(r, vars)));
                vars.push(name);
            }
            1 => {
                out.push_str(&format!("{pad}assert({});\n", cond(r, vars)));
            }
            2 => {
                *counter += 1;
                let k = format!("k{}", *counter);
                let n = 2 + r.below(4);
                out.push_str(&format!(
                    "{pad}let {k}: int = 0;\n{pad}while ({k} < {n}) {{ {k} = {k} + 1; }}\n"
                ));
            }
            3 => {
                *counter += 1;
                let b = format!("bb{}", *counter);
                let i = pick(r, vars).to_string();
                out.push_str(&format!(
                    "{pad}if ({i} > 0) {{\n{pad}    if ({i} < 7) {{\n{pad}        let {b}: buf[8];\n{pad}        buf_set({b}, {i}, 1);\n{pad}    }}\n{pad}}}\n"
                ));
            }
            4 => {
                out.push_str(&format!("{pad}if ({}) {{\n", cond(r, vars)));
                let before = vars.len();
                gen_block(r, depth - 1, vars, out, indent + 1, counter);
                vars.truncate(before);
                out.push_str(&format!("{pad}}} else {{\n"));
                gen_block(r, depth - 1, vars, out, indent + 1, counter);
                vars.truncate(before);
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                out.push_str(&format!("{pad}if ({}) {{\n", cond(r, vars)));
                let before = vars.len();
                gen_block(r, depth - 1, vars, out, indent + 1, counter);
                vars.truncate(before);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

/// One traced steal-mode run; returns the rendered trace and the report.
fn traced_run(
    module: &sir::Module,
    config: EngineConfig,
    hook: Option<Box<dyn EventHook + '_>>,
) -> (String, symex::EngineReport) {
    let rec = MemRecorder::new(Clock::steps());
    let report = {
        let mut eng = match hook {
            Some(h) => Engine::with_hook(module, config, h),
            None => Engine::new(module, config),
        };
        eng.set_recorder(&rec);
        eng.run()
    };
    (render_trace(&rec.finish()), report)
}

fn steal_config(workers: usize, slice: u64, seed: u64) -> EngineConfig {
    EngineConfig {
        state_workers: workers,
        steal_slice: slice,
        steal_seed: seed,
        lineage: true,
        ..EngineConfig::default()
    }
}

fn stats_key(r: &symex::EngineReport) -> (u64, u64, u64, u64, u64, u64) {
    (
        r.stats.exec.steps,
        r.stats.exec.forks,
        r.stats.paths_completed,
        r.stats.paths_explored,
        r.stats.states_created,
        r.stats.left_suspended,
    )
}

#[test]
fn random_fork_trees_are_worker_count_invariant() {
    for seed in 0..10u64 {
        let src = gen_program(seed);
        let module = sir::lower(&minic::parse_program(&src).unwrap()).unwrap();
        // Small slice so even short programs pause and requeue often.
        let (base_trace, base_report) = traced_run(&module, steal_config(1, 16, 0), None);
        for workers in [2usize, 4, 8] {
            let (trace, report) = traced_run(&module, steal_config(workers, 16, 0), None);
            assert_eq!(
                trace, base_trace,
                "trace diverged at {workers} workers (program seed {seed})\n{src}"
            );
            assert_eq!(stats_key(&report), stats_key(&base_report), "seed {seed}");
            match (&base_report.outcome, &report.outcome) {
                (RunOutcome::Found(a), RunOutcome::Found(b)) => {
                    assert_eq!(a.fault, b.fault, "different winner at {workers} workers");
                    assert_eq!(a.inputs, b.inputs, "different model at {workers} workers");
                }
                (RunOutcome::Completed, RunOutcome::Completed) => {}
                (RunOutcome::Exhausted(a), RunOutcome::Exhausted(b)) => assert_eq!(a, b),
                (a, b) => panic!("outcome kind diverged: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn attribution_traces_are_worker_count_invariant() {
    let attr_config = |workers: usize| {
        let mut c = steal_config(workers, 16, 0);
        c.attribution = true;
        c.provenance = true;
        c.candidate_rank = 2;
        c
    };
    let mut saw_query = false;
    for seed in 0..6u64 {
        let src = gen_program(seed);
        let module = sir::lower(&minic::parse_program(&src).unwrap()).unwrap();
        let (base_trace, _) = traced_run(&module, attr_config(1), None);
        // Attribution bills every executed step, so the counters are
        // present for any program; query events need a solver call.
        assert!(
            base_trace.contains("\"name\":\"attr."),
            "seed {seed}: attr.* counters expected\n{src}"
        );
        saw_query |= base_trace.contains("\"k\":\"query\"");
        for workers in [2usize, 4, 8] {
            let (trace, _) = traced_run(&module, attr_config(workers), None);
            assert_eq!(
                trace, base_trace,
                "attr/query trace diverged at {workers} workers (seed {seed})\n{src}"
            );
        }
    }
    assert!(saw_query, "no generated program issued a solver query");
}

#[test]
fn steal_seed_never_changes_the_trace() {
    let src = gen_program(3);
    let module = sir::lower(&minic::parse_program(&src).unwrap()).unwrap();
    let (base_trace, _) = traced_run(&module, steal_config(4, 16, 0), None);
    for seed in [1u64, 7, 0xdead_beef] {
        let (trace, _) = traced_run(&module, steal_config(4, 16, seed), None);
        assert_eq!(trace, base_trace, "steal seed {seed} changed the trace");
    }
}

#[test]
fn steal_mode_matches_legacy_outcome_kind_and_exhaustive_work() {
    for seed in 0..8u64 {
        let src = gen_program(seed);
        let module = sir::lower(&minic::parse_program(&src).unwrap()).unwrap();
        let legacy = Engine::new(&module, EngineConfig::default()).run();
        let steal = Engine::new(&module, steal_config(4, 64, 0)).run();
        assert_eq!(
            legacy.outcome.is_found(),
            steal.outcome.is_found(),
            "fault-reachability diverged (seed {seed})\n{src}"
        );
        if matches!(legacy.outcome, RunOutcome::Completed) {
            // Exhaustive exploration does the same total work in any
            // order.
            assert_eq!(legacy.stats.exec.steps, steal.stats.exec.steps);
            assert_eq!(legacy.stats.exec.forks, steal.stats.exec.forks);
            assert_eq!(legacy.stats.paths_completed, steal.stats.paths_completed);
        }
    }
}

/// Suspends every state at its second function event; steal mode must
/// park these, finish phase 1, and resume them deterministically.
#[derive(Clone, Copy)]
struct SuspendSecondHop;

impl EventHook for SuspendSecondHop {
    fn on_event(
        &mut self,
        _ev: &EventCtx<'_>,
        meta: &mut StateMeta,
        _ctx: &mut solver::TermCtx,
    ) -> GuidanceResult {
        meta.hops += 1;
        GuidanceResult {
            constraints: Vec::new(),
            suspend: meta.hops >= 2,
            matched: None,
        }
    }

    fn clone_hook<'a>(&'a self) -> Option<Box<dyn EventHook + Send + 'a>> {
        Some(Box::new(*self))
    }
}

#[test]
fn suspension_and_resume_phases_are_worker_count_invariant() {
    let src = r#"
        fn step_a(v: int) -> int { return v + 1; }
        fn step_b(v: int) -> int { return v * 2; }
        fn boom(v: int) { assert(v < 50); }
        fn main() {
            let v: int = input_int("v");
            let w: int = step_a(step_b(v));
            boom(w);
        }
    "#;
    let module = sir::lower(&minic::parse_program(src).unwrap()).unwrap();
    let run = |workers: usize| {
        traced_run(
            &module,
            steal_config(workers, 8, 0),
            Some(Box::new(SuspendSecondHop)),
        )
    };
    let (base_trace, base_report) = run(1);
    assert!(
        base_report.outcome.is_found(),
        "fault found despite hostile suspension"
    );
    assert!(base_report.stats.exec.suspended > 0);
    for workers in [2usize, 4] {
        let (trace, report) = run(workers);
        assert_eq!(trace, base_trace, "resume phase diverged at {workers}");
        assert_eq!(stats_key(&report), stats_key(&base_report));
    }
}

#[test]
fn deterministic_budget_trips_identically_at_any_worker_count() {
    let src = gen_program(5);
    let module = sir::lower(&minic::parse_program(&src).unwrap()).unwrap();
    let mut config = steal_config(1, 16, 0);
    config.budget = Budget {
        max_steps: Some(40),
        ..Budget::default()
    };
    let (base_trace, base_report) = traced_run(&module, config, None);
    assert!(
        matches!(
            base_report.outcome,
            RunOutcome::Exhausted(symex::ExhaustionReason::Budget)
        ) || base_report.outcome.is_found(),
        "unexpected outcome {:?}",
        base_report.outcome
    );
    for workers in [2usize, 4, 8] {
        let mut c = steal_config(workers, 16, 0);
        c.budget = Budget {
            max_steps: Some(40),
            ..Budget::default()
        };
        let (trace, report) = traced_run(&module, c, None);
        assert_eq!(trace, base_trace, "budget trip diverged at {workers}");
        assert_eq!(stats_key(&report), stats_key(&base_report));
    }
}
