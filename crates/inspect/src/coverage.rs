//! `statsym-inspect coverage`: per-candidate-path node coverage maps
//! from the `candidate.node` events a `--lineage` run records.
//!
//! Each guided attempt walks one ranked candidate path; every time the
//! guidance hook matches a node of that path it emits a
//! `candidate.node` event with the node index, the predicates it
//! conjoined, and whether injection succeeded. Folding those events per
//! attempt gives the coverage map: which nodes of the statistical
//! prediction the symbolic executor actually reached, which had their
//! predicates conjoined, which conflicted, and which were never
//! reached at all. The `--min <pct>` gate turns the aggregate into a CI
//! check (exit 1 below the floor).

use statsym_telemetry::{names, FieldValue, TraceEvent};

/// Classification of one candidate-path node within one attempt, in
/// increasing order of engagement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeStatus {
    /// No state ever matched the node's location.
    NeverReached,
    /// Matched, but every injection died (`conflict` suspensions or
    /// `kill`s) — the statistical predicate fought the path condition.
    Conflicted,
    /// Matched with no predicates to inject.
    Reached,
    /// Matched and at least one predicate set was conjoined cleanly.
    Conjoined,
}

impl NodeStatus {
    /// One-character cell for the per-attempt map line.
    pub fn cell(self) -> char {
        match self {
            NodeStatus::NeverReached => '.',
            NodeStatus::Conflicted => '!',
            NodeStatus::Reached => '+',
            NodeStatus::Conjoined => '#',
        }
    }
}

/// The reconstructed coverage of one candidate attempt.
#[derive(Debug, Clone)]
pub struct AttemptCoverage {
    /// Candidate rank (the `index` field of `candidate.result`), or the
    /// attempt's position in the trace when the result is missing.
    pub rank: u64,
    /// Whether this attempt verified the fault.
    pub found: bool,
    /// Per-node statuses, indexed by candidate-path node.
    pub nodes: Vec<NodeStatus>,
}

impl AttemptCoverage {
    /// Nodes engaged at all (everything but `NeverReached`).
    pub fn covered(&self) -> usize {
        self.nodes
            .iter()
            .filter(|s| **s != NodeStatus::NeverReached)
            .count()
    }
}

fn field<'e>(fields: &'e [(String, FieldValue)], key: &str) -> Option<&'e FieldValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Folds `candidate.attempt` spans, their `candidate.node` events, and
/// the paired `candidate.result` events into per-attempt coverage.
/// Overshoot attempts (renamed under `portfolio.overshoot.`) are
/// excluded, matching the sequential-equivalent accounting everywhere
/// else.
pub fn attempt_coverage(events: &[TraceEvent]) -> Vec<AttemptCoverage> {
    // Open attempt span ids; node events outside any attempt are
    // ignored. Portfolio merges keep each worker's span contiguous, so
    // a stack suffices.
    let mut open: Vec<u64> = Vec::new();
    let mut out: Vec<AttemptCoverage> = Vec::new();
    // Statuses collected for the innermost open attempt.
    let mut current: Vec<NodeStatus> = Vec::new();
    // Attempts closed but not yet matched to their result event.
    let mut unmatched: Vec<usize> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::SpanOpen { id, name, .. } if name == names::CANDIDATE_ATTEMPT => {
                open.push(*id);
                current.clear();
            }
            TraceEvent::SpanClose { id, .. } if open.last() == Some(id) => {
                open.pop();
                unmatched.push(out.len());
                out.push(AttemptCoverage {
                    rank: out.len() as u64,
                    found: false,
                    nodes: std::mem::take(&mut current),
                });
            }
            TraceEvent::Event { name, fields, .. }
                if name == names::CANDIDATE_NODE && !open.is_empty() =>
            {
                let Some(node) = field(fields, "node").and_then(FieldValue::as_u64) else {
                    continue;
                };
                let node = node as usize;
                if current.len() <= node {
                    current.resize(node + 1, NodeStatus::NeverReached);
                }
                let conj = field(fields, "conj")
                    .and_then(FieldValue::as_u64)
                    .unwrap_or(0);
                let status = match field(fields, "outcome").and_then(FieldValue::as_str) {
                    Some("ok") if conj > 0 => NodeStatus::Conjoined,
                    Some("ok") => NodeStatus::Reached,
                    _ => NodeStatus::Conflicted,
                };
                current[node] = current[node].max(status);
            }
            TraceEvent::Event { name, fields, .. } if name == names::CANDIDATE_RESULT => {
                if let Some(at) = unmatched.pop() {
                    let a = &mut out[at];
                    if let Some(rank) = field(fields, "index").and_then(FieldValue::as_u64) {
                        a.rank = rank;
                    }
                    a.found = field(fields, "found").and_then(FieldValue::as_str) == Some("true");
                    if let Some(len) = field(fields, "path_len").and_then(FieldValue::as_u64) {
                        if a.nodes.len() < len as usize {
                            a.nodes.resize(len as usize, NodeStatus::NeverReached);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Aggregate covered / total node counts over all attempts.
pub fn totals(attempts: &[AttemptCoverage]) -> (usize, usize) {
    let covered = attempts.iter().map(AttemptCoverage::covered).sum();
    let total = attempts.iter().map(|a| a.nodes.len()).sum();
    (covered, total)
}

/// Renders the coverage maps. `min_pct` (the `--min` gate) is echoed in
/// the verdict line; [`gate`] decides the exit code.
pub fn coverage(events: &[TraceEvent], min_pct: Option<f64>) -> String {
    let attempts = attempt_coverage(events);
    if attempts.is_empty() {
        return "no candidate attempts in trace\n".to_string();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "candidate-path node coverage, {} attempt(s)   \
         (# conjoined, + reached, ! conflicted, . never reached)\n\n",
        attempts.len()
    ));
    for a in &attempts {
        let map: String = a.nodes.iter().map(|s| s.cell()).collect();
        out.push_str(&format!(
            "  rank {:<3} {:>2}/{:<2} nodes {} [{}]\n",
            a.rank,
            a.covered(),
            a.nodes.len(),
            if a.found { "found " } else { "missed" },
            map,
        ));
    }
    let (covered, total) = totals(&attempts);
    let pct = percent(covered, total);
    out.push_str(&format!(
        "\n  overall: {covered}/{total} candidate-path nodes engaged ({pct:.1}%)\n"
    ));
    if let Some(min) = min_pct {
        out.push_str(&format!(
            "  gate: {} (minimum {min:.1}%)\n",
            if pct >= min { "pass" } else { "FAIL" },
        ));
    }
    out
}

/// Whether the trace passes the `--min` coverage gate.
pub fn gate(events: &[TraceEvent], min_pct: f64) -> bool {
    let (covered, total) = totals(&attempt_coverage(events));
    percent(covered, total) >= min_pct
}

fn percent(covered: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::{Clock, MemRecorder, Recorder};

    fn node_event(rec: &dyn Recorder, node: u64, conj: u64, outcome: &str) {
        rec.event(
            names::CANDIDATE_NODE,
            &[
                ("node", FieldValue::from(node)),
                ("loc", FieldValue::from("f():enter")),
                ("conj", FieldValue::from(conj)),
                ("outcome", FieldValue::from(outcome)),
            ],
        );
    }

    fn result_event(rec: &dyn Recorder, index: u64, path_len: u64, found: bool) {
        rec.event(
            names::CANDIDATE_RESULT,
            &[
                ("index", FieldValue::from(index)),
                ("path_len", FieldValue::from(path_len)),
                ("found", FieldValue::from(found)),
            ],
        );
    }

    #[test]
    fn classifies_nodes_and_pads_to_path_len() {
        let rec = MemRecorder::new(Clock::steps());
        let sp = rec.span_open(names::CANDIDATE_ATTEMPT);
        node_event(&rec, 0, 0, "ok");
        node_event(&rec, 1, 2, "ok");
        node_event(&rec, 2, 1, "conflict");
        node_event(&rec, 2, 1, "ok"); // a later state gets through
        rec.span_close(sp);
        result_event(&rec, 3, 6, true);
        let events = rec.finish();

        let attempts = attempt_coverage(&events);
        assert_eq!(attempts.len(), 1);
        let a = &attempts[0];
        assert_eq!(a.rank, 3);
        assert!(a.found);
        assert_eq!(
            a.nodes,
            vec![
                NodeStatus::Reached,
                NodeStatus::Conjoined,
                NodeStatus::Conjoined,
                NodeStatus::NeverReached,
                NodeStatus::NeverReached,
                NodeStatus::NeverReached,
            ]
        );
        let text = coverage(&events, Some(40.0));
        assert!(text.contains("rank 3"), "{text}");
        assert!(text.contains("[+##...]"), "{text}");
        assert!(
            text.contains("3/6 candidate-path nodes engaged (50.0%)"),
            "{text}"
        );
        assert!(text.contains("gate: pass"), "{text}");
        assert!(gate(&events, 40.0));
        assert!(!gate(&events, 60.0));
    }

    #[test]
    fn conflict_only_node_stays_conflicted() {
        let rec = MemRecorder::new(Clock::steps());
        let sp = rec.span_open(names::CANDIDATE_ATTEMPT);
        node_event(&rec, 0, 1, "conflict");
        node_event(&rec, 0, 1, "kill");
        rec.span_close(sp);
        result_event(&rec, 0, 1, false);
        let attempts = attempt_coverage(&rec.finish());
        assert_eq!(attempts[0].nodes, vec![NodeStatus::Conflicted]);
        // Conflicted still counts as engaged: the executor got there.
        assert_eq!(attempts[0].covered(), 1);
    }

    #[test]
    fn empty_trace() {
        assert_eq!(coverage(&[], None), "no candidate attempts in trace\n");
    }
}
