//! Trace analytics for StatSym JSONL traces (`statsym-inspect`).
//!
//! Views over a recorded run:
//!
//! * [`report`](mod@crate) — the Table II/III-style run report
//!   ([`statsym_telemetry::TraceSummary::render`]).
//! * [`diff`] — per-phase / per-counter deltas between two traces (or
//!   two numeric JSON reports such as `BENCH_portfolio.json`), with a
//!   configurable regression threshold. The CI perf gate.
//! * [`critical`] — which candidate attempt bounded the wall time of a
//!   portfolio run, and how much of the total work was wasted on
//!   attempts that did not produce the winning path.
//! * [`top`] — the solver hot-spot profile from the per-callsite
//!   `solver.site.*` counters and query-latency histograms.
//! * [`hotspots`] — the per-source-line cost table from `attr.*`
//!   attribution counters (`--attribution` traces), with flame-
//!   compatible and cmp-gateable JSON output.
//! * [`explain`] — one ranked candidate end to end: why it was ranked,
//!   what its attempt cost, and (with `--provenance`) where its solver
//!   queries went and where it died or won.
//! * [`calib`] — the predicted-vs-actual ranking-calibration table from
//!   `calib.candidate` records, with a `--min-corr` CI gate on the
//!   rank-vs-cost correlation.
//!
//! Over `--lineage` traces ([`forest`] rebuilds the exploration tree
//! from the `state` event stream):
//!
//! * [`tree`] — the exploration forest with suspend-cause annotations
//!   and per-subtree work rollups.
//! * [`coverage`] — candidate-path node coverage maps (reached /
//!   predicate-conjoined / conflicted / never-reached per rank), with a
//!   `--min` CI gate.
//! * [`flame`] — collapsed-stack flamegraph export of solver effort
//!   keyed by fork lineage.
//! * [`watch`] — a live dashboard that tails a growing trace file.
//! * [`live`] — the same dashboard fed by `--stream` telemetry sockets
//!   (any number of concurrent runs), with `--record` teeing each
//!   stream back to a byte-identical trace file.
//!
//! Over the persistent run-history archive
//! ([`statsym_telemetry::manifest`]) and the metrics exposition
//! endpoint:
//!
//! * [`history`] — list/filter the archive, and `history add` for
//!   appending records without running a workload (the CI synthetic-
//!   regression injector).
//! * [`trend`] — windowed median/MAD drift analysis of the last run vs
//!   its predecessors, with a `--gate` CI exit code; `regress` isolates
//!   the first archive run that broke a metric.
//! * [`scrape`] — one-shot client for a run's `--expose` Prometheus
//!   text-format endpoint.
//!
//! Traces are loaded with the *strict* parser: unbalanced or duplicate
//! spans are rejected with line-numbered errors rather than silently
//! skewing the analytics. `watch` (and `report --allow-truncated`) use
//! the truncation-tolerant variant, which additionally accepts exactly
//! one half-written trailing line.

pub mod calib;
pub mod coverage;
pub mod critical;
pub mod diff;
pub mod explain;
pub mod flame;
pub mod forest;
pub mod history;
pub mod hotspots;
pub mod live;
pub mod numjson;
pub mod scrape;
pub mod tail;
pub mod top;
pub mod tree;
pub mod trend;
pub mod watch;

use statsym_telemetry::{parse_trace_strict, parse_trace_truncated, TraceEvent, TraceSummary};

/// Reads and strictly parses a JSONL trace, prefixing errors with the
/// file path (`path:line: reason`).
///
/// # Errors
///
/// Returns a rendered error for unreadable files and for malformed or
/// structurally invalid (unbalanced / duplicate-span) traces.
pub fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read trace: {e}"))?;
    parse_trace_strict(&text).map_err(|e| format!("{path}:{}: {}", e.line, e.reason))
}

/// [`load_trace`] with the truncation-tolerant parser: accepts exactly
/// one half-written trailing line (and spans/states still open), as a
/// live or crash-cut trace has. Returns the events and whether a
/// partial tail line was dropped.
///
/// # Errors
///
/// Returns a rendered error for unreadable files and for interior
/// corruption.
pub fn load_trace_truncated(path: &str) -> Result<(Vec<TraceEvent>, bool), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read trace: {e}"))?;
    parse_trace_truncated(&text).map_err(|e| format!("{path}:{}: {}", e.line, e.reason))
}

/// Renders the run report for the trace at `path`. `allow_truncated`
/// switches to the tolerant parser (the `--allow-truncated` flag), for
/// reporting on traces cut short by a crash or still being written.
///
/// # Errors
///
/// Propagates [`load_trace`] / [`load_trace_truncated`] failures.
pub fn report(path: &str, allow_truncated: bool) -> Result<String, String> {
    let events = if allow_truncated {
        load_trace_truncated(path)?.0
    } else {
        load_trace(path)?
    };
    Ok(TraceSummary::from_events(&events).render())
}

/// The machine-readable run report: one JSON object with stable key
/// order ([`statsym_telemetry::TraceSummary::render_json`]), newline
/// terminated. Same parser contract as [`report`].
///
/// # Errors
///
/// Propagates [`load_trace`] / [`load_trace_truncated`] failures.
pub fn report_json(path: &str, allow_truncated: bool) -> Result<String, String> {
    let events = if allow_truncated {
        load_trace_truncated(path)?.0
    } else {
        load_trace(path)?
    };
    let mut out = TraceSummary::from_events(&events).render_json();
    out.push('\n');
    Ok(out)
}
