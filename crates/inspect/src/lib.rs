//! Trace analytics for StatSym JSONL traces (`statsym-inspect`).
//!
//! Four views over a recorded run:
//!
//! * [`report`](mod@crate) — the Table II/III-style run report
//!   ([`statsym_telemetry::TraceSummary::render`]).
//! * [`diff`] — per-phase / per-counter deltas between two traces (or
//!   two numeric JSON reports such as `BENCH_portfolio.json`), with a
//!   configurable regression threshold. The CI perf gate.
//! * [`critical`] — which candidate attempt bounded the wall time of a
//!   portfolio run, and how much of the total work was wasted on
//!   attempts that did not produce the winning path.
//! * [`top`] — the solver hot-spot profile from the per-callsite
//!   `solver.site.*` counters and query-latency histograms.
//!
//! Traces are loaded with the *strict* parser: unbalanced or duplicate
//! spans are rejected with line-numbered errors rather than silently
//! skewing the analytics.

pub mod critical;
pub mod diff;
pub mod numjson;
pub mod top;

use statsym_telemetry::{parse_trace_strict, TraceEvent, TraceSummary};

/// Reads and strictly parses a JSONL trace, prefixing errors with the
/// file path (`path:line: reason`).
///
/// # Errors
///
/// Returns a rendered error for unreadable files and for malformed or
/// structurally invalid (unbalanced / duplicate-span) traces.
pub fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read trace: {e}"))?;
    parse_trace_strict(&text).map_err(|e| format!("{path}:{}: {}", e.line, e.reason))
}

/// Renders the run report for the trace at `path`.
///
/// # Errors
///
/// Propagates [`load_trace`] failures.
pub fn report(path: &str) -> Result<String, String> {
    let events = load_trace(path)?;
    Ok(TraceSummary::from_events(&events).render())
}
