//! `statsym-inspect history`: the run-history archive viewer and
//! writer.
//!
//! `history <archive>` lists the manifests of a history archive (see
//! [`statsym_telemetry::manifest`]) in append order, with `--source` /
//! `--run` filters and a `--limit` tail window. `history add` appends
//! records without running a workload: either folded from a trace file
//! (`--from-trace`) or cloned from the archive's own last record, with
//! `--inflate metric=pct` perturbations — which is how CI injects a
//! synthetic regression to prove the `trend --gate` job can fail.

use statsym_telemetry::manifest::{self, ManifestMeta, RunManifest};

/// Row filters for [`list`].
#[derive(Debug, Default)]
pub struct HistoryFilter {
    /// Keep only records with this `source`.
    pub source: Option<String>,
    /// Keep only records with this `run` name.
    pub run: Option<String>,
    /// Keep only the last `n` matching records.
    pub limit: Option<usize>,
}

/// Applies `f` to `manifests`, preserving each record's 1-based archive
/// index.
pub fn filter<'a>(
    manifests: &'a [RunManifest],
    f: &HistoryFilter,
) -> Vec<(usize, &'a RunManifest)> {
    let mut rows: Vec<(usize, &RunManifest)> = manifests
        .iter()
        .enumerate()
        .map(|(i, m)| (i + 1, m))
        .filter(|(_, m)| f.source.as_ref().is_none_or(|s| &m.source == s))
        .filter(|(_, m)| f.run.as_ref().is_none_or(|r| &m.run == r))
        .collect();
    if let Some(n) = f.limit {
        let skip = rows.len().saturating_sub(n);
        rows.drain(..skip);
    }
    rows
}

/// Renders the archive listing, one row per matching record.
pub fn list(manifests: &[RunManifest], f: &HistoryFilter) -> String {
    let rows = filter(manifests, f);
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>4}  {:<16} {:<8} {:<14} {:<12} {:<8} {:>6} {:>10}\n",
        "#", "id", "source", "run", "git", "budget", "winner", "ticks"
    ));
    for (idx, m) in &rows {
        out.push_str(&format!(
            "  {:>4}  {:<16} {:<8} {:<14} {:<12} {:<8} {:>6} {:>10}\n",
            idx,
            m.id(),
            m.source,
            m.run,
            m.git,
            m.budget,
            m.winner_rank,
            m.ticks,
        ));
    }
    out.push_str(&format!(
        "\n{} record(s) shown of {} in archive\n",
        rows.len(),
        manifests.len()
    ));
    out
}

/// Options for [`add`].
#[derive(Debug, Default)]
pub struct AddOpts {
    /// Fold the record from this canonical JSONL trace instead of
    /// cloning the archive's last record.
    pub from_trace: Option<String>,
    /// Override the record's `source`.
    pub source: Option<String>,
    /// Override the record's `run` name.
    pub run: Option<String>,
    /// Override the record's `seed`.
    pub seed: Option<u64>,
    /// Override the record's config fingerprint.
    pub config: Option<String>,
    /// `(metric, percent)` perturbations: each named counter (or
    /// `ticks`) grows by `percent`% (negative shrinks). The synthetic-
    /// regression injector for the CI gate self-test.
    pub inflate: Vec<(String, i64)>,
    /// Append the record this many times (archive seeding).
    pub repeat: usize,
}

/// Parses one `--inflate metric=pct` argument.
///
/// # Errors
///
/// Returns a usage message for a missing `=`, a non-numeric percentage,
/// or a shrink below −100%.
pub fn parse_inflate(s: &str) -> Result<(String, i64), String> {
    let (metric, pct) = s
        .split_once('=')
        .ok_or_else(|| format!("invalid --inflate `{s}`; expected metric=pct"))?;
    if metric.is_empty() {
        return Err(format!("invalid --inflate `{s}`; empty metric name"));
    }
    match pct.parse::<i64>() {
        Ok(p) if p > -100 => Ok((metric.to_string(), p)),
        Ok(_) => Err(format!(
            "invalid --inflate `{s}`; cannot shrink below -100%"
        )),
        Err(_) => Err(format!(
            "invalid --inflate `{s}`; percentage must be an integer"
        )),
    }
}

/// Grows `v` by `pct` percent (integer math, saturating at zero).
fn inflate_value(v: u64, pct: i64) -> u64 {
    let delta = (v as i128) * (pct as i128) / 100;
    u64::try_from((v as i128) + delta).unwrap_or(0)
}

/// Builds the record `add` would append (everything except the archive
/// write — separated for tests).
///
/// # Errors
///
/// Returns a rendered error for an unreadable/malformed trace, an empty
/// archive when cloning, or an `--inflate` metric the record does not
/// carry (a typo would otherwise silently gate nothing).
pub fn synthesize(archive: &str, opts: &AddOpts) -> Result<RunManifest, String> {
    let mut m = match &opts.from_trace {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("{path}: cannot read trace: {e}"))?;
            let stem = std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| "run".to_string(), |s| s.to_string_lossy().into_owned());
            let meta = ManifestMeta {
                source: opts.source.clone().unwrap_or_else(|| "bench".to_string()),
                run: opts.run.clone().unwrap_or(stem),
                git: manifest::git_rev(),
                seed: opts.seed.unwrap_or(0),
                config: opts.config.clone().unwrap_or_default(),
            };
            RunManifest::from_trace(&text, &meta)
                .map_err(|e| format!("{path}:{}: {}", e.line, e.reason))?
        }
        None => {
            let history = manifest::load_history(archive)
                .map_err(|e| format!("{archive}:{}: {}", e.line, e.reason))?;
            let mut m = history
                .last()
                .cloned()
                .ok_or_else(|| format!("{archive}: archive is empty; nothing to clone"))?;
            if let Some(s) = &opts.source {
                m.source = s.clone();
            }
            if let Some(r) = &opts.run {
                m.run = r.clone();
            }
            if let Some(s) = opts.seed {
                m.seed = s;
            }
            if let Some(c) = &opts.config {
                m.config = c.clone();
            }
            m
        }
    };
    for (metric, pct) in &opts.inflate {
        if metric == "ticks" {
            m.ticks = inflate_value(m.ticks, *pct);
        } else if let Some(v) = m.counters.get_mut(metric) {
            *v = inflate_value(*v, *pct);
        } else {
            return Err(format!(
                "--inflate {metric}: record carries no such counter (have: {})",
                m.counters
                    .keys()
                    .take(8)
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    Ok(m)
}

/// Appends the synthesized record to `archive` `repeat` times and
/// returns the appended content addresses.
///
/// # Errors
///
/// Propagates [`synthesize`] failures and archive write errors.
pub fn add(archive: &str, opts: &AddOpts) -> Result<Vec<String>, String> {
    let m = synthesize(archive, opts)?;
    let n = opts.repeat.max(1);
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(
            manifest::append_manifest(archive, &m)
                .map_err(|e| format!("{archive}: cannot append manifest: {e}"))?,
        );
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(run: &str, source: &str, steps: u64) -> RunManifest {
        let mut m = RunManifest {
            source: source.to_string(),
            run: run.to_string(),
            git: "abc123def456".to_string(),
            seed: 7,
            config: "fp".to_string(),
            clock: "steps".to_string(),
            ticks: 100,
            winner_rank: 1,
            budget: "none".to_string(),
            trace: "0000000000000000".to_string(),
            ..RunManifest::default()
        };
        m.counters.insert("symex.steps".to_string(), steps);
        m
    }

    fn temp_archive(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("statsym-history-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn list_filters_by_source_run_and_limit() {
        let ms = vec![
            sample("grep", "bench", 10),
            sample("grep", "pipeline", 11),
            sample("sed", "bench", 12),
            sample("grep", "bench", 13),
        ];
        let all = list(&ms, &HistoryFilter::default());
        assert!(all.contains("4 record(s) shown of 4"), "{all}");

        let f = HistoryFilter {
            source: Some("bench".into()),
            run: Some("grep".into()),
            ..HistoryFilter::default()
        };
        let rows = filter(&ms, &f);
        assert_eq!(
            rows.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 4],
            "archive indices survive filtering"
        );

        let f = HistoryFilter {
            limit: Some(2),
            ..HistoryFilter::default()
        };
        let rows = filter(&ms, &f);
        assert_eq!(rows.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn inflate_parser_accepts_metric_eq_pct() {
        assert_eq!(
            parse_inflate("symex.steps=400").unwrap(),
            ("symex.steps".to_string(), 400)
        );
        assert_eq!(
            parse_inflate("ticks=-50").unwrap(),
            ("ticks".to_string(), -50)
        );
        assert!(parse_inflate("symex.steps").is_err());
        assert!(parse_inflate("=10").is_err());
        assert!(parse_inflate("x=ten").is_err());
        assert!(parse_inflate("x=-100").is_err());
    }

    #[test]
    fn add_clones_last_record_applies_inflation_and_repeats() {
        let archive = temp_archive("add");
        manifest::append_manifest(&archive, &sample("grep", "bench", 100)).unwrap();

        let opts = AddOpts {
            inflate: vec![("symex.steps".to_string(), 400)],
            repeat: 3,
            ..AddOpts::default()
        };
        let ids = add(&archive, &opts).expect("add");
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] == w[1]));

        let loaded = manifest::load_history(&archive).unwrap();
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded[0].counters["symex.steps"], 100);
        assert_eq!(loaded[3].counters["symex.steps"], 500, "+400%");
        let _ = std::fs::remove_dir_all(std::path::Path::new(&archive));
    }

    #[test]
    fn add_rejects_unknown_inflate_metric_and_empty_archive() {
        let archive = temp_archive("reject");
        let opts = AddOpts::default();
        assert!(
            add(&archive, &opts).is_err(),
            "empty archive: nothing to clone"
        );

        manifest::append_manifest(&archive, &sample("grep", "bench", 1)).unwrap();
        let opts = AddOpts {
            inflate: vec![("no.such.metric".to_string(), 10)],
            ..AddOpts::default()
        };
        let err = add(&archive, &opts).unwrap_err();
        assert!(err.contains("no such counter"), "{err}");
        let _ = std::fs::remove_dir_all(std::path::Path::new(&archive));
    }

    #[test]
    fn inflate_value_is_integer_exact() {
        assert_eq!(inflate_value(100, 400), 500);
        assert_eq!(inflate_value(100, -50), 50);
        assert_eq!(inflate_value(3, 10), 3, "sub-1% of small values truncates");
        assert_eq!(inflate_value(0, 500), 0);
    }
}
