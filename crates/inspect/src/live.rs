//! `statsym-inspect live`: the stream-fed dashboard.
//!
//! Listens on a TCP address (`host:port`) or a Unix socket (any address
//! containing `/`), accepts any number of concurrent run streams as
//! produced by a `StreamSink`, and renders the `watch` dashboard per
//! run — driven by the stream itself instead of file polling. Each
//! stream opens with a `hello` frame naming the run and closes with an
//! `end` frame (the authoritative done signal; no metrics-flush
//! heuristic needed).
//!
//! With `--record <dir>`, every trace line of a stream is teed verbatim
//! (frames stripped) into `<dir>/<run>.jsonl` — byte-identical to the
//! file a `FileRecorder` attached to the same run would have written.

use crate::tail::{Backoff, Screen};
use crate::watch::dashboard;
use statsym_telemetry::{StreamFrame, SummaryBuilder, TraceEvent, TRACE_VERSION};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

/// Options for [`live`].
#[derive(Debug, Default)]
pub struct LiveOpts {
    /// Tee each stream's trace lines into `<dir>/<run>.jsonl`.
    pub record: Option<String>,
    /// Exit after this many streams have ended (headless / CI mode).
    pub runs: Option<u64>,
    /// Suppress the dashboard (record/exit-code only).
    pub quiet: bool,
    /// Base render interval in milliseconds.
    pub interval_ms: u64,
    /// Append plain frames with no ANSI escapes (CI logs, pipes).
    pub no_color: bool,
}

/// A message from a connection reader thread to the render loop.
enum Msg {
    Connected(usize),
    Line(usize, String),
    Closed(usize),
}

/// Everything known about one connected run stream.
struct RunState {
    /// Name from the hello frame (connection ordinal until it arrives).
    name: String,
    /// Parsed trace events (frames excluded).
    events: Vec<TraceEvent>,
    /// Incremental summary (kept for `--runs` CI mode and future use;
    /// the dashboard itself renders from `events`).
    summary: SummaryBuilder,
    /// Drop count from the end frame, once seen.
    ended: Option<u64>,
    /// The connection hung up (with or without an end frame).
    closed: bool,
    /// Verbatim tee of the stream's trace lines.
    record: Option<std::io::BufWriter<std::fs::File>>,
}

impl RunState {
    fn new(ordinal: usize) -> RunState {
        RunState {
            name: format!("stream-{ordinal}"),
            events: Vec::new(),
            summary: SummaryBuilder::default(),
            ended: None,
            closed: false,
            record: None,
        }
    }
}

/// Replaces everything outside `[A-Za-z0-9._-]` so a hostile run name
/// cannot escape the record directory.
fn sanitize(run: &str) -> String {
    let cleaned: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.trim_matches(['.', '_']).is_empty() {
        "run".to_string()
    } else {
        cleaned
    }
}

/// Picks `<dir>/<run>.jsonl`, suffixing `-2`, `-3`, … on collision with
/// a path already claimed this session.
fn record_path(dir: &Path, run: &str, taken: &mut Vec<PathBuf>) -> PathBuf {
    let base = sanitize(run);
    let mut candidate = dir.join(format!("{base}.jsonl"));
    let mut n = 1;
    while taken.contains(&candidate) {
        n += 1;
        candidate = dir.join(format!("{base}-{n}.jsonl"));
    }
    taken.push(candidate.clone());
    candidate
}

/// Spawns a reader thread that forwards each line of `conn` to `tx`.
fn spawn_reader(conn: Box<dyn Read + Send>, id: usize, tx: Sender<Msg>) {
    std::thread::spawn(move || {
        let _ = tx.send(Msg::Connected(id));
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    let trimmed = line.strip_suffix('\n').unwrap_or(&line);
                    if tx.send(Msg::Line(id, trimmed.to_string())).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = tx.send(Msg::Closed(id));
    });
}

/// Binds `addr` and forwards every accepted connection's lines to the
/// returned channel. The accept thread runs for the process lifetime.
fn listen(addr: &str) -> Result<Receiver<Msg>, String> {
    let (tx, rx) = std::sync::mpsc::channel::<Msg>();
    if addr.contains('/') {
        #[cfg(unix)]
        {
            // A stale socket file from a previous run would make bind
            // fail with AddrInUse; remove it first.
            let _ = std::fs::remove_file(addr);
            let listener = std::os::unix::net::UnixListener::bind(addr)
                .map_err(|e| format!("{addr}: cannot bind unix socket: {e}"))?;
            std::thread::spawn(move || {
                for (id, conn) in listener.incoming().enumerate() {
                    match conn {
                        Ok(c) => spawn_reader(Box::new(c), id, tx.clone()),
                        Err(_) => break,
                    }
                }
            });
            return Ok(rx);
        }
        #[cfg(not(unix))]
        return Err(format!("{addr}: unix sockets unsupported on this platform"));
    }
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("{addr}: cannot bind tcp listener: {e}"))?;
    std::thread::spawn(move || {
        for (id, conn) in listener.incoming().enumerate() {
            match conn {
                Ok(c) => spawn_reader(Box::new(c), id, tx.clone()),
                Err(_) => break,
            }
        }
    });
    Ok(rx)
}

/// Renders the combined multi-run dashboard text.
fn render(order: &[usize], runs: &HashMap<usize, RunState>) -> String {
    let ended = order.iter().filter(|id| runs[id].ended.is_some()).count();
    let mut out = format!(
        "statsym-inspect live — {} stream(s), {} ended\n\n",
        order.len(),
        ended
    );
    for id in order {
        let run = &runs[id];
        let status = match (run.ended, run.closed) {
            (Some(0), _) => " (ended)".to_string(),
            (Some(d), _) => format!(" (ended, {d} dropped)"),
            (None, true) => " (connection lost)".to_string(),
            (None, false) => String::new(),
        };
        out.push_str(&format!("== run {}{status} ==\n", run.name));
        out.push_str(&dashboard(&run.events, false).text);
        out.push('\n');
    }
    if order.is_empty() {
        out.push_str("waiting for streams...\n");
    }
    out
}

/// Runs the live dashboard. Returns the process exit code: 0 when every
/// observed stream ended with an explicit end frame, 1 when a stream
/// hung up without one, 2 on setup errors.
pub fn live(addr: &str, opts: &LiveOpts) -> i32 {
    let record_dir = match &opts.record {
        Some(dir) => {
            let p = PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&p) {
                eprintln!("error: {dir}: cannot create record dir: {e}");
                return 2;
            }
            Some(p)
        }
        None => None,
    };
    let rx = match listen(addr) {
        Ok(rx) => rx,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    let mut runs: HashMap<usize, RunState> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    let mut taken: Vec<PathBuf> = Vec::new();
    let mut screen = if opts.no_color {
        Screen::plain()
    } else {
        Screen::new()
    };
    let mut backoff = Backoff::new(opts.interval_ms);
    let mut ended_total = 0u64;
    let mut lost_total = 0u64;
    let mut dirty = true;

    loop {
        // Drain everything pending, then render at most once.
        let mut got = 0usize;
        loop {
            let msg = if got == 0 {
                match rx.recv_timeout(backoff.current()) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => return 2,
                }
            } else {
                match rx.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            };
            got += 1;
            match msg {
                Msg::Connected(id) => {
                    runs.insert(id, RunState::new(id));
                    order.push(id);
                }
                Msg::Line(id, line) => {
                    let Some(run) = runs.get_mut(&id) else {
                        continue;
                    };
                    match StreamFrame::parse(&line) {
                        Some(StreamFrame::Hello { version, run: name }) => {
                            if version != TRACE_VERSION {
                                eprintln!(
                                    "warning: {name}: stream version {version}, expected {TRACE_VERSION}"
                                );
                            }
                            run.name = name;
                            if let Some(dir) = &record_dir {
                                let path = record_path(dir, &run.name, &mut taken);
                                match std::fs::File::create(&path) {
                                    Ok(f) => run.record = Some(std::io::BufWriter::new(f)),
                                    Err(e) => {
                                        eprintln!(
                                            "error: {}: cannot record stream: {e}",
                                            path.display()
                                        );
                                        return 2;
                                    }
                                }
                            }
                        }
                        Some(StreamFrame::End { dropped }) => {
                            run.ended = Some(dropped);
                            ended_total += 1;
                            if let Some(mut w) = run.record.take() {
                                let _ = w.flush();
                            }
                        }
                        None => {
                            // A trace line: tee verbatim, then aggregate.
                            if let Some(w) = run.record.as_mut() {
                                let _ = w.write_all(line.as_bytes());
                                let _ = w.write_all(b"\n");
                            }
                            if let Ok(ev) = TraceEvent::parse_line(&line) {
                                run.summary.push(&ev);
                                run.events.push(ev);
                            }
                        }
                    }
                }
                Msg::Closed(id) => {
                    if let Some(run) = runs.get_mut(&id) {
                        run.closed = true;
                        if run.ended.is_none() {
                            lost_total += 1;
                        }
                        if let Some(mut w) = run.record.take() {
                            let _ = w.flush();
                        }
                    }
                }
            }
        }

        if got > 0 {
            backoff.active();
            dirty = true;
        } else {
            backoff.idle();
        }
        if dirty && !opts.quiet {
            screen.draw(&render(&order, &runs));
        }
        dirty = false;

        // Exit once the requested number of runs ended, or — without
        // --runs — once every observed stream has finished.
        let target_met = match opts.runs {
            Some(n) => ended_total + lost_total >= n,
            None => {
                !order.is_empty()
                    && order
                        .iter()
                        .all(|id| runs[id].ended.is_some() || runs[id].closed)
            }
        };
        if target_met {
            if !opts.quiet {
                screen.draw(&render(&order, &runs));
            }
            return i32::from(lost_total > 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_names_are_sanitized_for_the_filesystem() {
        assert_eq!(sanitize("bench-01.trace"), "bench-01.trace");
        assert_eq!(sanitize("../../etc/passwd"), ".._.._etc_passwd");
        assert_eq!(sanitize(""), "run");
        assert_eq!(sanitize("..."), "run");
    }

    #[test]
    fn record_paths_get_collision_suffixes() {
        let dir = Path::new("/tmp/rec");
        let mut taken = Vec::new();
        assert_eq!(record_path(dir, "a", &mut taken), dir.join("a.jsonl"));
        assert_eq!(record_path(dir, "a", &mut taken), dir.join("a-2.jsonl"));
        assert_eq!(record_path(dir, "a", &mut taken), dir.join("a-3.jsonl"));
        assert_eq!(record_path(dir, "b", &mut taken), dir.join("b.jsonl"));
    }

    #[test]
    fn render_reports_waiting_then_per_run_sections() {
        let runs = HashMap::new();
        let text = render(&[], &runs);
        assert!(text.contains("waiting for streams"), "{text}");

        let mut runs = HashMap::new();
        let mut r = RunState::new(0);
        r.name = "demo".into();
        r.ended = Some(3);
        runs.insert(0usize, r);
        let text = render(&[0], &runs);
        assert!(text.contains("1 stream(s), 1 ended"), "{text}");
        assert!(text.contains("== run demo (ended, 3 dropped) =="), "{text}");
    }
}
