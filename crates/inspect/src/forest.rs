//! Reconstruction of the exploration forest from `state` lineage
//! events (the stream emitted under `--lineage`).
//!
//! The stream is a forest — one `root` per engine run (candidate
//! attempt), `fork` edges below it — and every event carries the work
//! (executor steps, solver search nodes, solver µs) done since the
//! previous lineage event. [`Forest::from_events`] folds the stream
//! back into per-node totals: a transition's delta is billed to the
//! state it names, a `fork`'s delta to the forking parent (the fork
//! site is the parent's frontier), and a `root`'s delta to the new root
//! (engine setup). `tree`, `flame`, and `watch` all render off this one
//! model.

use statsym_telemetry::{lineage_op, TraceEvent};
use std::collections::HashMap;

/// Work attributed to one state, in the units of the lineage deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Work {
    /// Executor instructions retired.
    pub steps: u64,
    /// Solver search-tree nodes visited.
    pub snodes: u64,
    /// Wall-clock µs inside traced solver queries (0 under the
    /// deterministic step clock).
    pub solver_us: u64,
}

impl Work {
    fn add(&mut self, steps: u64, snodes: u64, solver_us: u64) {
        self.steps += steps;
        self.snodes += snodes;
        self.solver_us += solver_us;
    }

    /// Component-wise sum.
    pub fn plus(self, other: Work) -> Work {
        Work {
            steps: self.steps + other.steps,
            snodes: self.snodes + other.snodes,
            solver_us: self.solver_us + other.solver_us,
        }
    }
}

/// One state in the reconstructed exploration tree.
#[derive(Debug, Clone)]
pub struct StateNode {
    /// Trace-global state id.
    pub id: u64,
    /// Parent state id (0 for roots).
    pub parent: u64,
    /// SIR location where the state was introduced.
    pub birth_loc: String,
    /// Location of the most recent event naming this state.
    pub last_loc: String,
    /// The most recent op naming this state (`root`/`fork` until a
    /// transition arrives). Determines [`StateNode::status`].
    pub last_op: String,
    /// Path depth at the last event.
    pub depth: u64,
    /// Hop divergence at the last event.
    pub hops: u64,
    /// Suspension counts by cause: `[tau, predicate, branch]`.
    pub suspends: [u64; 3],
    /// Times the state was resumed from the suspended pool.
    pub resumes: u64,
    /// Work billed directly to this state.
    pub own: Work,
    /// Child indices into [`Forest::nodes`], in birth order.
    pub children: Vec<usize>,
}

/// The coarse disposition of a state, derived from its last event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Schedulable when the stream ended (or the run is still going).
    Live,
    /// Parked in the suspended pool.
    Suspended,
    /// Terminal: `exit`, `fault`, `unconfirmed`, `kill`, or
    /// `budget_exceeded`.
    Terminal,
}

impl StateNode {
    /// The coarse disposition implied by the last op.
    pub fn status(&self) -> Status {
        match self.last_op.as_str() {
            lineage_op::EXIT
            | lineage_op::FAULT
            | lineage_op::UNCONFIRMED
            | lineage_op::KILL
            | lineage_op::BUDGET_EXCEEDED => Status::Terminal,
            op if op.starts_with("suspend.") => Status::Suspended,
            _ => Status::Live,
        }
    }
}

/// The exploration forest of a whole trace: one tree per engine run.
#[derive(Debug, Default)]
pub struct Forest {
    /// All states, in introduction order.
    pub nodes: Vec<StateNode>,
    /// Root indices, one per engine run, in trace order.
    pub roots: Vec<usize>,
}

impl Forest {
    /// Folds the `state` events of a parsed trace into a forest.
    /// Non-lineage events are ignored, so this accepts full traces.
    pub fn from_events(events: &[TraceEvent]) -> Forest {
        let mut forest = Forest::default();
        let mut index: HashMap<u64, usize> = HashMap::new();
        for ev in events {
            let TraceEvent::State {
                op,
                id,
                par,
                loc,
                hops,
                depth,
                steps,
                snodes,
                sus,
                ..
            } = ev
            else {
                continue;
            };
            if lineage_op::introduces(op) {
                let at = forest.nodes.len();
                forest.nodes.push(StateNode {
                    id: *id,
                    parent: *par,
                    birth_loc: loc.clone(),
                    last_loc: loc.clone(),
                    last_op: op.clone(),
                    depth: *depth,
                    hops: *hops,
                    suspends: [0; 3],
                    resumes: 0,
                    own: Work::default(),
                    children: Vec::new(),
                });
                index.insert(*id, at);
                match index.get(par).copied() {
                    Some(p) if op == lineage_op::FORK => {
                        forest.nodes[p].children.push(at);
                        // Fork work happened at the parent's frontier.
                        forest.nodes[p].own.add(*steps, *snodes, *sus);
                    }
                    _ => {
                        forest.roots.push(at);
                        forest.nodes[at].own.add(*steps, *snodes, *sus);
                    }
                }
            } else if let Some(&at) = index.get(id) {
                let n = &mut forest.nodes[at];
                n.last_op = op.clone();
                n.last_loc = loc.clone();
                n.depth = *depth;
                n.hops = *hops;
                n.own.add(*steps, *snodes, *sus);
                match op.as_str() {
                    lineage_op::SUSPEND_TAU => n.suspends[0] += 1,
                    lineage_op::SUSPEND_PREDICATE => n.suspends[1] += 1,
                    lineage_op::SUSPEND_BRANCH => n.suspends[2] += 1,
                    lineage_op::RESUME => n.resumes += 1,
                    _ => {}
                }
            }
        }
        forest
    }

    /// Per-node subtree work rollups (own + all descendants), indexed
    /// like [`Forest::nodes`]. Iterative so deep fork chains cannot
    /// overflow the stack.
    pub fn subtree_work(&self) -> Vec<Work> {
        let mut total: Vec<Work> = self.nodes.iter().map(|n| n.own).collect();
        // Children always have larger indices than their parent
        // (introduction order), so one reverse sweep folds leaves up.
        for at in (0..self.nodes.len()).rev() {
            for &c in &self.nodes[at].children {
                total[at] = total[at].plus(total[c]);
            }
        }
        total
    }

    /// Counts of final dispositions keyed by last op, plus live /
    /// suspended totals: `(by_op, live, suspended)`.
    pub fn disposition_counts(&self) -> (HashMap<&str, u64>, u64, u64) {
        let mut by_op: HashMap<&str, u64> = HashMap::new();
        let (mut live, mut suspended) = (0u64, 0u64);
        for n in &self.nodes {
            match n.status() {
                Status::Live => live += 1,
                Status::Suspended => suspended += 1,
                Status::Terminal => {
                    *by_op.entry(n.last_op.as_str()).or_default() += 1;
                }
            }
        }
        (by_op, live, suspended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(op: &str, id: u64, par: u64, steps: u64) -> TraceEvent {
        TraceEvent::State {
            t: 0,
            op: op.to_string(),
            id,
            par,
            loc: format!("f:b{id}"),
            hops: 0,
            depth: 0,
            steps,
            snodes: steps / 2,
            sus: 0,
        }
    }

    #[test]
    fn rebuilds_forest_and_bills_work() {
        let events = vec![
            state(lineage_op::ROOT, 1, 0, 5),
            state(lineage_op::FORK, 2, 1, 10), // billed to parent 1
            state(lineage_op::SUSPEND_TAU, 2, 0, 7),
            state(lineage_op::RESUME, 2, 0, 0),
            state(lineage_op::EXIT, 2, 0, 3),
            state(lineage_op::FAULT, 1, 0, 4),
            state(lineage_op::ROOT, 3, 0, 0), // second run
        ];
        let f = Forest::from_events(&events);
        assert_eq!(f.roots, vec![0, 2]);
        assert_eq!(f.nodes[0].own.steps, 5 + 10 + 4);
        assert_eq!(f.nodes[1].own.steps, 7 + 3);
        assert_eq!(f.nodes[1].suspends, [1, 0, 0]);
        assert_eq!(f.nodes[1].resumes, 1);
        assert_eq!(f.nodes[0].status(), Status::Terminal);
        assert_eq!(f.nodes[2].status(), Status::Live);
        let roll = f.subtree_work();
        assert_eq!(roll[0].steps, 19 + 10);
        assert_eq!(roll[1].steps, 10);
    }

    #[test]
    fn suspended_fork_child_counts_as_suspended() {
        let events = vec![
            state(lineage_op::ROOT, 1, 0, 0),
            state(lineage_op::FORK, 2, 1, 0),
            state(lineage_op::SUSPEND_BRANCH, 2, 0, 0),
        ];
        let f = Forest::from_events(&events);
        let (by_op, live, suspended) = f.disposition_counts();
        assert!(by_op.is_empty());
        assert_eq!((live, suspended), (1, 1));
        assert_eq!(f.nodes[1].suspends, [0, 0, 1]);
    }
}
