//! `statsym-inspect tree`: render the exploration tree of a
//! `--lineage` trace, one tree per engine run, with suspend-cause
//! annotations and per-subtree work rollups.

use crate::forest::{Forest, Status, Work};
use statsym_telemetry::TraceEvent;

/// Renders the exploration forest of a parsed trace.
pub fn tree(events: &[TraceEvent]) -> String {
    let forest = Forest::from_events(events);
    if forest.nodes.is_empty() {
        return "no lineage events in trace (record with --trace <path> --lineage)\n".to_string();
    }
    let subtree = forest.subtree_work();
    let mut out = String::new();
    let (by_op, live, suspended) = forest.disposition_counts();
    let mut ops: Vec<_> = by_op.iter().collect();
    ops.sort();
    out.push_str(&format!(
        "exploration forest: {} run(s), {} states ({} live, {} suspended",
        forest.roots.len(),
        forest.nodes.len(),
        live,
        suspended,
    ));
    for (op, n) in ops {
        out.push_str(&format!(", {n} {op}"));
    }
    out.push_str(")\n");
    for (run, &root) in forest.roots.iter().enumerate() {
        let w = subtree[root];
        out.push_str(&format!(
            "\nrun {} — {} steps, {} solver nodes{}\n",
            run + 1,
            w.steps,
            w.snodes,
            if w.solver_us > 0 {
                format!(", {}µs solver", w.solver_us)
            } else {
                String::new()
            },
        ));
        render_node(&forest, &subtree, root, "", true, 0, &mut out);
    }
    out
}

/// One line per state: id, birth location, disposition, guidance
/// annotations, own work, and the subtree rollup when it differs.
fn render_node(
    forest: &Forest,
    subtree: &[Work],
    at: usize,
    prefix: &str,
    last: bool,
    depth: usize,
    out: &mut String,
) {
    let n = &forest.nodes[at];
    let branch = if depth == 0 {
        ""
    } else if last {
        "└─ "
    } else {
        "├─ "
    };
    out.push_str(&format!("{prefix}{branch}#{} {}", n.id, n.birth_loc));
    out.push_str(&format!(" [{}", disposition(n)));
    // Where the state ended up, when informative ("exit" just means
    // the stack unwound — the op already says that).
    if n.status() != Status::Live && n.last_loc != n.birth_loc && n.last_loc != "exit" {
        out.push_str(&format!(" @ {}", n.last_loc));
    }
    out.push(']');
    let mut notes = Vec::new();
    for (count, cause) in n.suspends.iter().zip(["tau", "predicate", "branch"]) {
        if *count > 0 {
            notes.push(format!("sus:{cause}×{count}"));
        }
    }
    if n.resumes > 0 {
        notes.push(format!("resumed×{}", n.resumes));
    }
    if n.hops > 0 {
        notes.push(format!("hops={}", n.hops));
    }
    if !notes.is_empty() {
        out.push_str(&format!(" ({})", notes.join(", ")));
    }
    out.push_str(&format!(" {}", work_label(n.own)));
    if !n.children.is_empty() {
        out.push_str(&format!(" | subtree {}", work_label(subtree[at])));
    }
    out.push('\n');
    let child_prefix = if depth == 0 {
        String::new()
    } else {
        format!("{prefix}{}", if last { "   " } else { "│  " })
    };
    for (i, &c) in n.children.iter().enumerate() {
        let last_child = i + 1 == n.children.len();
        render_node(
            forest,
            subtree,
            c,
            &child_prefix,
            last_child,
            depth + 1,
            out,
        );
    }
}

fn disposition(n: &crate::forest::StateNode) -> &str {
    match n.status() {
        Status::Live => "live",
        Status::Suspended => &n.last_op,
        Status::Terminal => &n.last_op,
    }
}

fn work_label(w: Work) -> String {
    let mut s = format!("{}st/{}sn", w.steps, w.snodes);
    if w.solver_us > 0 {
        s.push_str(&format!("/{}µs", w.solver_us));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::lineage_op;

    fn state(op: &str, id: u64, par: u64, loc: &str, steps: u64) -> TraceEvent {
        TraceEvent::State {
            t: 0,
            op: op.to_string(),
            id,
            par,
            loc: loc.to_string(),
            hops: 0,
            depth: 0,
            steps,
            snodes: 0,
            sus: 0,
        }
    }

    #[test]
    fn renders_nested_tree_with_annotations() {
        let events = vec![
            state(lineage_op::ROOT, 1, 0, "main:b0", 2),
            state(lineage_op::FORK, 2, 1, "main:b3", 5),
            state(lineage_op::SUSPEND_TAU, 2, 0, "g:b1", 1),
            state(lineage_op::RESUME, 2, 0, "g:b1", 0),
            state(lineage_op::EXIT, 2, 0, "exit", 3),
            state(lineage_op::FORK, 3, 1, "main:b3", 0),
            state(lineage_op::FAULT, 3, 0, "vul:b2", 4),
            state(lineage_op::EXIT, 1, 0, "exit", 1),
        ];
        let text = tree(&events);
        assert!(text.contains("1 run(s), 3 states"), "{text}");
        assert!(text.contains("#1 main:b0 [exit]"), "{text}");
        assert!(
            text.contains("├─ #2 main:b3 [exit] (sus:tau×1, resumed×1) 4st/0sn"),
            "{text}"
        );
        assert!(text.contains("└─ #3 main:b3 [fault @ vul:b2]"), "{text}");
        // Root own work: 2 (root) + 5 + 0 (both forks) + 1 (exit) = 8;
        // subtree adds the children's 4 + 4.
        assert!(text.contains("8st/0sn | subtree 16st/0sn"), "{text}");
    }

    #[test]
    fn no_lineage_message() {
        assert!(tree(&[]).contains("no lineage events"));
    }
}
