//! `statsym-inspect` — trace analytics over StatSym JSONL traces.
//!
//! ```text
//! statsym-inspect report <trace.jsonl> [--format text|json] [--allow-truncated]
//! statsym-inspect diff <old> <new> [--threshold <pct>%] [--ignore <prefix>]... [--min-delta <n>]
//! statsym-inspect critical-path <trace.jsonl>
//! statsym-inspect top <trace.jsonl> [--limit <n>]
//! statsym-inspect tree <trace.jsonl> [--allow-truncated]
//! statsym-inspect coverage <trace.jsonl> [--min <pct>]
//! statsym-inspect flame <trace.jsonl> [--metric solver-nodes|solver-us|steps] [--allow-truncated]
//! statsym-inspect hotspots <trace.jsonl> [--metric <dim>] [--top <n>] [--min-pct <pct>] [--format text|json|flame]
//! statsym-inspect explain <trace.jsonl> <rank>
//! statsym-inspect calib <trace.jsonl> [--format text|json] [--min-corr <milli>]
//! statsym-inspect watch <trace.jsonl> [--interval <ms>] [--once] [--allow-truncated] [--no-color]
//! statsym-inspect live <addr> [--record <dir>] [--runs <n>] [--quiet] [--interval <ms>] [--no-color]
//! statsym-inspect history <archive> [--source <s>] [--run <r>] [--limit <n>]
//! statsym-inspect history add <archive> [--from-trace <t>] [--inflate <metric=pct>]... [--repeat <n>] ...
//! statsym-inspect trend <archive> [--window <n>] [--sigma <z>] [--min-delta <n>] [--metric <prefix>]... [--gate]
//! statsym-inspect regress <archive> <metric> [--window <n>] [--sigma <z>] [--min-delta <n>]
//! statsym-inspect scrape <addr>
//! ```
//!
//! Exit codes: 0 success (and no regressions), 1 `diff` found at least
//! one regression, `trend --gate` found a windowed regression,
//! `coverage` fell below `--min`, `calib` fell below `--min-corr`, or
//! `explain` was asked about a rank the trace does not carry, 2 usage
//! or parse error.

use statsym_inspect::diff::{diff_files, parse_threshold, DiffConfig};
use statsym_inspect::{
    calib, coverage, critical, explain, flame, history, hotspots, live, load_trace,
    load_trace_truncated, report, report_json, scrape, top, tree, trend, watch,
};
use statsym_telemetry::manifest;

const USAGE: &str = "\
usage: statsym-inspect <command> [args]

commands:
  report <trace.jsonl> [--format text|json] [--allow-truncated]
      Render the run report (phases, counters, gauges, histograms).
      --format json emits one machine-readable JSON object with stable
      key order. --allow-truncated accepts a trace cut short mid-line.
  diff <old> <new> [--threshold <pct>%] [--ignore <prefix>]... [--min-delta <n>]
      Compare two traces (or two numeric JSON reports). Exits 1 when a
      metric grew past the threshold (default 10%).
  critical-path <trace.jsonl>
      Show which candidate attempt bounded the run and the wasted-work
      ratio of a portfolio execution.
  top <trace.jsonl> [--limit <n>]
      Rank solver callsites by search nodes (per-site profile).
  tree <trace.jsonl> [--allow-truncated]
      Render the exploration tree of a --lineage trace: fork structure,
      suspend causes, per-subtree solver rollups. --allow-truncated
      accepts a trace cut short mid-line (live or crash-cut runs).
  coverage <trace.jsonl> [--min <pct>]
      Candidate-path node coverage per rank (reached / conjoined /
      conflicted / never reached). Exits 1 below the --min floor.
  flame <trace.jsonl> [--metric solver-nodes|solver-us|steps] [--allow-truncated]
      Collapsed-stack flamegraph of solver effort keyed by fork
      lineage (inferno / speedscope / flamegraph.pl compatible).
      --allow-truncated accepts a trace cut short mid-line.
  hotspots <trace.jsonl> [--metric <dim>] [--top <n>] [--min-pct <pct>] [--format text|json|flame]
      Per-source-line cost table from an --attribution trace: steps,
      forks, suspensions, solver queries/nodes/µs billed to the MiniC
      line that incurred them. --metric picks the ranking dimension
      (steps, forks, suspends, queries, nodes, us); --min-pct drops
      lines below a share floor; --format flame emits collapsed
      stacks, --format json a stable cmp-gateable object.
  explain <trace.jsonl> <rank>
      One ranked candidate end to end: predicted score vs actual cost,
      its solver queries by callsite and source location, and the last
      query — where the attempt died or won. Exits 1 when the trace
      has no record for that rank.
  calib <trace.jsonl> [--format text|json] [--min-corr <milli>]
      Predicted-vs-actual ranking calibration per run: score and rank
      next to real attempt cost, the winning rank, and the Spearman
      rank-vs-cost correlation (per-mille). --min-corr exits 1 when a
      run correlates below the floor (or nothing is gateable).
  watch <trace.jsonl> [--interval <ms>] [--once] [--allow-truncated] [--no-color]
      Live dashboard tailing a growing --lineage trace; exits when the
      run's final metrics appear. Polling backs off adaptively while
      the file is idle. With --once, the trace is parsed strictly (like
      report) unless --allow-truncated is given. --no-color appends
      plain frames with no ANSI escapes (CI logs, pipes).
  live <addr> [--record <dir>] [--runs <n>] [--quiet] [--interval <ms>] [--no-color]
      Stream-fed dashboard: listens on a tcp host:port (or a unix
      socket path containing '/') for --stream telemetry from any
      number of concurrent runs. --record tees each stream into
      <dir>/<run>.jsonl, byte-identical to the run's own trace file.
      --runs exits after <n> streams end (for CI); exits nonzero if a
      stream hangs up without its end-of-run frame. --no-color appends
      plain frames with no ANSI escapes.
  history <archive> [--source <s>] [--run <r>] [--limit <n>]
      List the manifest records of a run-history archive (a directory
      holding history.jsonl, or the file itself) in append order.
  history add <archive> [--from-trace <trace.jsonl>] [--source <s>] [--run <r>]
              [--seed <n>] [--config <fp>] [--inflate <metric=pct>]... [--repeat <n>]
      Append a record without running a workload: folded from a trace,
      or cloned from the archive's last record. --inflate grows a
      counter (or `ticks`) by pct% — the synthetic-regression injector
      the CI gate self-test uses. --repeat appends the record n times.
  trend <archive> [--window <n>] [--sigma <z>] [--min-delta <n>]
        [--metric <prefix>]... [--source <s>] [--run <r>] [--gate]
      Windowed drift analysis: the archive's last matching run vs the
      median/MAD of its preceding --window runs (default 8), per
      metric. Increases beyond --sigma (default 3.0) robust deviations
      regress; a zero-spread window regresses on any increase beyond
      --min-delta. With --gate, exits 1 on any regression.
  regress <archive> <metric> [--window <n>] [--sigma <z>] [--min-delta <n>]
          [--source <s>] [--run <r>]
      First-bad-run isolation: baselines <metric> over the earliest
      --window runs and reports the first run deviating beyond the
      robust threshold.
  scrape <addr>
      One-shot client for a run's --expose metrics endpoint: prints the
      Prometheus text-format snapshot between the stream's hello and
      end frames.
";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("report") => {
            let mut allow_truncated = false;
            let mut json = false;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--allow-truncated" => allow_truncated = true,
                    "--format" => match it.next().map(String::as_str) {
                        Some("text") => json = false,
                        Some("json") => json = true,
                        _ => usage_exit("--format requires `text` or `json`"),
                    },
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(
                &rest,
                "report <trace.jsonl> [--format text|json] [--allow-truncated]",
            );
            let rendered = if json {
                report_json(&path, allow_truncated)
            } else {
                report(&path, allow_truncated)
            };
            match rendered {
                Ok(text) => {
                    print!("{text}");
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("diff") => run_diff(&args[1..]),
        Some("critical-path") => {
            let [path] = positional::<1>(&args[1..], "critical-path <trace.jsonl>");
            match load_trace(&path) {
                Ok(events) => {
                    print!("{}", critical::critical_path(&events));
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("top") => {
            let mut limit = 16usize;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--limit" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => limit = n,
                        _ => usage_exit("--limit requires a positive integer"),
                    },
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(&rest, "top <trace.jsonl> [--limit <n>]");
            match load_trace(&path) {
                Ok(events) => {
                    print!("{}", top::top(&events, limit));
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("tree") => {
            let (rest, allow_truncated) = take_flag(&args[1..], "--allow-truncated");
            let [path] = positional::<1>(&rest, "tree <trace.jsonl> [--allow-truncated]");
            match load_events(&path, allow_truncated) {
                Ok(events) => {
                    print!("{}", tree::tree(&events));
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("coverage") => {
            let mut min = None;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--min" => match it.next().map(|n| n.parse::<f64>()) {
                        Some(Ok(v)) if (0.0..=100.0).contains(&v) => min = Some(v),
                        _ => usage_exit("--min requires a percentage in 0..=100"),
                    },
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(&rest, "coverage <trace.jsonl> [--min <pct>]");
            match load_trace(&path) {
                Ok(events) => {
                    print!("{}", coverage::coverage(&events, min));
                    match min {
                        Some(m) if !coverage::gate(&events, m) => 1,
                        _ => 0,
                    }
                }
                Err(e) => fail(&e),
            }
        }
        Some("flame") => {
            let mut metric = flame::Metric::SolverNodes;
            let mut allow_truncated = false;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--metric" => match it.next() {
                        Some(m) => match flame::Metric::parse(m) {
                            Ok(v) => metric = v,
                            Err(e) => usage_exit(&e),
                        },
                        None => usage_exit("--metric requires a value"),
                    },
                    "--allow-truncated" => allow_truncated = true,
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(
                &rest,
                "flame <trace.jsonl> [--metric <m>] [--allow-truncated]",
            );
            match load_events(&path, allow_truncated) {
                Ok(events) => {
                    print!("{}", flame::flame(&events, metric));
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("hotspots") => {
            let mut opts = hotspots::Opts::default();
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--metric" => match it.next() {
                        Some(m) => match hotspots::parse_metric(m) {
                            Ok(v) => opts.metric = v,
                            Err(e) => usage_exit(&e),
                        },
                        None => usage_exit("--metric requires a value"),
                    },
                    "--top" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => opts.top = n,
                        _ => usage_exit("--top requires a positive integer"),
                    },
                    "--min-pct" => match it.next().map(|n| n.parse::<f64>()) {
                        Some(Ok(v)) if (0.0..=100.0).contains(&v) => {
                            opts.min_millipct = (v * 10.0).round() as u64;
                        }
                        _ => usage_exit("--min-pct requires a percentage in 0..=100"),
                    },
                    "--format" => match it.next() {
                        Some(f) => match hotspots::Format::parse(f) {
                            Ok(v) => opts.format = v,
                            Err(e) => usage_exit(&e),
                        },
                        None => usage_exit("--format requires text, json or flame"),
                    },
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(
                &rest,
                "hotspots <trace.jsonl> [--metric <dim>] [--top <n>] \
                 [--min-pct <pct>] [--format text|json|flame]",
            );
            match load_trace(&path) {
                Ok(events) => {
                    print!("{}", hotspots::hotspots(&events, &opts));
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("explain") => {
            let [path, rank] = positional::<2>(&args[1..], "explain <trace.jsonl> <rank>");
            let rank: u64 = match rank.parse() {
                Ok(r) => r,
                Err(_) => usage_exit("explain requires a numeric 1-based rank"),
            };
            match load_trace(&path) {
                Ok(events) => match explain::explain(&events, rank) {
                    Ok(text) => {
                        print!("{text}");
                        0
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        1
                    }
                },
                Err(e) => fail(&e),
            }
        }
        Some("calib") => {
            let mut json = false;
            let mut min_corr = None;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--format" => match it.next().map(String::as_str) {
                        Some("text") => json = false,
                        Some("json") => json = true,
                        _ => usage_exit("--format requires `text` or `json`"),
                    },
                    "--min-corr" => match it.next().map(|n| n.parse::<i64>()) {
                        Some(Ok(v)) if (-1000..=1000).contains(&v) => min_corr = Some(v),
                        _ => usage_exit("--min-corr requires a per-mille value in -1000..=1000"),
                    },
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(
                &rest,
                "calib <trace.jsonl> [--format text|json] [--min-corr <milli>]",
            );
            match load_trace(&path) {
                Ok(events) => {
                    print!("{}", calib::calib(&events, json));
                    match min_corr.map(|m| calib::gate(&events, m)) {
                        Some(Err(e)) => {
                            eprintln!("error: {e}");
                            1
                        }
                        _ => 0,
                    }
                }
                Err(e) => fail(&e),
            }
        }
        Some("watch") => {
            let mut interval = 500u64;
            let mut once = false;
            let mut allow_truncated = false;
            let mut no_color = false;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--interval" => match it.next().map(|n| n.parse::<u64>()) {
                        Some(Ok(ms)) if ms >= 1 => interval = ms,
                        _ => usage_exit("--interval requires a positive millisecond count"),
                    },
                    "--once" => once = true,
                    "--allow-truncated" => allow_truncated = true,
                    "--no-color" => no_color = true,
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(
                &rest,
                "watch <trace.jsonl> [--interval <ms>] [--once] [--allow-truncated] [--no-color]",
            );
            watch::watch(&path, interval, once, allow_truncated, no_color)
        }
        Some("live") => {
            let mut opts = live::LiveOpts {
                interval_ms: 500,
                ..live::LiveOpts::default()
            };
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--record" => match it.next() {
                        Some(dir) => opts.record = Some(dir.clone()),
                        None => usage_exit("--record requires a directory"),
                    },
                    "--runs" => match it.next().map(|n| n.parse::<u64>()) {
                        Some(Ok(n)) if n >= 1 => opts.runs = Some(n),
                        _ => usage_exit("--runs requires a positive count"),
                    },
                    "--quiet" => opts.quiet = true,
                    "--interval" => match it.next().map(|n| n.parse::<u64>()) {
                        Some(Ok(ms)) if ms >= 1 => opts.interval_ms = ms,
                        _ => usage_exit("--interval requires a positive millisecond count"),
                    },
                    "--no-color" => opts.no_color = true,
                    _ => rest.push(a.clone()),
                }
            }
            let [addr] = positional::<1>(
                &rest,
                "live <addr> [--record <dir>] [--runs <n>] [--quiet] [--interval <ms>] [--no-color]",
            );
            live::live(&addr, &opts)
        }
        Some("history") => run_history(&args[1..]),
        Some("trend") => run_trend(&args[1..]),
        Some("regress") => run_regress(&args[1..]),
        Some("scrape") => {
            let [addr] = positional::<1>(&args[1..], "scrape <addr>");
            scrape::scrape(&addr)
        }
        Some(other) => usage_exit(&format!("unknown command `{other}`")),
        None => usage_exit("missing command"),
    };
    std::process::exit(code);
}

/// Loads a trace under the flagged parser contract: strict by default,
/// tolerant with `--allow-truncated`.
fn load_events(
    path: &str,
    allow_truncated: bool,
) -> Result<Vec<statsym_telemetry::TraceEvent>, String> {
    if allow_truncated {
        Ok(load_trace_truncated(path)?.0)
    } else {
        load_trace(path)
    }
}

/// Splits one boolean flag out of `args`.
fn take_flag(args: &[String], flag: &str) -> (Vec<String>, bool) {
    let mut found = false;
    let rest = args
        .iter()
        .filter(|a| {
            if a.as_str() == flag {
                found = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, found)
}

/// Loads a manifest archive or exits with its line-numbered error.
fn load_archive(archive: &str) -> Vec<statsym_telemetry::manifest::RunManifest> {
    match manifest::load_history(archive) {
        Ok(ms) => ms,
        Err(e) => fail(&format!("{archive}:{}: {}", e.line, e.reason)),
    }
}

fn run_history(args: &[String]) -> i32 {
    if args.first().map(String::as_str) == Some("add") {
        return run_history_add(&args[1..]);
    }
    let mut f = history::HistoryFilter::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--source" => match it.next() {
                Some(s) => f.source = Some(s.clone()),
                None => usage_exit("--source requires a value"),
            },
            "--run" => match it.next() {
                Some(r) => f.run = Some(r.clone()),
                None => usage_exit("--run requires a value"),
            },
            "--limit" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => f.limit = Some(n),
                _ => usage_exit("--limit requires a positive integer"),
            },
            _ => rest.push(a.clone()),
        }
    }
    let [archive] = positional::<1>(
        &rest,
        "history <archive> [--source <s>] [--run <r>] [--limit <n>]",
    );
    print!("{}", history::list(&load_archive(&archive), &f));
    0
}

fn run_history_add(args: &[String]) -> i32 {
    let mut opts = history::AddOpts::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--from-trace" => match it.next() {
                Some(p) => opts.from_trace = Some(p.clone()),
                None => usage_exit("--from-trace requires a file path"),
            },
            "--source" => match it.next() {
                Some(s) => opts.source = Some(s.clone()),
                None => usage_exit("--source requires a value"),
            },
            "--run" => match it.next() {
                Some(r) => opts.run = Some(r.clone()),
                None => usage_exit("--run requires a value"),
            },
            "--seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => opts.seed = Some(n),
                _ => usage_exit("--seed requires a non-negative integer"),
            },
            "--config" => match it.next() {
                Some(c) => opts.config = Some(c.clone()),
                None => usage_exit("--config requires a fingerprint"),
            },
            "--inflate" => match it.next() {
                Some(s) => match history::parse_inflate(s) {
                    Ok(p) => opts.inflate.push(p),
                    Err(e) => usage_exit(&e),
                },
                None => usage_exit("--inflate requires metric=pct"),
            },
            "--repeat" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => opts.repeat = n,
                _ => usage_exit("--repeat requires a positive integer"),
            },
            _ => rest.push(a.clone()),
        }
    }
    let [archive] = positional::<1>(
        &rest,
        "history add <archive> [--from-trace <t>] [--source <s>] [--run <r>] \
         [--seed <n>] [--config <fp>] [--inflate <metric=pct>]... [--repeat <n>]",
    );
    match history::add(&archive, &opts) {
        Ok(ids) => {
            for id in &ids {
                println!("appended {id}");
            }
            0
        }
        Err(e) => fail(&e),
    }
}

/// Parses the flags `trend` and `regress` share into a [`trend::TrendOpts`].
fn trend_opts(args: &[String]) -> (trend::TrendOpts, bool, Vec<String>) {
    let mut opts = trend::TrendOpts::default();
    let mut gate = false;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--window" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => opts.window = n,
                _ => usage_exit("--window requires a positive integer"),
            },
            "--sigma" => match it.next().map(|n| n.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 && v.is_finite() => opts.sigma = v,
                _ => usage_exit("--sigma requires a positive number"),
            },
            "--min-delta" => match it.next().map(|n| n.parse::<f64>()) {
                Some(Ok(v)) if v >= 0.0 && v.is_finite() => opts.min_delta = v,
                _ => usage_exit("--min-delta requires a non-negative number"),
            },
            "--metric" => match it.next() {
                Some(m) => opts.metrics.push(m.clone()),
                None => usage_exit("--metric requires a name prefix"),
            },
            "--source" => match it.next() {
                Some(s) => opts.source = Some(s.clone()),
                None => usage_exit("--source requires a value"),
            },
            "--run" => match it.next() {
                Some(r) => opts.run = Some(r.clone()),
                None => usage_exit("--run requires a value"),
            },
            "--gate" => gate = true,
            _ => rest.push(a.clone()),
        }
    }
    (opts, gate, rest)
}

fn run_trend(args: &[String]) -> i32 {
    let (opts, gate, rest) = trend_opts(args);
    let [archive] = positional::<1>(
        &rest,
        "trend <archive> [--window <n>] [--sigma <z>] [--min-delta <n>] \
         [--metric <prefix>]... [--source <s>] [--run <r>] [--gate]",
    );
    match trend::trend(&load_archive(&archive), &opts) {
        Ok(r) => {
            print!("{}", r.rendered);
            i32::from(gate && r.regressions > 0)
        }
        Err(e) => fail(&e),
    }
}

fn run_regress(args: &[String]) -> i32 {
    let (opts, gate, rest) = trend_opts(args);
    if gate {
        usage_exit("--gate applies to trend, not regress");
    }
    let [archive, metric] = positional::<2>(
        &rest,
        "regress <archive> <metric> [--window <n>] [--sigma <z>] [--min-delta <n>] \
         [--source <s>] [--run <r>]",
    );
    match trend::regress(&load_archive(&archive), &metric, &opts) {
        Ok(text) => {
            print!("{text}");
            0
        }
        Err(e) => fail(&e),
    }
}

/// Exactly `N` positional arguments, or a usage error.
fn positional<const N: usize>(args: &[String], usage: &str) -> [String; N] {
    if args.len() != N || args.iter().any(|a| a.starts_with("--")) {
        usage_exit(&format!("expected: {usage}"));
    }
    std::array::from_fn(|i| args[i].clone())
}

fn run_diff(args: &[String]) -> i32 {
    let mut cfg = DiffConfig::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next() {
                Some(t) => match parse_threshold(t) {
                    Ok(v) => cfg.threshold_pct = v,
                    Err(e) => usage_exit(&e),
                },
                None => usage_exit("--threshold requires a percentage"),
            },
            "--ignore" => match it.next() {
                Some(p) => cfg.ignore.push(p.clone()),
                None => usage_exit("--ignore requires a metric-name prefix"),
            },
            "--min-delta" => match it.next().map(|n| n.parse::<f64>()) {
                Some(Ok(v)) if v >= 0.0 => cfg.min_delta = v,
                _ => usage_exit("--min-delta requires a non-negative number"),
            },
            other if other.starts_with("--") => usage_exit(&format!("unknown diff flag `{other}`")),
            _ => paths.push(a.clone()),
        }
    }
    let [old, new]: [String; 2] = match paths.try_into() {
        Ok(p) => p,
        Err(_) => usage_exit("expected: diff <old> <new>"),
    };
    match diff_files(&old, &new, &cfg) {
        Ok(d) => {
            print!("{}", d.rendered);
            i32::from(d.regressions > 0)
        }
        Err(e) => fail(&e),
    }
}
