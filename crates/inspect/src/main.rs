//! `statsym-inspect` — trace analytics over StatSym JSONL traces.
//!
//! ```text
//! statsym-inspect report <trace.jsonl>
//! statsym-inspect diff <old> <new> [--threshold <pct>%] [--ignore <prefix>]... [--min-delta <n>]
//! statsym-inspect critical-path <trace.jsonl>
//! statsym-inspect top <trace.jsonl> [--limit <n>]
//! ```
//!
//! Exit codes: 0 success (and no regressions), 1 `diff` found at least
//! one regression, 2 usage or parse error.

use statsym_inspect::diff::{diff_files, parse_threshold, DiffConfig};
use statsym_inspect::{critical, load_trace, report, top};

const USAGE: &str = "\
usage: statsym-inspect <command> [args]

commands:
  report <trace.jsonl>
      Render the run report (phases, counters, gauges, histograms).
  diff <old> <new> [--threshold <pct>%] [--ignore <prefix>]... [--min-delta <n>]
      Compare two traces (or two numeric JSON reports). Exits 1 when a
      metric grew past the threshold (default 10%).
  critical-path <trace.jsonl>
      Show which candidate attempt bounded the run and the wasted-work
      ratio of a portfolio execution.
  top <trace.jsonl> [--limit <n>]
      Rank solver callsites by search nodes (per-site profile).
";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("report") => {
            let [path] = positional::<1>(&args[1..], "report <trace.jsonl>");
            match report(&path) {
                Ok(text) => {
                    print!("{text}");
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("diff") => run_diff(&args[1..]),
        Some("critical-path") => {
            let [path] = positional::<1>(&args[1..], "critical-path <trace.jsonl>");
            match load_trace(&path) {
                Ok(events) => {
                    print!("{}", critical::critical_path(&events));
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some("top") => {
            let mut limit = 16usize;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--limit" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => limit = n,
                        _ => usage_exit("--limit requires a positive integer"),
                    },
                    _ => rest.push(a.clone()),
                }
            }
            let [path] = positional::<1>(&rest, "top <trace.jsonl> [--limit <n>]");
            match load_trace(&path) {
                Ok(events) => {
                    print!("{}", top::top(&events, limit));
                    0
                }
                Err(e) => fail(&e),
            }
        }
        Some(other) => usage_exit(&format!("unknown command `{other}`")),
        None => usage_exit("missing command"),
    };
    std::process::exit(code);
}

/// Exactly `N` positional arguments, or a usage error.
fn positional<const N: usize>(args: &[String], usage: &str) -> [String; N] {
    if args.len() != N || args.iter().any(|a| a.starts_with("--")) {
        usage_exit(&format!("expected: {usage}"));
    }
    std::array::from_fn(|i| args[i].clone())
}

fn run_diff(args: &[String]) -> i32 {
    let mut cfg = DiffConfig::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next() {
                Some(t) => match parse_threshold(t) {
                    Ok(v) => cfg.threshold_pct = v,
                    Err(e) => usage_exit(&e),
                },
                None => usage_exit("--threshold requires a percentage"),
            },
            "--ignore" => match it.next() {
                Some(p) => cfg.ignore.push(p.clone()),
                None => usage_exit("--ignore requires a metric-name prefix"),
            },
            "--min-delta" => match it.next().map(|n| n.parse::<f64>()) {
                Some(Ok(v)) if v >= 0.0 => cfg.min_delta = v,
                _ => usage_exit("--min-delta requires a non-negative number"),
            },
            other if other.starts_with("--") => usage_exit(&format!("unknown diff flag `{other}`")),
            _ => paths.push(a.clone()),
        }
    }
    let [old, new]: [String; 2] = match paths.try_into() {
        Ok(p) => p,
        Err(_) => usage_exit("expected: diff <old> <new>"),
    };
    match diff_files(&old, &new, &cfg) {
        Ok(d) => {
            print!("{}", d.rendered);
            i32::from(d.regressions > 0)
        }
        Err(e) => fail(&e),
    }
}
