//! `statsym-inspect calib`: ranking-calibration — predicted vs actual.
//!
//! The pipeline emits one `calib.candidate` record per ranked attempt
//! (the statistical score and path length it was ranked on, next to the
//! steps/forks/solver work the attempt actually cost) plus two derived
//! gauges: which rank won and the Spearman correlation between rank
//! order and step cost. This view renders the predicted-vs-actual
//! table per run and recomputes the correlation from the records, so a
//! trace that predates the gauges still summarizes.
//!
//! `--min-corr <milli>` turns the view into a CI gate: exit 1 when any
//! run's rank-vs-cost correlation falls below the floor (or when the
//! trace has no run with enough candidates to correlate at all) —
//! catching ranking regressions that still find the vulnerability,
//! just at a higher rank than they should.

use statsym_telemetry::{names, CalibCandidate, TraceEvent, TraceSummary};

/// Spearman rank correlation between candidate rank order (slice index)
/// and per-attempt cost, in per-mille. Tied costs get average ranks;
/// `None` when fewer than two attempts or when every cost ties. This is
/// the same statistic `statsym-core` derives the
/// `calib.rank_cost_corr_milli` gauge from (duplicated here because the
/// inspect library depends only on the telemetry crate — the core test
/// suite cross-checks the two).
pub fn spearman_milli(costs: &[u64]) -> Option<i64> {
    let n = costs.len();
    if n < 2 {
        return None;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| costs[i]);
    let mut cost_rank = vec![0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && costs[idx[j + 1]] == costs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            cost_rank[k] = avg;
        }
        i = j + 1;
    }
    let mean = (n as f64 - 1.0) / 2.0;
    let (mut num, mut dx, mut dy) = (0f64, 0f64, 0f64);
    for (r, &cr) in cost_rank.iter().enumerate() {
        let x = r as f64 - mean;
        let y = cr - mean;
        num += x * y;
        dx += x * x;
        dy += y * y;
    }
    if dy == 0.0 {
        return None;
    }
    Some((num / (dx * dy).sqrt() * 1000.0).round() as i64)
}

/// One pipeline run's worth of calibration records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Candidate records in rank order.
    pub candidates: Vec<CalibCandidate>,
}

impl Run {
    /// 1-based rank of the winning attempt, if any attempt won.
    pub fn winner_rank(&self) -> Option<u64> {
        self.candidates.iter().find(|c| c.found).map(|c| c.rank)
    }

    /// Rank-vs-step-cost correlation in per-mille.
    pub fn corr_milli(&self) -> Option<i64> {
        let costs: Vec<u64> = self.candidates.iter().map(|c| c.steps).collect();
        spearman_milli(&costs)
    }
}

/// Splits a trace's `calib.candidate` records into runs. Ranks are
/// 1-based and strictly increasing within one pipeline run (candidates
/// are attempted — and portfolio buffers spliced — in rank order), so a
/// record whose rank does not exceed its predecessor's starts a new
/// run. A single-run trace yields exactly one entry.
pub fn runs(events: &[TraceEvent]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for c in TraceSummary::from_events(events).calib {
        match out.last_mut() {
            Some(run) if c.rank > run.candidates.last().map_or(0, |p| p.rank) => {
                run.candidates.push(c);
            }
            _ => out.push(Run {
                candidates: vec![c],
            }),
        }
    }
    out
}

/// Renders the predicted-vs-actual calibration table.
pub fn calib(events: &[TraceEvent], json: bool) -> String {
    let runs = runs(events);
    let s = TraceSummary::from_events(events);
    if json {
        return render_json(&runs, &s);
    }
    if runs.is_empty() {
        return "no calib.candidate records in trace (recorded before calibration?)\n".to_string();
    }

    let mut out = String::new();
    for (i, run) in runs.iter().enumerate() {
        if runs.len() > 1 {
            out.push_str(&format!("run {}:\n", i + 1));
        }
        out.push_str(&format!(
            "  {:>4}  {:>11}  {:>8}  {:>10}  {:>8}  {:>10}  {:>10}  {:>5}\n",
            "rank", "score_milli", "path_len", "steps", "forks", "snodes", "solver_us", "found"
        ));
        for c in &run.candidates {
            out.push_str(&format!(
                "  {:>4}  {:>11}  {:>8}  {:>10}  {:>8}  {:>10}  {:>10}  {:>5}\n",
                c.rank,
                c.score_milli,
                c.path_len,
                c.steps,
                c.forks,
                c.snodes,
                c.solver_us,
                if c.found { "yes" } else { "no" }
            ));
        }
        match run.winner_rank() {
            Some(w) => out.push_str(&format!("  winner rank: {w}\n")),
            None => out.push_str("  winner rank: - (no attempt found the vulnerability)\n"),
        }
        match run.corr_milli() {
            Some(c) => out.push_str(&format!("  rank-vs-cost corr: {c} milli\n")),
            None => {
                out.push_str("  rank-vs-cost corr: - (needs 2+ attempts with distinct costs)\n")
            }
        }
        out.push('\n');
    }
    if let Some(w) = s.gauge(names::CALIB_WINNER_RANK) {
        out.push_str(&format!("recorded winner_rank gauge: {w}\n"));
    }
    if let Some(c) = s.gauge(names::CALIB_RANK_COST_CORR) {
        out.push_str(&format!("recorded corr gauge: {c} milli\n"));
    }
    out
}

fn render_json(runs: &[Run], s: &TraceSummary) -> String {
    let mut out = String::from("{\"runs\":[");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"candidates\":[");
        for (j, c) in run.candidates.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rank\":{},\"score_milli\":{},\"path_len\":{},\"steps\":{},\
                 \"forks\":{},\"snodes\":{},\"solver_us\":{},\"found\":{}}}",
                c.rank,
                c.score_milli,
                c.path_len,
                c.steps,
                c.forks,
                c.snodes,
                c.solver_us,
                u64::from(c.found)
            ));
        }
        out.push(']');
        if let Some(w) = run.winner_rank() {
            out.push_str(&format!(",\"winner_rank\":{w}"));
        }
        if let Some(c) = run.corr_milli() {
            out.push_str(&format!(",\"corr_milli\":{c}"));
        }
        out.push('}');
    }
    out.push(']');
    if let Some(w) = s.gauge(names::CALIB_WINNER_RANK) {
        out.push_str(&format!(",\"gauge_winner_rank\":{w}"));
    }
    if let Some(c) = s.gauge(names::CALIB_RANK_COST_CORR) {
        out.push_str(&format!(",\"gauge_corr_milli\":{c}"));
    }
    out.push_str("}\n");
    out
}

/// The `--min-corr` CI gate.
///
/// # Errors
///
/// Returns a message when any run's correlation falls below
/// `min_milli`, or when no run has a defined correlation at all (a
/// trace with nothing to gate must fail loudly, not pass silently).
pub fn gate(events: &[TraceEvent], min_milli: i64) -> Result<(), String> {
    let runs = runs(events);
    let mut gated = 0usize;
    for (i, run) in runs.iter().enumerate() {
        if let Some(c) = run.corr_milli() {
            gated += 1;
            if c < min_milli {
                return Err(format!(
                    "run {} rank-vs-cost correlation {c} milli is below the \
                     --min-corr floor {min_milli}",
                    i + 1
                ));
            }
        }
    }
    if gated == 0 {
        return Err(format!(
            "--min-corr {min_milli} given but no run has a defined \
             correlation ({} run(s), need 2+ attempts with distinct costs)",
            runs.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::FieldValue;

    fn cand(rank: u64, steps: u64, found: bool) -> TraceEvent {
        TraceEvent::Event {
            t: 1,
            name: names::CALIB_CANDIDATE.into(),
            fields: vec![
                ("rank".into(), FieldValue::Uint(rank)),
                ("score_milli".into(), FieldValue::Uint(rank * 100)),
                ("path_len".into(), FieldValue::Uint(4)),
                ("steps".into(), FieldValue::Uint(steps)),
                ("forks".into(), FieldValue::Uint(1)),
                ("snodes".into(), FieldValue::Uint(6)),
                ("found".into(), FieldValue::Uint(u64::from(found))),
            ],
        }
    }

    #[test]
    fn spearman_matches_core_semantics() {
        assert_eq!(spearman_milli(&[10, 20, 30]), Some(1000));
        assert_eq!(spearman_milli(&[30, 20, 10]), Some(-1000));
        assert_eq!(spearman_milli(&[5, 5]), None);
        assert_eq!(spearman_milli(&[5]), None);
        assert_eq!(spearman_milli(&[]), None);
        // Ties get average ranks: monotone but tied in the middle.
        assert_eq!(spearman_milli(&[1, 2, 2, 3]), Some(949));
    }

    #[test]
    fn rank_reset_starts_a_new_run() {
        let events = vec![
            cand(1, 10, false),
            cand(2, 30, true),
            cand(1, 40, false),
            cand(2, 20, false),
            cand(3, 10, true),
        ];
        let rs = runs(&events);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].candidates.len(), 2);
        assert_eq!(rs[1].candidates.len(), 3);
        assert_eq!(rs[0].winner_rank(), Some(2));
        assert_eq!(rs[1].winner_rank(), Some(3));
        assert_eq!(rs[0].corr_milli(), Some(1000));
        assert_eq!(rs[1].corr_milli(), Some(-1000));
    }

    #[test]
    fn renders_table_winner_and_corr() {
        let events = vec![
            cand(1, 10, false),
            cand(2, 30, true),
            TraceEvent::Gauge {
                name: names::CALIB_WINNER_RANK.into(),
                value: 2,
            },
        ];
        let text = calib(&events, false);
        assert!(text.contains("rank"), "{text}");
        assert!(text.contains("winner rank: 2"), "{text}");
        assert!(text.contains("rank-vs-cost corr: 1000 milli"), "{text}");
        assert!(text.contains("recorded winner_rank gauge: 2"), "{text}");
        assert_eq!(text, calib(&events, false));
    }

    #[test]
    fn json_is_stable_and_parseable() {
        let events = vec![cand(1, 10, false), cand(2, 30, true)];
        let json = calib(&events, true);
        assert!(
            json.starts_with("{\"runs\":[{\"candidates\":[{\"rank\":1,"),
            "{json}"
        );
        assert!(
            json.contains("\"winner_rank\":2,\"corr_milli\":1000"),
            "{json}"
        );
        crate::numjson::flatten(&json).unwrap();
        assert_eq!(json, calib(&events, true));
        // Empty trace: still a valid document.
        assert_eq!(calib(&[], true), "{\"runs\":[]}\n");
    }

    #[test]
    fn gate_fails_below_floor_and_on_ungateable_traces() {
        let good = vec![cand(1, 10, true), cand(2, 30, false)];
        assert!(gate(&good, 500).is_ok());
        let bad = vec![cand(1, 30, false), cand(2, 10, true)];
        let err = gate(&bad, 500).unwrap_err();
        assert!(err.contains("-1000"), "{err}");
        // No run with a defined correlation: the gate must not pass.
        assert!(gate(&[], 0).is_err());
        assert!(gate(&[cand(1, 10, true)], 0).is_err());
    }

    #[test]
    fn empty_trace_is_reported() {
        assert!(calib(&[], false).contains("no calib.candidate"));
    }
}
