//! `statsym-inspect diff`: the perf-regression gate.
//!
//! Compares two runs metric by metric and flags **increases** beyond a
//! configurable threshold as regressions — every compared quantity
//! (phase ticks, work counters, histogram totals, wall times) is a
//! cost, so up is bad and down is an improvement. Metrics that are
//! legitimately nondeterministic (shared-cache work, wall-clock noise)
//! are excluded with `--ignore <prefix>`.
//!
//! Both operands must be the same kind of file: canonical JSONL traces
//! (compared phase-by-phase and counter-by-counter) or plain numeric
//! JSON reports such as `BENCH_portfolio.json` (compared leaf-by-leaf
//! via [`crate::numjson`]). A metric present on only one side is
//! reported as a schema change, never a regression: a vanished counter
//! is not a "regression to zero", and a new one has no baseline.

use crate::numjson;
use statsym_telemetry::{parse_trace_strict, TraceEvent, TraceSummary};

/// Diff configuration (thresholds and exclusions).
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative increase (percent) above which a metric regresses.
    pub threshold_pct: f64,
    /// Metric-name prefixes excluded from regression checks.
    pub ignore: Vec<String>,
    /// Minimum absolute increase for a regression — keeps ±1 jitter on
    /// tiny counters from tripping a percentage threshold.
    pub min_delta: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold_pct: 10.0,
            ignore: Vec::new(),
            min_delta: 0.0,
        }
    }
}

/// Parses a `--threshold` argument: `20%`, `20`, or `12.5%`.
///
/// # Errors
///
/// Returns a usage message for non-numeric or negative input.
pub fn parse_threshold(s: &str) -> Result<f64, String> {
    let t = s.strip_suffix('%').unwrap_or(s);
    match t.parse::<f64>() {
        Ok(v) if v >= 0.0 && v.is_finite() => Ok(v),
        _ => Err(format!("invalid threshold `{s}`; expected e.g. `20%`")),
    }
}

/// The rendered diff plus the regression verdict.
#[derive(Debug)]
pub struct DiffReport {
    /// Human-readable diff, one line per changed metric.
    pub rendered: String,
    /// Number of metrics that regressed beyond the threshold.
    pub regressions: usize,
}

/// One comparable metric: a stable key and a cost value.
type Metric = (String, f64);

/// Flattens a parsed trace into comparable cost metrics.
fn trace_metrics(events: &[TraceEvent]) -> Vec<Metric> {
    let s = TraceSummary::from_events(events);
    let mut out: Vec<Metric> = Vec::new();
    for sp in &s.spans {
        out.push((format!("phase {}", sp.name), sp.total_ticks as f64));
    }
    for (name, v) in &s.counters {
        out.push((format!("counter {name}"), *v as f64));
    }
    for (name, v) in &s.gauges {
        out.push((format!("gauge {name}"), *v as f64));
    }
    for h in &s.hists {
        out.push((format!("hist {}.count", h.name), h.count as f64));
        out.push((format!("hist {}.sum", h.name), h.sum as f64));
    }
    for (name, n) in &s.event_counts {
        out.push((format!("event {name}"), *n as f64));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The metric name without its `phase `/`counter `/… kind tag, for
/// `--ignore` prefix matching (so `--ignore portfolio` matches the
/// span, the counters, and the events alike).
fn bare_name(key: &str) -> &str {
    key.split_once(' ').map_or(key, |(_, n)| n)
}

/// Diffs two metric sets under `cfg`. Keys must be sorted.
fn diff_metrics(old: &[Metric], new: &[Metric], cfg: &DiffConfig) -> DiffReport {
    let mut rendered = String::new();
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut schema_changes = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        let ord = match (old.get(i), new.get(j)) {
            (Some(a), Some(b)) => a.0.cmp(&b.0),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => break,
        };
        match ord {
            std::cmp::Ordering::Less => {
                let (key, v) = &old[i];
                rendered.push_str(&format!("  {key:<44} {v:>14} -> (absent)  [schema]\n"));
                schema_changes += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let (key, v) = &new[j];
                rendered.push_str(&format!("  {key:<44} (absent) -> {v:>14}  [schema]\n"));
                schema_changes += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (key, a) = &old[i];
                let b = new[j].1;
                i += 1;
                j += 1;
                if (b - a).abs() < f64::EPSILON * a.abs().max(1.0) {
                    continue;
                }
                let ignored = cfg.ignore.iter().any(|p| bare_name(key).starts_with(p));
                let pct = if *a == 0.0 {
                    f64::INFINITY
                } else {
                    (b - a) / a * 100.0
                };
                let grew = b > *a;
                let is_regression = !ignored
                    && grew
                    && (b - a) >= cfg.min_delta.max(f64::MIN_POSITIVE)
                    && (pct > cfg.threshold_pct);
                let tag = if ignored {
                    "  [ignored]"
                } else if is_regression {
                    "  REGRESSION"
                } else if !grew {
                    improvements += 1;
                    ""
                } else {
                    ""
                };
                regressions += usize::from(is_regression);
                let pct_s = if pct.is_infinite() {
                    "+inf%".to_string()
                } else {
                    format!("{pct:+.1}%")
                };
                rendered.push_str(&format!(
                    "  {key:<44} {} -> {}  {pct_s}{tag}\n",
                    fmt_num(*a),
                    fmt_num(b)
                ));
            }
        }
    }
    rendered.push_str(&format!(
        "\n{regressions} regression(s) over {:.1}% threshold, \
         {improvements} improvement(s), {schema_changes} schema change(s)\n",
        cfg.threshold_pct
    ));
    DiffReport {
        rendered,
        regressions,
    }
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

/// Diffs two files of the same kind (JSONL trace or numeric JSON).
///
/// # Errors
///
/// Returns a rendered error when a file is unreadable, malformed, or
/// the two files are of different kinds.
pub fn diff_files(old_path: &str, new_path: &str, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let old = load_metrics(old_path)?;
    let new = load_metrics(new_path)?;
    match (old, new) {
        (Loaded::Trace(a), Loaded::Trace(b)) => Ok(diff_metrics(&a, &b, cfg)),
        (Loaded::Flat(a), Loaded::Flat(b)) => Ok(diff_metrics(&a, &b, cfg)),
        _ => Err(format!(
            "{old_path} and {new_path} are different kinds of files \
             (one JSONL trace, one JSON report)"
        )),
    }
}

enum Loaded {
    Trace(Vec<Metric>),
    Flat(Vec<Metric>),
}

fn load_metrics(path: &str) -> Result<Loaded, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    // A canonical trace is JSONL whose first line is a meta event; a
    // bench report is one (usually multi-line) JSON document.
    match parse_trace_strict(&text) {
        Ok(events) => Ok(Loaded::Trace(trace_metrics(&events))),
        Err(trace_err) => match numjson::flatten(&text) {
            Ok(flat) => Ok(Loaded::Flat(
                // Keys already sorted; tag them so the render reads well.
                flat.into_iter()
                    .map(|(k, v)| (format!("value {k}"), v))
                    .collect(),
            )),
            Err((off, reason)) => Err(format!(
                "{path}: neither a JSONL trace (line {}: {}) nor numeric JSON \
                 (offset {off}: {reason})",
                trace_err.line, trace_err.reason
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: f64) -> DiffConfig {
        DiffConfig {
            threshold_pct: threshold,
            ..DiffConfig::default()
        }
    }

    fn m(pairs: &[(&str, f64)]) -> Vec<Metric> {
        let mut v: Vec<Metric> = pairs.iter().map(|(k, x)| (k.to_string(), *x)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    #[test]
    fn flags_increases_over_threshold_only() {
        let old = m(&[
            ("counter solver.queries", 100.0),
            ("phase engine.run", 50.0),
        ]);
        let new = m(&[
            ("counter solver.queries", 125.0),
            ("phase engine.run", 54.0),
        ]);
        let d = diff_metrics(&old, &new, &cfg(20.0));
        assert_eq!(d.regressions, 1, "{}", d.rendered);
        assert!(d.rendered.contains("REGRESSION"));
        // 8% growth on engine.run stays under the 20% bar.
        assert!(d.rendered.contains("phase engine.run"));
    }

    #[test]
    fn improvements_and_equal_values_do_not_regress() {
        let old = m(&[("counter a", 100.0), ("counter b", 7.0)]);
        let new = m(&[("counter a", 60.0), ("counter b", 7.0)]);
        let d = diff_metrics(&old, &new, &cfg(10.0));
        assert_eq!(d.regressions, 0);
        assert!(d.rendered.contains("counter a"));
        assert!(!d.rendered.contains("counter b"), "{}", d.rendered);
    }

    #[test]
    fn ignore_prefix_suppresses_regressions() {
        let old = m(&[("counter portfolio.cache.hits", 10.0)]);
        let new = m(&[("counter portfolio.cache.hits", 100.0)]);
        let mut c = cfg(10.0);
        c.ignore.push("portfolio".into());
        let d = diff_metrics(&old, &new, &c);
        assert_eq!(d.regressions, 0);
        assert!(d.rendered.contains("[ignored]"));
    }

    #[test]
    fn schema_changes_are_reported_but_never_fail() {
        let old = m(&[("counter gone", 5.0)]);
        let new = m(&[("counter fresh", 5.0)]);
        let d = diff_metrics(&old, &new, &cfg(10.0));
        assert_eq!(d.regressions, 0);
        assert!(d.rendered.contains("(absent)"));
        assert!(d.rendered.contains("2 schema change(s)"));
    }

    #[test]
    fn min_delta_filters_small_absolute_jitter() {
        let old = m(&[("counter tiny", 2.0)]);
        let new = m(&[("counter tiny", 3.0)]);
        let mut c = cfg(10.0);
        assert_eq!(diff_metrics(&old, &new, &c).regressions, 1);
        c.min_delta = 5.0;
        assert_eq!(diff_metrics(&old, &new, &c).regressions, 0);
    }

    #[test]
    fn zero_baseline_growth_is_a_regression() {
        let old = m(&[("counter x", 0.0)]);
        let new = m(&[("counter x", 4.0)]);
        let d = diff_metrics(&old, &new, &cfg(10.0));
        assert_eq!(d.regressions, 1);
        assert!(d.rendered.contains("+inf%"));
    }

    /// Metric list for a trace that folded the given counters — the
    /// same path real traces take through [`trace_metrics`].
    fn counter_trace(counters: &[(&str, u64)]) -> Vec<Metric> {
        let events: Vec<TraceEvent> = counters
            .iter()
            .map(|(name, value)| TraceEvent::Counter {
                name: (*name).to_string(),
                value: *value,
            })
            .collect();
        trace_metrics(&events)
    }

    /// A run with an optional feature *enabled but idle* emits its
    /// counter family at zero; a run with it disabled emits nothing.
    /// Diffing those two configs must read as a schema change (the
    /// counters vanished), never as regressions or improvements.
    #[test]
    fn disabling_a_counter_family_is_a_schema_change() {
        let enabled = counter_trace(&[
            ("solver.indep.queries", 0),
            ("solver.indep.components", 0),
            ("solver.ucache.hits", 0),
            ("solver.queries", 40),
        ]);
        let disabled = counter_trace(&[("solver.queries", 40)]);
        let d = diff_metrics(&enabled, &disabled, &cfg(10.0));
        assert_eq!(d.regressions, 0, "{}", d.rendered);
        assert!(d.rendered.contains("3 schema change(s)"), "{}", d.rendered);
        assert!(d.rendered.contains("-> (absent)"));
        // And the reverse (turning the feature on) is also schema-only.
        let d = diff_metrics(&disabled, &enabled, &cfg(10.0));
        assert_eq!(d.regressions, 0, "{}", d.rendered);
        assert!(d.rendered.contains("(absent) ->"));
    }

    /// Within one config the family is always present, so a counter
    /// going 0 -> N is a genuine +inf% regression — the zero baseline
    /// distinguishes "feature idle" from "feature missing".
    #[test]
    fn present_at_zero_growth_is_inf_regression_not_schema() {
        let idle = counter_trace(&[("solver.ucache.hits", 0), ("attr.lines", 0)]);
        let busy = counter_trace(&[("solver.ucache.hits", 9), ("attr.lines", 12)]);
        let d = diff_metrics(&idle, &busy, &cfg(10.0));
        assert_eq!(d.regressions, 2, "{}", d.rendered);
        assert!(d.rendered.contains("+inf%"));
        assert!(d.rendered.contains("0 schema change(s)"), "{}", d.rendered);
    }

    #[test]
    fn threshold_parser_accepts_percent_suffix() {
        assert_eq!(parse_threshold("20%").unwrap(), 20.0);
        assert_eq!(parse_threshold("12.5").unwrap(), 12.5);
        assert!(parse_threshold("-3%").is_err());
        assert!(parse_threshold("abc").is_err());
    }
}
