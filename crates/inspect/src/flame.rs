//! `statsym-inspect flame`: collapsed-stack flamegraph export of where
//! solver effort (or executor steps) went, keyed by fork lineage.
//!
//! Each state's stack is the chain of SIR locations where it and its
//! ancestors were forked, root first; the weight is the work billed
//! directly to that state. The output is the standard collapsed-stack
//! format (`frame;frame;frame weight`, one line per unique stack,
//! lexicographically sorted for determinism), which `inferno`,
//! speedscope, and `flamegraph.pl` all accept as-is.

use crate::forest::{Forest, Work};
use statsym_telemetry::TraceEvent;
use std::collections::BTreeMap;

/// Which per-state weight the flamegraph plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Solver search-tree nodes (the default: deterministic and the
    /// best proxy for solver effort under the step clock).
    SolverNodes,
    /// Solver wall-clock µs (all zeros under the deterministic step
    /// clock — record with `--clock wall` to use this).
    SolverUs,
    /// Executor steps.
    Steps,
}

impl Metric {
    /// Parses the `--metric` flag value.
    pub fn parse(s: &str) -> Result<Metric, String> {
        match s {
            "solver-nodes" => Ok(Metric::SolverNodes),
            "solver-us" => Ok(Metric::SolverUs),
            "steps" => Ok(Metric::Steps),
            other => Err(format!(
                "unknown metric `{other}`; use solver-nodes, solver-us, or steps"
            )),
        }
    }

    fn of(self, w: Work) -> u64 {
        match self {
            Metric::SolverNodes => w.snodes,
            Metric::SolverUs => w.solver_us,
            Metric::Steps => w.steps,
        }
    }
}

/// Renders the collapsed-stack lines for a parsed `--lineage` trace.
/// States with zero weight are dropped; identical stacks are summed.
pub fn flame(events: &[TraceEvent], metric: Metric) -> String {
    let forest = Forest::from_events(events);
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    // Walk each tree root-first so every node sees its ancestors'
    // frames already joined; introduction order guarantees parents
    // come before children in `nodes`.
    let mut frames: Vec<String> = Vec::with_capacity(forest.nodes.len());
    let mut parent_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (at, n) in forest.nodes.iter().enumerate() {
        parent_of.insert(n.id, at);
        let stack = match parent_of.get(&n.parent) {
            Some(&p) if n.parent != 0 => format!("{};{}", frames[p], n.birth_loc),
            _ => n.birth_loc.clone(),
        };
        let weight = metric.of(n.own);
        if weight > 0 {
            *stacks.entry(stack.clone()).or_default() += weight;
        }
        frames.push(stack);
    }
    let mut out = String::new();
    for (stack, weight) in &stacks {
        out.push_str(&format!("{stack} {weight}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::lineage_op;

    fn state(op: &str, id: u64, par: u64, loc: &str, snodes: u64) -> TraceEvent {
        TraceEvent::State {
            t: 0,
            op: op.to_string(),
            id,
            par,
            loc: loc.to_string(),
            hops: 0,
            depth: 0,
            steps: snodes * 10,
            snodes,
            sus: 0,
        }
    }

    #[test]
    fn stacks_follow_fork_lineage_and_merge() {
        let events = vec![
            state(lineage_op::ROOT, 1, 0, "main:b0", 0),
            state(lineage_op::FORK, 2, 1, "main:b2", 5), // billed to #1
            state(lineage_op::FORK, 3, 2, "g:b1", 7),    // billed to #2
            state(lineage_op::EXIT, 3, 0, "exit", 2),
            state(lineage_op::EXIT, 2, 0, "exit", 1),
            state(lineage_op::EXIT, 1, 0, "exit", 4),
            // Second run re-uses the same root loc: stacks merge.
            state(lineage_op::ROOT, 4, 0, "main:b0", 3),
        ];
        let text = flame(&events, Metric::SolverNodes);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "main:b0 12",             // #1: 5+4, plus #4's 3
                "main:b0;main:b2 8",      // #2: 7 fork + 1 exit
                "main:b0;main:b2;g:b1 2", // #3
            ]
        );
        let steps = flame(&events, Metric::Steps);
        assert!(steps.contains("main:b0;main:b2;g:b1 20"), "{steps}");
    }

    #[test]
    fn zero_weights_are_dropped() {
        let events = vec![state(lineage_op::ROOT, 1, 0, "main:b0", 0)];
        assert_eq!(flame(&events, Metric::SolverUs), "");
    }
}
