//! `statsym-inspect critical-path`: which candidate attempt bounded a
//! portfolio run, and how much work was wasted getting there.
//!
//! Works on any trace with `candidate.attempt` spans — sequential runs
//! degenerate to "the critical path is the whole loop". For portfolio
//! traces the merged buffers preserve each worker's own span durations,
//! so the longest attempt is the parallel wall-clock bound, the sum of
//! attempts is the sequential-equivalent cost, and their ratio is the
//! achieved parallelism. Overshoot attempts (merged under
//! `portfolio.overshoot.`) count toward wasted work: the sequential
//! loop would never have run them.

use statsym_telemetry::{names, FieldValue, TraceEvent};

/// One reconstructed candidate attempt.
#[derive(Debug, Clone)]
struct Attempt {
    /// Candidate rank, from the paired `candidate.result` event.
    index: Option<u64>,
    /// Whether this attempt verified the fault.
    found: bool,
    /// Executor steps spent, from the result event.
    steps: u64,
    /// Span duration in trace ticks.
    ticks: u64,
    /// True for `portfolio.overshoot.`-prefixed attempts.
    overshoot: bool,
}

fn field<'e>(fields: &'e [(String, FieldValue)], key: &str) -> Option<&'e FieldValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Reconstructs the per-attempt timeline from a parsed trace.
fn attempts(events: &[TraceEvent]) -> Vec<Attempt> {
    let overshoot_attempt = format!(
        "{}{}",
        names::PORTFOLIO_OVERSHOOT_PREFIX,
        names::CANDIDATE_ATTEMPT
    );
    let overshoot_result = format!(
        "{}{}",
        names::PORTFOLIO_OVERSHOOT_PREFIX,
        names::CANDIDATE_RESULT
    );
    // Attempt spans currently open: (span id, open tick, overshoot).
    let mut open: Vec<(u64, u64, bool)> = Vec::new();
    let mut out: Vec<Attempt> = Vec::new();
    // Attempts closed but not yet matched to their result event, per
    // kind — each worker emits the result right after its span closes,
    // and rank-ordered merging preserves that adjacency.
    let mut unmatched: Vec<usize> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::SpanOpen { t, id, name, .. }
                if name == names::CANDIDATE_ATTEMPT || *name == overshoot_attempt =>
            {
                open.push((*id, *t, *name == overshoot_attempt));
            }
            TraceEvent::SpanClose { t, id } => {
                if let Some(pos) = open.iter().rposition(|(oid, _, _)| oid == id) {
                    let (_, opened, overshoot) = open.remove(pos);
                    unmatched.push(out.len());
                    out.push(Attempt {
                        index: None,
                        found: false,
                        steps: 0,
                        ticks: t.saturating_sub(opened),
                        overshoot,
                    });
                }
            }
            TraceEvent::Event { name, fields, .. }
                if name == names::CANDIDATE_RESULT || *name == overshoot_result =>
            {
                if let Some(at) = unmatched.pop() {
                    let a = &mut out[at];
                    a.index = field(fields, "index").and_then(FieldValue::as_u64);
                    a.found = field(fields, "found").and_then(FieldValue::as_str) == Some("true");
                    a.steps = field(fields, "steps")
                        .and_then(FieldValue::as_u64)
                        .unwrap_or(0);
                }
            }
            _ => {}
        }
    }
    out
}

/// Renders the critical-path analysis for a parsed trace.
pub fn critical_path(events: &[TraceEvent]) -> String {
    let attempts = attempts(events);
    if attempts.is_empty() {
        return "no candidate attempts in trace\n".to_string();
    }

    let workers = events.iter().find_map(|e| match e {
        TraceEvent::Counter { name, value } if name == names::PORTFOLIO_WORKERS => Some(*value),
        _ => None,
    });

    let mut out = String::new();
    out.push_str(&format!(
        "critical path over {} attempt(s){}\n\n",
        attempts.len(),
        workers.map_or(String::new(), |w| format!(" ({w} portfolio workers)")),
    ));
    out.push_str(&format!(
        "  {:<6} {:>10} {:>12} {:>7} {:>10}\n",
        "rank", "steps", "ticks", "found", "kind"
    ));
    for a in &attempts {
        out.push_str(&format!(
            "  {:<6} {:>10} {:>12} {:>7} {:>10}\n",
            a.index.map_or("?".to_string(), |i| i.to_string()),
            a.steps,
            a.ticks,
            if a.found { "yes" } else { "no" },
            if a.overshoot { "overshoot" } else { "ranked" },
        ));
    }

    let total_ticks: u64 = attempts.iter().map(|a| a.ticks).sum();
    let bound = attempts
        .iter()
        .max_by_key(|a| a.ticks)
        .expect("non-empty attempts");
    let total_steps: u64 = attempts.iter().map(|a| a.steps).sum();
    let useful_steps: u64 = attempts
        .iter()
        .filter(|a| a.found && !a.overshoot)
        .map(|a| a.steps)
        .sum();
    let wasted = if total_steps == 0 {
        0.0
    } else {
        100.0 * (total_steps - useful_steps) as f64 / total_steps as f64
    };

    out.push_str(&format!(
        "\n  bounding attempt: rank {} ({} ticks, {:.1}% of summed attempt time)\n",
        bound.index.map_or("?".to_string(), |i| i.to_string()),
        bound.ticks,
        if total_ticks == 0 {
            0.0
        } else {
            100.0 * bound.ticks as f64 / total_ticks as f64
        },
    ));
    if bound.ticks > 0 {
        out.push_str(&format!(
            "  parallelism (summed / bounding): {:.2}x\n",
            total_ticks as f64 / bound.ticks as f64
        ));
    }
    out.push_str(&format!(
        "  wasted work: {wasted:.1}% of {total_steps} steps \
         (everything but the winning attempt)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::{names, Clock, FieldValue};
    use statsym_telemetry::{BufferedRecorder, ClockMode, MemRecorder, Recorder};

    fn record_attempt(rec: &dyn Recorder, index: u64, steps: u64, found: bool) {
        let sp = rec.span_open(names::CANDIDATE_ATTEMPT);
        rec.tick(steps);
        rec.span_close(sp);
        rec.event(
            names::CANDIDATE_RESULT,
            &[
                ("index", FieldValue::from(index)),
                ("path_len", FieldValue::from(1u64)),
                ("found", FieldValue::from(found)),
                ("paths_explored", FieldValue::from(1u64)),
                ("steps", FieldValue::from(steps)),
            ],
        );
    }

    #[test]
    fn reconstructs_ranked_and_overshoot_attempts() {
        let rec = MemRecorder::new(Clock::steps());
        let root = rec.span_open(names::PORTFOLIO);
        rec.counter_add(names::PORTFOLIO_WORKERS, 4);
        for (i, steps, found) in [(0u64, 100u64, false), (1, 40, true)] {
            let w = BufferedRecorder::new(ClockMode::Steps);
            record_attempt(&w, i, steps, found);
            rec.merge_buffer(&w.finish(), None);
        }
        let w = BufferedRecorder::new(ClockMode::Steps);
        record_attempt(&w, 2, 60, false);
        rec.merge_buffer(&w.finish(), Some(names::PORTFOLIO_OVERSHOOT_PREFIX));
        rec.span_close(root);

        let text = critical_path(&rec.finish());
        assert!(
            text.contains("3 attempt(s) (4 portfolio workers)"),
            "{text}"
        );
        assert!(text.contains("bounding attempt: rank 0"), "{text}");
        // 100 + 40 + 60 = 200 steps total; the winner used 40.
        assert!(text.contains("wasted work: 80.0% of 200 steps"), "{text}");
        assert!(text.contains("overshoot"), "{text}");
        assert!(
            text.contains("parallelism (summed / bounding): 2.00x"),
            "{text}"
        );
    }

    #[test]
    fn empty_trace_reports_no_attempts() {
        assert_eq!(critical_path(&[]), "no candidate attempts in trace\n");
    }
}
