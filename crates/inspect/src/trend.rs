//! `statsym-inspect trend` / `regress`: cross-run analytics over a
//! manifest archive.
//!
//! Where `diff` compares a run against one frozen baseline, `trend`
//! compares the archive's **last** run against a sliding window of its
//! predecessors, per metric, using robust statistics: the window median
//! and the MAD-derived sigma (1.4826·MAD — the consistency constant
//! that makes the MAD estimate the standard deviation under normality).
//! A metric regresses when the last value sits more than `--sigma`
//! robust deviations above the window median (increases only: every
//! manifest metric is a cost). A zero-MAD window — the common case for
//! deterministic steps-clock runs, where the window is byte-identical —
//! degenerates to "any increase beyond `--min-delta` regresses".
//!
//! `regress` answers the follow-up question: *which run broke it?* It
//! takes the earliest `--window` runs as the baseline and scans forward
//! for the first run whose value deviates beyond the same robust
//! threshold — first-bad-run isolation without a rebuild-and-bisect
//! loop, because the archive already holds every data point.

use statsym_telemetry::manifest::RunManifest;

/// Options shared by [`trend`] and [`regress`].
#[derive(Debug, Clone)]
pub struct TrendOpts {
    /// Window size: how many preceding runs form the baseline.
    pub window: usize,
    /// Robust z-score above which an increase is a regression.
    pub sigma: f64,
    /// Minimum absolute increase for a regression (and the entire
    /// threshold when the window has zero spread).
    pub min_delta: f64,
    /// Metric-name prefixes to analyze (empty = every folded metric).
    pub metrics: Vec<String>,
    /// Keep only records with this `source`.
    pub source: Option<String>,
    /// Keep only records with this `run` name.
    pub run: Option<String>,
}

impl Default for TrendOpts {
    fn default() -> Self {
        TrendOpts {
            window: 8,
            sigma: 3.0,
            min_delta: 0.0,
            metrics: Vec::new(),
            source: None,
            run: None,
        }
    }
}

/// Fewest baseline values a metric needs before it is gateable.
const MIN_WINDOW: usize = 3;

/// The rendered trend table plus the regression verdict.
#[derive(Debug)]
pub struct TrendReport {
    /// Human-readable per-metric table.
    pub rendered: String,
    /// Metrics whose last value regressed beyond the threshold.
    pub regressions: usize,
}

/// Median of a non-empty sorted slice.
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// `(median, mad)` of a non-empty value set.
fn median_mad(values: &[f64]) -> (f64, f64) {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median_sorted(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|v| (v - med).abs()).collect();
    dev.sort_by(f64::total_cmp);
    (med, median_sorted(&dev))
}

/// The consistency constant turning a MAD into a normal-equivalent
/// standard deviation.
const MAD_SIGMA: f64 = 1.4826;

/// One metric's windowed verdict.
#[derive(Debug, PartialEq)]
enum Verdict {
    /// Within the robust band (or an improvement).
    Ok,
    /// Increase beyond the threshold.
    Regression,
    /// Fewer than [`MIN_WINDOW`] baseline values carry the metric.
    New,
}

/// Evaluates one metric: baseline `window` values vs `last`.
fn judge(window: &[f64], last: f64, opts: &TrendOpts) -> (Verdict, f64, f64, f64) {
    if window.len() < MIN_WINDOW {
        return (Verdict::New, 0.0, 0.0, 0.0);
    }
    let (med, mad) = median_mad(window);
    let spread = MAD_SIGMA * mad;
    let delta = last - med;
    let z = if spread > 0.0 {
        delta / spread
    } else if delta > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let regressed = if spread > 0.0 {
        delta > opts.min_delta && z > opts.sigma
    } else {
        delta > opts.min_delta
    };
    (
        if regressed {
            Verdict::Regression
        } else {
            Verdict::Ok
        },
        med,
        mad,
        z,
    )
}

/// The archive records matching the `source`/`run` filters, in order.
fn matching<'a>(manifests: &'a [RunManifest], opts: &TrendOpts) -> Vec<&'a RunManifest> {
    manifests
        .iter()
        .filter(|m| opts.source.as_ref().is_none_or(|s| &m.source == s))
        .filter(|m| opts.run.as_ref().is_none_or(|r| &m.run == r))
        .collect()
}

/// A manifest's value for `metric`: a folded counter, a folded gauge,
/// or the pseudo-metric `ticks`.
fn metric_value(m: &RunManifest, metric: &str) -> Option<f64> {
    if metric == "ticks" {
        return Some(m.ticks as f64);
    }
    if let Some(v) = m.counters.get(metric) {
        return Some(*v as f64);
    }
    m.gauges.get(metric).map(|v| *v as f64)
}

/// Metric names the last run carries, prefix-filtered, `ticks` first.
fn metric_names(last: &RunManifest, opts: &TrendOpts) -> Vec<String> {
    let mut names = vec!["ticks".to_string()];
    names.extend(last.counters.keys().cloned());
    names.extend(last.gauges.keys().cloned());
    if !opts.metrics.is_empty() {
        names.retain(|n| opts.metrics.iter().any(|p| n.starts_with(p)));
    }
    names
}

fn fmt(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.1}")
    }
}

/// Renders the windowed trend table for the archive's last matching run.
///
/// # Errors
///
/// Returns a rendered error when the filters match nothing at all (a
/// thin-but-nonempty archive renders a "not enough history" note and
/// gates clean instead — seeding order must not fail CI).
pub fn trend(manifests: &[RunManifest], opts: &TrendOpts) -> Result<TrendReport, String> {
    let rows = matching(manifests, opts);
    if rows.is_empty() {
        return Err("no archive records match the filters".to_string());
    }
    let (last, base) = rows.split_last().expect("nonempty");
    let window: Vec<&RunManifest> = base.iter().rev().take(opts.window).rev().copied().collect();
    let mut out = format!(
        "trend: last of {} matching run(s) vs window of {} (sigma {}, min-delta {})\n",
        rows.len(),
        window.len(),
        opts.sigma,
        opts.min_delta
    );
    if window.len() < MIN_WINDOW {
        out.push_str(&format!(
            "\nnot enough history ({} baseline run(s), need >= {MIN_WINDOW}) — nothing to gate\n",
            window.len()
        ));
        return Ok(TrendReport {
            rendered: out,
            regressions: 0,
        });
    }
    out.push_str(&format!(
        "\n  {:<40} {:>3} {:>12} {:>8} {:>12} {:>8}  verdict\n",
        "metric", "n", "median", "mad", "last", "z"
    ));
    let mut regressions = 0usize;
    for name in metric_names(last, opts) {
        let values: Vec<f64> = window
            .iter()
            .filter_map(|m| metric_value(m, &name))
            .collect();
        let last_v = metric_value(last, &name).expect("name taken from last run");
        let (verdict, med, mad, z) = judge(&values, last_v, opts);
        let (verdict_s, z_s) = match verdict {
            Verdict::Ok => ("ok", format!("{z:>8.1}")),
            Verdict::Regression => {
                regressions += 1;
                (
                    "REGRESSION",
                    if z.is_infinite() {
                        format!("{:>8}", "inf")
                    } else {
                        format!("{z:>8.1}")
                    },
                )
            }
            Verdict::New => ("new", format!("{:>8}", "-")),
        };
        out.push_str(&format!(
            "  {:<40} {:>3} {:>12} {:>8} {:>12} {}  {}\n",
            name,
            values.len(),
            fmt(med),
            fmt(mad),
            fmt(last_v),
            z_s,
            verdict_s
        ));
    }
    out.push_str(&format!("\n{regressions} regression(s)\n"));
    Ok(TrendReport {
        rendered: out,
        regressions,
    })
}

/// Isolates the first archive run whose `metric` deviates beyond the
/// robust threshold derived from the earliest `--window` runs. Renders
/// either the first bad run's identity or a no-regression note.
///
/// # Errors
///
/// Returns a rendered error when the filters match nothing, the metric
/// is absent from the baseline, or the baseline is too thin to trust.
pub fn regress(
    manifests: &[RunManifest],
    metric: &str,
    opts: &TrendOpts,
) -> Result<String, String> {
    let rows = matching(manifests, opts);
    if rows.is_empty() {
        return Err("no archive records match the filters".to_string());
    }
    let baseline: Vec<f64> = rows
        .iter()
        .take(opts.window)
        .filter_map(|m| metric_value(m, metric))
        .collect();
    if baseline.len() < MIN_WINDOW {
        return Err(format!(
            "metric `{metric}` appears in only {} of the first {} run(s); \
             need >= {MIN_WINDOW} baseline values",
            baseline.len(),
            opts.window.min(rows.len())
        ));
    }
    let (med, mad) = median_mad(&baseline);
    let threshold = med + (opts.sigma * MAD_SIGMA * mad).max(opts.min_delta);
    let mut out = format!(
        "regress {metric}: baseline median {} over first {} run(s), threshold {}\n",
        fmt(med),
        baseline.len(),
        fmt(threshold)
    );
    for (i, m) in rows.iter().enumerate().skip(opts.window.min(rows.len())) {
        let Some(v) = metric_value(m, metric) else {
            continue;
        };
        if v > threshold {
            out.push_str(&format!(
                "first bad run: #{} id {} run {} git {} — {metric} {} (baseline {})\n",
                i + 1,
                m.id(),
                m.run,
                m.git,
                fmt(v),
                fmt(med)
            ));
            return Ok(out);
        }
    }
    out.push_str("no run deviates beyond the threshold\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(steps: u64) -> RunManifest {
        let mut m = RunManifest {
            source: "bench".to_string(),
            run: "grep".to_string(),
            git: "abc123def456".to_string(),
            clock: "steps".to_string(),
            ticks: steps / 2,
            budget: "none".to_string(),
            ..RunManifest::default()
        };
        m.counters.insert("symex.steps".to_string(), steps);
        m.gauges.insert("symex.peak_live_states".to_string(), 5);
        m
    }

    fn archive(steps: &[u64]) -> Vec<RunManifest> {
        steps.iter().map(|&s| run(s)).collect()
    }

    #[test]
    fn identical_deterministic_runs_gate_clean() {
        let ms = archive(&[100; 10]);
        let r = trend(&ms, &TrendOpts::default()).unwrap();
        assert_eq!(r.regressions, 0, "{}", r.rendered);
        assert!(r.rendered.contains("symex.steps"), "{}", r.rendered);
        assert!(r.rendered.contains("0 regression(s)"), "{}", r.rendered);
    }

    #[test]
    fn spike_over_flat_window_regresses_with_infinite_z() {
        let mut ms = archive(&[100; 9]);
        ms.push(run(500));
        let r = trend(&ms, &TrendOpts::default()).unwrap();
        assert_eq!(
            r.regressions, 2,
            "steps and ticks both spike: {}",
            r.rendered
        );
        assert!(r.rendered.contains("inf  REGRESSION"), "{}", r.rendered);
    }

    #[test]
    fn noisy_window_needs_a_real_outlier() {
        // Window spread ±2 around 100: a 3-sigma bar sits near 109.
        let base = [98, 100, 102, 99, 101, 100, 98, 102];
        let mut ms = archive(&base);
        ms.push(run(104));
        let r = trend(&ms, &TrendOpts::default()).unwrap();
        let steps_row = r
            .rendered
            .lines()
            .find(|l| l.contains("symex.steps"))
            .unwrap()
            .to_string();
        assert!(steps_row.ends_with("ok"), "{steps_row}");

        let mut ms = archive(&base);
        ms.push(run(150));
        let r = trend(&ms, &TrendOpts::default()).unwrap();
        assert!(r.regressions >= 1, "{}", r.rendered);
    }

    #[test]
    fn improvements_never_regress() {
        let mut ms = archive(&[100; 9]);
        ms.push(run(40));
        let r = trend(&ms, &TrendOpts::default()).unwrap();
        assert_eq!(r.regressions, 0, "{}", r.rendered);
    }

    #[test]
    fn min_delta_absorbs_flat_window_jitter() {
        let mut ms = archive(&[100; 9]);
        ms.push(run(103));
        let strict = trend(&ms, &TrendOpts::default()).unwrap();
        assert!(strict.regressions >= 1, "{}", strict.rendered);
        let lenient = trend(
            &ms,
            &TrendOpts {
                min_delta: 5.0,
                ..TrendOpts::default()
            },
        )
        .unwrap();
        assert_eq!(lenient.regressions, 0, "{}", lenient.rendered);
    }

    #[test]
    fn thin_archive_notes_and_gates_clean() {
        let ms = archive(&[100, 100, 100]);
        let r = trend(&ms, &TrendOpts::default()).unwrap();
        assert_eq!(r.regressions, 0);
        assert!(r.rendered.contains("not enough history"), "{}", r.rendered);
        assert!(trend(&[], &TrendOpts::default()).is_err());
    }

    #[test]
    fn metric_prefix_filter_restricts_the_table() {
        let ms = archive(&[100; 10]);
        let r = trend(
            &ms,
            &TrendOpts {
                metrics: vec!["symex.".to_string()],
                ..TrendOpts::default()
            },
        )
        .unwrap();
        assert!(r.rendered.contains("symex.steps"), "{}", r.rendered);
        assert!(!r.rendered.contains("\n  ticks"), "{}", r.rendered);
    }

    #[test]
    fn source_filter_selects_the_right_series() {
        let mut ms = archive(&[100; 10]);
        for m in &mut ms {
            m.source = "testkit".to_string();
        }
        ms.extend(archive(&[100; 9]));
        ms.push(run(999));
        let r = trend(
            &ms,
            &TrendOpts {
                source: Some("testkit".to_string()),
                ..TrendOpts::default()
            },
        )
        .unwrap();
        assert_eq!(r.regressions, 0, "testkit series is flat: {}", r.rendered);
    }

    #[test]
    fn regress_isolates_the_first_bad_run() {
        // 8 good, then the break, then more bad runs.
        let mut steps: Vec<u64> = vec![100; 8];
        steps.extend([100, 480, 500, 505]);
        let ms = archive(&steps);
        let out = regress(&ms, "symex.steps", &TrendOpts::default()).unwrap();
        assert!(out.contains("first bad run: #10"), "{out}");
        assert!(out.contains("symex.steps 480"), "{out}");

        let clean = archive(&[100; 12]);
        let out = regress(&clean, "symex.steps", &TrendOpts::default()).unwrap();
        assert!(out.contains("no run deviates"), "{out}");
    }

    #[test]
    fn regress_rejects_unknown_metric() {
        let ms = archive(&[100; 10]);
        let err = regress(&ms, "no.such", &TrendOpts::default()).unwrap_err();
        assert!(err.contains("no.such"), "{err}");
    }

    #[test]
    fn gauges_and_ticks_are_analyzable_metrics() {
        let ms = archive(&[100; 10]);
        let r = trend(&ms, &TrendOpts::default()).unwrap();
        assert!(
            r.rendered.contains("symex.peak_live_states"),
            "{}",
            r.rendered
        );
        assert!(r.rendered.contains("ticks"), "{}", r.rendered);
        let out = regress(&ms, "ticks", &TrendOpts::default()).unwrap();
        assert!(out.contains("no run deviates"), "{out}");
    }
}
