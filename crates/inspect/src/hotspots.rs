//! `statsym-inspect hotspots`: the per-source-line cost table.
//!
//! An `--attribution` trace carries `attr.<func>:<line>.<dim>` counters
//! billing every executor step, fork, suspension, solver query, search
//! node, and (wall clock only) solver µs to the MiniC source location
//! that incurred it. This view folds them into one row per location
//! ([`statsym_telemetry::TraceSummary::attr_locs`]), ranks by a chosen
//! dimension, and shows the share of the total each line explains.
//!
//! Attribution counters fold by name across workers and segments, so
//! the table is identical at any portfolio or state-worker count —
//! `--format json` output is cmp-gateable in CI. `--format flame`
//! emits collapsed stacks (`func;line weight`) compatible with
//! inferno / speedscope / flamegraph.pl.

use statsym_telemetry::{names, push_json_str, TraceEvent, TraceSummary};

/// Output format of the hotspots view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable table.
    Text,
    /// One JSON object, stable key order, integers only.
    Json,
    /// Collapsed-stack lines (`func;line weight`) for flamegraph tools.
    Flame,
}

impl Format {
    /// Parses a `--format` value.
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown formats.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "flame" => Ok(Format::Flame),
            other => Err(format!(
                "unknown format `{other}` (expected text, json or flame)"
            )),
        }
    }
}

/// Options for [`hotspots`].
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Index into [`names::ATTR_DIMS`] selecting the ranking dimension.
    pub metric: usize,
    /// Keep at most this many rows (text format only).
    pub top: usize,
    /// Drop rows explaining less than this per-mille share of the
    /// metric total (applies to all formats).
    pub min_millipct: u64,
    /// Output format.
    pub format: Format,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            metric: 0,
            top: 20,
            min_millipct: 0,
            format: Format::Text,
        }
    }
}

/// Parses a `--metric` value into an [`names::ATTR_DIMS`] index.
///
/// # Errors
///
/// Returns a usage message listing the valid dimensions.
pub fn parse_metric(s: &str) -> Result<usize, String> {
    names::ATTR_DIMS
        .iter()
        .position(|d| *d == s)
        .ok_or_else(|| {
            format!(
                "unknown metric `{s}` (expected one of: {})",
                names::ATTR_DIMS.join(", ")
            )
        })
}

/// Renders the per-source-line cost table for a parsed trace.
pub fn hotspots(events: &[TraceEvent], opts: &Opts) -> String {
    let locs = TraceSummary::from_events(events).attr_locs();
    if locs.is_empty() {
        return match opts.format {
            Format::Json => "{\"metric\":\"steps\",\"total\":0,\"locs\":[]}\n".to_string(),
            Format::Flame => String::new(),
            Format::Text => {
                "no attr.* counters in trace (recorded without --attribution?)\n".to_string()
            }
        };
    }

    let metric = opts.metric.min(names::ATTR_DIMS.len() - 1);
    let total: u64 = locs.values().map(|d| d[metric]).sum();
    // Per-mille share of the ranking metric; everything stays integer so
    // the JSON form is byte-comparable across runs and worker counts.
    let share = |v: u64| -> u64 {
        if total == 0 {
            0
        } else {
            (v as u128 * 1000 / total as u128) as u64
        }
    };

    // BTreeMap iteration is already location-sorted; re-sort by the
    // chosen metric (desc) with the location as deterministic tie-break.
    let mut rows: Vec<(&String, &[u64; 6])> = locs.iter().collect();
    rows.sort_by(|a, b| b.1[metric].cmp(&a.1[metric]).then(a.0.cmp(b.0)));
    rows.retain(|(_, d)| share(d[metric]) >= opts.min_millipct);

    match opts.format {
        Format::Flame => {
            // Collapsed stacks sort lexicographically, like `flame`.
            let mut stacks: Vec<(String, u64)> = rows
                .iter()
                .filter(|(_, d)| d[metric] > 0)
                .map(|(loc, d)| (loc.replacen(':', ";", 1), d[metric]))
                .collect();
            stacks.sort();
            let mut out = String::new();
            for (stack, weight) in stacks {
                out.push_str(&format!("{stack} {weight}\n"));
            }
            out
        }
        Format::Json => {
            let mut s = String::with_capacity(256);
            s.push_str(&format!(
                "{{\"metric\":\"{}\",\"total\":{total},\"locs\":[",
                names::ATTR_DIMS[metric]
            ));
            for (i, (loc, d)) in rows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("{\"loc\":");
                push_json_str(&mut s, loc);
                for (j, dim) in names::ATTR_DIMS.iter().enumerate() {
                    s.push_str(&format!(",\"{dim}\":{}", d[j]));
                }
                s.push_str(&format!(",\"share_milli\":{}}}", share(d[metric])));
            }
            s.push_str("]}\n");
            s
        }
        Format::Text => {
            let shown = rows.len().min(opts.top);
            let loc_w = rows[..shown]
                .iter()
                .map(|(loc, _)| loc.len())
                .max()
                .unwrap_or(0)
                .max(8);
            let mut out = format!(
                "source hotspots by {} ({} location(s), total {total})\n\n",
                names::ATTR_DIMS[metric],
                rows.len()
            );
            out.push_str(&format!(
                "  {:<loc_w$} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>6}\n",
                "location", "steps", "forks", "susp", "queries", "nodes", "us", "%"
            ));
            for (loc, d) in &rows[..shown] {
                out.push_str(&format!(
                    "  {loc:<loc_w$} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>6}\n",
                    d[0],
                    d[1],
                    d[2],
                    d[3],
                    d[4],
                    d[5],
                    format!("{}.{}", share(d[metric]) / 10, share(d[metric]) % 10),
                ));
            }
            if rows.len() > shown {
                out.push_str(&format!("  … {} more location(s)\n", rows.len() - shown));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, value: u64) -> TraceEvent {
        TraceEvent::Counter {
            name: name.into(),
            value,
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            counter("attr.main:3.steps", 60),
            counter("attr.main:3.nodes", 5),
            counter("attr.convert:7.steps", 30),
            counter("attr.convert:7.queries", 4),
            counter("attr.exit:0.steps", 10),
            // Overshoot rename prefix: excluded from the canonical map.
            counter("portfolio.overshoot.attr.main:3.steps", 999),
        ]
    }

    #[test]
    fn ranks_locations_by_metric_with_shares() {
        let text = hotspots(&sample(), &Opts::default());
        let main = text.find("main:3").expect("main row");
        let conv = text.find("convert:7").expect("convert row");
        let exit = text.find("exit:0").expect("exit row");
        assert!(main < conv && conv < exit, "{text}");
        assert!(text.contains("total 100"), "{text}");
        assert!(text.contains("60.0"), "{text}");
        assert!(!text.contains("999"), "{text}");
        assert_eq!(text, hotspots(&sample(), &Opts::default()));
    }

    #[test]
    fn metric_and_min_pct_filter_rows() {
        let opts = Opts {
            metric: parse_metric("queries").unwrap(),
            min_millipct: 500,
            ..Opts::default()
        };
        let text = hotspots(&sample(), &opts);
        // convert:7 holds 100% of the queries; the others hold 0%.
        assert!(text.contains("convert:7"), "{text}");
        assert!(!text.contains("main:3"), "{text}");
    }

    #[test]
    fn top_truncates_rows() {
        let opts = Opts {
            top: 1,
            ..Opts::default()
        };
        let text = hotspots(&sample(), &opts);
        assert!(text.contains("… 2 more location(s)"), "{text}");
    }

    #[test]
    fn json_is_stable_and_parseable() {
        let opts = Opts {
            format: Format::Json,
            ..Opts::default()
        };
        let json = hotspots(&sample(), &opts);
        assert!(
            json.starts_with("{\"metric\":\"steps\",\"total\":100,\"locs\":[{\"loc\":\"main:3\""),
            "{json}"
        );
        assert!(
            json.contains("\"steps\":60") && json.contains("\"share_milli\":600"),
            "{json}"
        );
        crate::numjson::flatten(&json).unwrap();
        assert_eq!(json, hotspots(&sample(), &opts));
    }

    #[test]
    fn flame_emits_collapsed_stacks() {
        let opts = Opts {
            format: Format::Flame,
            ..Opts::default()
        };
        let out = hotspots(&sample(), &opts);
        assert_eq!(out, "convert;7 30\nexit;0 10\nmain;3 60\n");
    }

    #[test]
    fn empty_trace_is_reported_per_format() {
        assert!(hotspots(&[], &Opts::default()).contains("no attr.*"));
        let json = hotspots(
            &[],
            &Opts {
                format: Format::Json,
                ..Opts::default()
            },
        );
        assert_eq!(json, "{\"metric\":\"steps\",\"total\":0,\"locs\":[]}\n");
        let flame = hotspots(
            &[],
            &Opts {
                format: Format::Flame,
                ..Opts::default()
            },
        );
        assert!(flame.is_empty());
    }

    #[test]
    fn parse_helpers_reject_unknown_values() {
        assert_eq!(parse_metric("nodes"), Ok(4));
        assert!(parse_metric("bogus").is_err());
        assert_eq!(Format::parse("flame"), Ok(Format::Flame));
        assert!(Format::parse("xml").is_err());
    }
}
