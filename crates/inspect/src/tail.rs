//! The shared tail/render loop used by the `watch` (file-polling) and
//! `live` (stream-fed) dashboards.
//!
//! Both commands redraw a full-screen text frame whenever their source
//! changed and sleep otherwise. [`Backoff`] owns the sleep policy: the
//! delay starts at the configured interval and doubles while the source
//! is idle (a finished-but-unclosed run stops burning a fixed-rate
//! poll), snapping back to the base interval on the first sign of new
//! data. [`Screen`] owns the ANSI redraw protocol (clear once, then
//! home-and-clear-below per frame, so refreshes do not flicker).

use std::time::Duration;

/// Adaptive poll delay: doubles while idle, resets when active.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    max_ms: u64,
    cur_ms: u64,
}

impl Backoff {
    /// Growth cap as a multiple of the base interval.
    const MAX_FACTOR: u64 = 8;

    /// A backoff starting (and restarting) at `base_ms` milliseconds.
    pub fn new(base_ms: u64) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff {
            base_ms,
            max_ms: base_ms.saturating_mul(Self::MAX_FACTOR),
            cur_ms: base_ms,
        }
    }

    /// The delay to sleep after an idle poll; each call doubles the next
    /// one up to the cap.
    pub fn idle(&mut self) -> Duration {
        let d = Duration::from_millis(self.cur_ms);
        self.cur_ms = self.cur_ms.saturating_mul(2).min(self.max_ms);
        d
    }

    /// The source produced data: snap back to the base interval.
    pub fn active(&mut self) -> Duration {
        self.cur_ms = self.base_ms;
        Duration::from_millis(self.base_ms)
    }

    /// The current delay without mutating the schedule.
    pub fn current(&self) -> Duration {
        Duration::from_millis(self.cur_ms)
    }
}

/// In-place full-screen redraws over ANSI: `\x1b[2J` once, then
/// `\x1b[H…\x1b[J` per frame. In plain mode (`--no-color`, for CI logs
/// and pipes) frames are appended verbatim with no escape codes.
#[derive(Debug, Default)]
pub struct Screen {
    first: bool,
    plain: bool,
}

impl Screen {
    /// A screen that clears on its first draw.
    pub fn new() -> Screen {
        Screen {
            first: true,
            plain: false,
        }
    }

    /// A screen that appends frames without any ANSI escapes.
    pub fn plain() -> Screen {
        Screen {
            first: true,
            plain: true,
        }
    }

    /// Draws `text` as the whole screen, without flicker (or, in plain
    /// mode, appends the frame).
    pub fn draw(&mut self, text: &str) {
        use std::io::Write as _;
        if self.plain {
            if !self.first {
                println!();
            }
            self.first = false;
            print!("{text}");
            let _ = std::io::stdout().flush();
            return;
        }
        if self.first {
            // Clear once so the first frame starts on a clean screen.
            print!("\x1b[2J");
            self.first = false;
        }
        // Home the cursor and clear below: an in-place redraw without
        // flicker on every refresh.
        print!("\x1b[H{text}\x1b[J");
        let _ = std::io::stdout().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_while_idle_and_resets_on_activity() {
        let mut b = Backoff::new(100);
        assert_eq!(b.idle(), Duration::from_millis(100));
        assert_eq!(b.idle(), Duration::from_millis(200));
        assert_eq!(b.idle(), Duration::from_millis(400));
        assert_eq!(b.active(), Duration::from_millis(100));
        assert_eq!(b.idle(), Duration::from_millis(100));
        for _ in 0..20 {
            b.idle();
        }
        assert_eq!(b.current(), Duration::from_millis(800), "capped at 8x");
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut b = Backoff::new(0);
        assert_eq!(b.idle(), Duration::from_millis(1));
    }
}
