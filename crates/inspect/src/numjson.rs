//! A tolerant numeric-JSON flattener for bench reports.
//!
//! The canonical trace format is deliberately float-free, but the bench
//! binaries emit ordinary JSON with floating-point wall times
//! (`BENCH_portfolio.json` and friends). `statsym-inspect diff` compares
//! those too, so this module walks arbitrary JSON and returns every
//! *numeric* leaf as a `(path, value)` pair — `parallel[0].wall_s`,
//! `sequential_wall_s`, … Strings, booleans, and nulls are structural
//! context only and never become comparable leaves.

/// Flattens the numeric leaves of a JSON document into sorted
/// `(path, value)` pairs.
///
/// # Errors
///
/// Returns `(byte offset, reason)` for malformed JSON.
pub fn flatten(text: &str) -> Result<Vec<(String, f64)>, (usize, String)> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    p.skip_ws();
    p.value(String::new(), &mut out)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err((p.pos, "trailing characters after JSON value".into()));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), (usize, String)> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err((self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, path: String, out: &mut Vec<(String, f64)>) -> Result<(), (usize, String)> {
        match self.peek() {
            Some(b'{') => self.object(path, out),
            Some(b'[') => self.array(path, out),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => {
                let v = self.number()?;
                out.push((path, v));
                Ok(())
            }
            _ => Err((self.pos, "expected a JSON value".into())),
        }
    }

    fn object(
        &mut self,
        path: String,
        out: &mut Vec<(String, f64)>,
    ) -> Result<(), (usize, String)> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let child = if path.is_empty() {
                key
            } else {
                format!("{path}.{key}")
            };
            self.value(child, out)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err((self.pos, "expected `,` or `}` in object".into())),
            }
        }
    }

    fn array(&mut self, path: String, out: &mut Vec<(String, f64)>) -> Result<(), (usize, String)> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut i = 0usize;
        loop {
            self.skip_ws();
            self.value(format!("{path}[{i}]"), out)?;
            i += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err((self.pos, "expected `,` or `]` in array".into())),
            }
        }
    }

    fn string(&mut self) -> Result<String, (usize, String)> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err((self.pos, "unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or((self.pos, "truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| (self.pos, "bad \\u escape".to_string()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| (self.pos, "bad \\u escape".to_string()))?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err((self.pos, "bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = self.pos;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| (self.pos, "invalid UTF-8 in string".to_string()))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, (usize, String)> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A `-` inside an exponent (1e-3) stops the loop above; resume.
        while matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(), Some(b'-' | b'+'))
        {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or((start, "malformed number".into()))
    }

    fn literal(&mut self, word: &str) -> Result<(), (usize, String)> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err((self.pos, format!("expected `{word}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_numeric_leaves_with_paths() {
        let text = r#"{
            "app": "grep", "seed": 42, "sequential_wall_s": 1.25,
            "parallel": [
                {"workers": 2, "wall_s": 0.7, "ok": true},
                {"workers": 4, "wall_s": 0.4, "note": null}
            ]
        }"#;
        let flat = flatten(text).unwrap();
        let get = |k: &str| flat.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("seed"), Some(42.0));
        assert_eq!(get("sequential_wall_s"), Some(1.25));
        assert_eq!(get("parallel[0].workers"), Some(2.0));
        assert_eq!(get("parallel[1].wall_s"), Some(0.4));
        // Strings/bools/nulls are not leaves.
        assert_eq!(flat.len(), 6);
        // Sorted by path.
        let mut sorted = flat.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(flat, sorted);
    }

    #[test]
    fn parses_exponents_and_negatives() {
        let flat = flatten(r#"{"a": -3.5e-2, "b": 2E3}"#).unwrap();
        assert_eq!(flat, vec![("a".into(), -0.035), ("b".into(), 2000.0)]);
    }

    #[test]
    fn rejects_malformed_json_with_offset() {
        assert!(flatten("{\"a\": }").is_err());
        assert!(flatten("[1, 2").is_err());
        assert!(flatten("{} trailing").is_err());
    }
}
