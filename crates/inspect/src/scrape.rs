//! `statsym-inspect scrape`: one-shot client for a run's `--expose`
//! metrics endpoint.
//!
//! Connects to the TCP address (or Unix socket — any address containing
//! `/`) a `FanoutRecorder` exposition listener is serving on, and prints
//! the Prometheus text-format snapshot between the stream's `hello` and
//! `end` frames. The frames make the scrape self-describing: the hello
//! names the run (echoed to stderr) and the end frame proves the
//! snapshot was not cut off mid-write.

use statsym_telemetry::{StreamFrame, TRACE_VERSION};
use std::io::Read;

/// One completed scrape: the run name from the hello frame and the
/// snapshot body.
#[derive(Debug)]
pub struct Scrape {
    /// Run name announced by the hello frame.
    pub run: String,
    /// Prometheus text-format body between the frames.
    pub body: String,
}

/// Connects to `addr` and reads one full scrape.
///
/// # Errors
///
/// Returns a rendered error when the connection fails, the first line
/// is not a hello frame, or the server hangs up before its end frame.
pub fn fetch(addr: &str) -> Result<Scrape, String> {
    let mut text = String::new();
    if addr.contains('/') {
        #[cfg(unix)]
        {
            let mut conn = std::os::unix::net::UnixStream::connect(addr)
                .map_err(|e| format!("{addr}: cannot connect: {e}"))?;
            conn.read_to_string(&mut text)
                .map_err(|e| format!("{addr}: read failed: {e}"))?;
        }
        #[cfg(not(unix))]
        return Err(format!("{addr}: unix sockets unsupported on this platform"));
    } else {
        let mut conn = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("{addr}: cannot connect: {e}"))?;
        conn.read_to_string(&mut text)
            .map_err(|e| format!("{addr}: read failed: {e}"))?;
    }
    parse_scrape(addr, &text)
}

/// Splits a raw scrape into its frames and body (separated from the
/// socket I/O for tests).
///
/// # Errors
///
/// Returns a rendered error for a missing hello or end frame.
pub fn parse_scrape(addr: &str, text: &str) -> Result<Scrape, String> {
    let mut lines = text.lines();
    let run = match lines.next().map(StreamFrame::parse) {
        Some(Some(StreamFrame::Hello { version, run })) => {
            if version != TRACE_VERSION {
                eprintln!("warning: {run}: stream version {version}, expected {TRACE_VERSION}");
            }
            run
        }
        _ => return Err(format!("{addr}: endpoint did not open with a hello frame")),
    };
    let mut body = String::new();
    let mut ended = false;
    for line in lines {
        match StreamFrame::parse(line) {
            Some(StreamFrame::End { .. }) => {
                ended = true;
                break;
            }
            Some(StreamFrame::Hello { .. }) | None => {
                body.push_str(line);
                body.push('\n');
            }
        }
    }
    if !ended {
        return Err(format!(
            "{addr}: scrape cut off without an end frame ({} body line(s) read)",
            body.lines().count()
        ));
    }
    Ok(Scrape { run, body })
}

/// Runs the scrape command: prints the snapshot body to stdout (run
/// name to stderr). Returns the process exit code: 0 on a complete
/// scrape, 2 on connection or framing errors.
pub fn scrape(addr: &str) -> i32 {
    match fetch(addr) {
        Ok(s) => {
            eprintln!("run: {}", s.run);
            print!("{}", s.body);
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::expose::{render_prometheus, Exposer};
    use statsym_telemetry::Metrics;

    #[test]
    fn parse_scrape_requires_both_frames() {
        let hello = StreamFrame::Hello {
            version: TRACE_VERSION,
            run: "demo".to_string(),
        }
        .to_json_line();
        let end = StreamFrame::End { dropped: 0 }.to_json_line();

        let ok = format!("{hello}\nstatsym_symex_steps 5\n{end}\n");
        let s = parse_scrape("addr", &ok).expect("complete scrape");
        assert_eq!(s.run, "demo");
        assert_eq!(s.body, "statsym_symex_steps 5\n");

        let cut = format!("{hello}\nstatsym_symex_steps 5\n");
        let err = parse_scrape("addr", &cut).unwrap_err();
        assert!(err.contains("without an end frame"), "{err}");

        let headless = "statsym_symex_steps 5\n";
        let err = parse_scrape("addr", headless).unwrap_err();
        assert!(err.contains("hello frame"), "{err}");
    }

    #[test]
    fn fetch_reads_a_live_exposer_end_to_end() {
        let exp = Exposer::bind("127.0.0.1:0", "scrape-test").expect("bind");
        let m = Metrics::new();
        m.counter_add("symex.steps", 42);
        exp.update(render_prometheus(&m));
        let addr = exp.addr().to_string();
        // The accept loop polls; retry briefly until it serves.
        let mut last = String::new();
        for _ in 0..100 {
            match fetch(&addr) {
                Ok(s) => {
                    assert_eq!(s.run, "scrape-test");
                    assert!(s.body.contains("statsym_symex_steps 42"), "{}", s.body);
                    exp.shutdown();
                    return;
                }
                Err(e) => last = e,
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("scrape never succeeded: {last}");
    }
}
