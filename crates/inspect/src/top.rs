//! `statsym-inspect top`: the solver hot-spot profile.
//!
//! The engine tags every solver call with its callsite (`feasibility`,
//! `fault_model`, `concretize`, `report_model`), and the solver emits
//! per-site query counts, search-node deltas, and — under a wall clock
//! — query-latency histograms (`solver.site.<site>.*`). This view ranks
//! the sites by search nodes (the scheduling-independent work proxy)
//! and shows what fraction of total solver work each one explains.
//! Overshoot copies of the counters (`portfolio.overshoot.solver.site.*`)
//! are listed as their own rows: work the sequential loop never did.

use statsym_telemetry::{names, TraceEvent, TraceSummary};

#[derive(Debug, Default, Clone)]
struct Site {
    queries: u64,
    nodes: u64,
    lat_count: u64,
    lat_sum_us: u64,
}

/// Renders the per-callsite solver profile for a parsed trace.
pub fn top(events: &[TraceEvent], limit: usize) -> String {
    let s = TraceSummary::from_events(events);
    let overshoot_prefix = format!(
        "{}{}",
        names::PORTFOLIO_OVERSHOOT_PREFIX,
        names::SOLVER_SITE_PREFIX
    );

    // site label -> stats; overshoot sites get an "overshoot:" label.
    let mut sites: Vec<(String, Site)> = Vec::new();
    let site_mut = |label: String, sites: &mut Vec<(String, Site)>| -> usize {
        match sites.iter().position(|(n, _)| *n == label) {
            Some(i) => i,
            None => {
                sites.push((label, Site::default()));
                sites.len() - 1
            }
        }
    };
    let classify = |name: &str| -> Option<(String, &'static str)> {
        let (label_prefix, rest) = if let Some(rest) = name.strip_prefix(names::SOLVER_SITE_PREFIX)
        {
            ("", rest)
        } else if let Some(rest) = name.strip_prefix(&overshoot_prefix) {
            ("overshoot:", rest)
        } else {
            return None;
        };
        let (site, metric) = rest.rsplit_once('.')?;
        Some((
            format!("{label_prefix}{site}"),
            match metric {
                "queries" => "queries",
                "nodes" => "nodes",
                "query_us" => "query_us",
                _ => return None,
            },
        ))
    };

    for (name, v) in &s.counters {
        if let Some((label, metric)) = classify(name) {
            let i = site_mut(label, &mut sites);
            match metric {
                "queries" => sites[i].1.queries += v,
                "nodes" => sites[i].1.nodes += v,
                _ => {}
            }
        }
    }
    for h in &s.hists {
        if let Some((label, "query_us")) = classify(&h.name) {
            let i = site_mut(label, &mut sites);
            sites[i].1.lat_count += h.count;
            sites[i].1.lat_sum_us += h.sum;
        }
    }

    if sites.is_empty() {
        return "no solver.site.* metrics in trace (recorded before profiling hooks?)\n"
            .to_string();
    }
    sites.sort_by(|a, b| b.1.nodes.cmp(&a.1.nodes).then(a.0.cmp(&b.0)));

    let total_nodes: u64 = s.counter(names::SOLVER_NODES);
    let attributed: u64 = sites
        .iter()
        .filter(|(n, _)| !n.starts_with("overshoot:"))
        .map(|(_, st)| st.nodes)
        .sum();

    let mut out = String::new();
    out.push_str("solver hot spots by search nodes\n\n");
    out.push_str(&format!(
        "  {:<28} {:>10} {:>12} {:>12} {:>12}\n",
        "site", "queries", "nodes", "nodes/query", "mean µs"
    ));
    for (label, st) in sites.iter().take(limit) {
        let per_query = if st.queries == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", st.nodes as f64 / st.queries as f64)
        };
        let mean_us = match st.lat_sum_us.checked_div(st.lat_count) {
            None => "-".to_string(),
            Some(mean) => format!("{mean}"),
        };
        out.push_str(&format!(
            "  {label:<28} {:>10} {:>12} {per_query:>12} {mean_us:>12}\n",
            st.queries, st.nodes
        ));
    }
    if sites.len() > limit {
        out.push_str(&format!("  … {} more site(s)\n", sites.len() - limit));
    }
    out.push_str(&format!(
        "\n  total solver nodes: {total_nodes} \
         ({:.1}% attributed to ranked-attempt sites)\n",
        if total_nodes == 0 {
            0.0
        } else {
            100.0 * attributed as f64 / total_nodes as f64
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, value: u64) -> TraceEvent {
        TraceEvent::Counter {
            name: name.into(),
            value,
        }
    }

    #[test]
    fn ranks_sites_by_nodes_and_attributes_totals() {
        let events = vec![
            counter("solver.site.feasibility.queries", 50),
            counter("solver.site.feasibility.nodes", 900),
            counter("solver.site.concretize.queries", 5),
            counter("solver.site.concretize.nodes", 40),
            counter("portfolio.overshoot.solver.site.feasibility.queries", 9),
            counter("portfolio.overshoot.solver.site.feasibility.nodes", 111),
            counter(names::SOLVER_NODES, 1000),
            TraceEvent::Hist {
                name: "solver.site.feasibility.query_us".into(),
                count: 50,
                sum: 500,
                buckets: vec![(4, 50)],
            },
        ];
        let text = top(&events, 10);
        let feas = text.find("  feasibility").expect("feasibility row");
        let over = text.find("overshoot:feasibility").expect("overshoot row");
        let conc = text.find("  concretize").expect("concretize row");
        assert!(feas < over && over < conc, "{text}");
        // 900 + 40 attributed out of 1000 total.
        assert!(
            text.contains("(94.0% attributed to ranked-attempt sites)"),
            "{text}"
        );
        // Mean latency 500/50 = 10µs.
        assert!(text.contains("10"), "{text}");
    }

    #[test]
    fn equal_cost_sites_sort_by_name() {
        // Deterministic tie-break: same node count must order by label,
        // regardless of the order the counters appear in the trace.
        let events = vec![
            counter("solver.site.zeta.nodes", 5),
            counter("solver.site.alpha.nodes", 5),
            counter("solver.site.mid.nodes", 5),
        ];
        let text = top(&events, 10);
        let a = text.find("  alpha").expect("alpha row");
        let m = text.find("  mid").expect("mid row");
        let z = text.find("  zeta").expect("zeta row");
        assert!(a < m && m < z, "{text}");
        // And the rendering is stable across repeated runs.
        assert_eq!(text, top(&events, 10));
    }

    #[test]
    fn empty_profile_is_reported() {
        assert!(top(&[], 10).contains("no solver.site.*"));
    }

    #[test]
    fn limit_truncates_rows() {
        let events = vec![
            counter("solver.site.a.nodes", 3),
            counter("solver.site.b.nodes", 2),
            counter("solver.site.c.nodes", 1),
        ];
        let text = top(&events, 2);
        assert!(text.contains("… 1 more site(s)"), "{text}");
    }
}
