//! `statsym-inspect explain`: one candidate attempt, end to end.
//!
//! Answers the three questions a ranked attempt leaves behind: why was
//! this candidate ranked where it was (statistical score, path length),
//! what did the attempt actually cost (steps, forks, solver work from
//! its `calib.candidate` record), and where did the solver effort go
//! (its `query` provenance events, grouped by callsite and by source
//! location, ending with the last query — where the attempt died or
//! won). Needs a trace recorded with calibration (any recorded run)
//! and, for the per-location breakdown, `--provenance`.

use std::collections::BTreeMap;

use statsym_telemetry::{names, TraceEvent, TraceSummary};

/// Renders the end-to-end story of the candidate at 1-based `rank`.
///
/// # Errors
///
/// Returns a message when the trace has no `calib.candidate` record for
/// that rank (recorded without calibration, or rank out of range).
pub fn explain(events: &[TraceEvent], rank: u64) -> Result<String, String> {
    let s = TraceSummary::from_events(events);
    let cand = s.calib.iter().find(|c| c.rank == rank).ok_or_else(|| {
        format!(
            "no calib.candidate record for rank {rank} \
             (trace predates calibration, or rank out of range; \
             trace has {} candidate record(s))",
            s.calib.len()
        )
    })?;

    let mut out = format!("candidate rank {rank} of {}\n", s.calib.len());

    out.push_str("\npredicted (statistical ranking):\n");
    out.push_str(&format!("  score_milli  {:>10}\n", cand.score_milli));
    out.push_str(&format!("  path_len     {:>10}\n", cand.path_len));

    out.push_str("\nactual (attempt cost):\n");
    out.push_str(&format!("  steps        {:>10}\n", cand.steps));
    out.push_str(&format!("  forks        {:>10}\n", cand.forks));
    out.push_str(&format!("  solver nodes {:>10}\n", cand.snodes));
    if cand.solver_us > 0 {
        out.push_str(&format!("  solver µs    {:>10}\n", cand.solver_us));
    }
    out.push_str(&format!(
        "  outcome      {:>10}\n",
        if cand.found { "found" } else { "not found" }
    ));

    if s.gauge(names::CALIB_WINNER_RANK).is_some() || s.gauge(names::CALIB_RANK_COST_CORR).is_some()
    {
        out.push_str("\nranking context:\n");
        if let Some(w) = s.gauge(names::CALIB_WINNER_RANK) {
            out.push_str(&format!(
                "  winner rank  {w:>10}{}\n",
                if w == rank as i64 {
                    "  (this candidate)"
                } else {
                    ""
                }
            ));
        }
        if let Some(c) = s.gauge(names::CALIB_RANK_COST_CORR) {
            out.push_str(&format!("  rank-vs-cost corr (milli)  {c}\n"));
        }
    }

    // Provenance: fold this rank's queries by callsite disposition and
    // by source location, keeping the last query as the endpoint.
    let mut sites: BTreeMap<(&str, &str, &str), (u64, u64, u64)> = BTreeMap::new();
    let mut locs: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut last: Option<&TraceEvent> = None;
    for ev in events {
        if let TraceEvent::Query {
            loc,
            rank: r,
            site,
            verdict,
            cache,
            nodes,
            us,
            ..
        } = ev
        {
            if *r != rank {
                continue;
            }
            let e = sites.entry((site, verdict, cache)).or_default();
            e.0 += 1;
            e.1 += nodes;
            e.2 += us;
            let l = locs.entry(loc).or_default();
            l.0 += 1;
            l.1 += nodes;
            last = Some(ev);
        }
    }

    if sites.is_empty() {
        out.push_str("\nno query provenance for this rank (recorded without --provenance?)\n");
        return Ok(out);
    }

    out.push_str("\nsolver queries (site / verdict / cache):\n");
    for ((site, verdict, cache), (n, nodes, us)) in &sites {
        let key = format!("{site} / {verdict} / {cache}");
        out.push_str(&format!(
            "  {key:<36}  n {n:>6}  nodes {nodes:>10}  us {us:>8}\n"
        ));
    }

    out.push_str("\nquery locations (by search nodes):\n");
    let mut rows: Vec<(&str, (u64, u64))> = locs.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
    let loc_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max(8);
    for (loc, (n, nodes)) in &rows {
        out.push_str(&format!("  {loc:<loc_w$}  n {n:>6}  nodes {nodes:>10}\n"));
    }

    if let Some(TraceEvent::Query {
        loc,
        site,
        verdict,
        cache,
        ..
    }) = last
    {
        out.push_str(&format!(
            "\nlast query: {loc} ({site}, {verdict}, {cache}) — where the attempt {}\n",
            if cand.found { "won" } else { "died" }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::FieldValue;

    fn calib_event(rank: u64, score_milli: i64, steps: u64, found: bool) -> TraceEvent {
        TraceEvent::Event {
            t: 1,
            name: names::CALIB_CANDIDATE.into(),
            fields: vec![
                ("rank".into(), FieldValue::Uint(rank)),
                ("score_milli".into(), FieldValue::Int(score_milli)),
                ("path_len".into(), FieldValue::Uint(3)),
                ("steps".into(), FieldValue::Uint(steps)),
                ("forks".into(), FieldValue::Uint(2)),
                ("snodes".into(), FieldValue::Uint(7)),
                ("found".into(), FieldValue::Uint(u64::from(found))),
            ],
        }
    }

    fn query(rank: u64, loc: &str, verdict: &str, nodes: u64) -> TraceEvent {
        TraceEvent::Query {
            t: 2,
            sid: 1,
            loc: loc.into(),
            rank,
            site: "feasibility".into(),
            verdict: verdict.into(),
            cache: "search".into(),
            nodes,
            us: 0,
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            calib_event(1, 4200, 50, false),
            calib_event(2, 3100, 120, true),
            query(1, "main:3", "sat", 4),
            query(2, "main:3", "sat", 5),
            query(2, "convert:7", "sat", 9),
            query(2, "convert:9", "unsat", 2),
            TraceEvent::Gauge {
                name: names::CALIB_WINNER_RANK.into(),
                value: 2,
            },
            TraceEvent::Gauge {
                name: names::CALIB_RANK_COST_CORR.into(),
                value: -1000,
            },
        ]
    }

    #[test]
    fn explains_predicted_actual_and_endpoint() {
        let text = explain(&sample(), 2).unwrap();
        assert!(text.contains("candidate rank 2 of 2"), "{text}");
        assert!(text.contains("score_milli        3100"), "{text}");
        assert!(text.contains("steps               120"), "{text}");
        assert!(text.contains("outcome           found"), "{text}");
        assert!(
            text.contains("winner rank           2  (this candidate)"),
            "{text}"
        );
        assert!(text.contains("rank-vs-cost corr (milli)  -1000"), "{text}");
        // Rank-1 queries are excluded; locations rank by nodes.
        assert!(text.contains("feasibility / sat / search"), "{text}");
        let conv = text.find("convert:7").expect("convert:7 row");
        let main = text.find("main:3").expect("main:3 row");
        assert!(conv < main, "{text}");
        assert!(
            text.contains(
                "last query: convert:9 (feasibility, unsat, search) — where the attempt won"
            ),
            "{text}"
        );
    }

    #[test]
    fn losing_candidate_dies_at_its_last_query() {
        let text = explain(&sample(), 1).unwrap();
        assert!(text.contains("outcome       not found"), "{text}");
        assert!(text.contains("where the attempt died"), "{text}");
        assert!(!text.contains("(this candidate)"), "{text}");
    }

    #[test]
    fn missing_rank_is_an_error() {
        let err = explain(&sample(), 9).unwrap_err();
        assert!(err.contains("rank 9"), "{err}");
        assert!(err.contains("2 candidate record(s)"), "{err}");
    }

    #[test]
    fn missing_provenance_is_flagged_not_fatal() {
        let text = explain(&[calib_event(1, 10, 5, false)], 1).unwrap();
        assert!(text.contains("no query provenance"), "{text}");
    }
}
