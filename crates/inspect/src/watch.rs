//! `statsym-inspect watch`: a live dashboard over a growing `--lineage`
//! trace file.
//!
//! `FileRecorder` flushes every lineage event as it happens, so the
//! trace of a running experiment is tailable: `watch` re-reads the file
//! on an interval, parses it with the truncation-tolerant parser (a
//! half-written last line is expected mid-run), and redraws a summary
//! in place. Metrics (`Counter`/`Gauge`/`Hist` lines) are only flushed
//! at the end of a run, so their appearance doubles as the done signal:
//! `watch` prints a final frame and exits 0. (The stream-fed `live`
//! dashboard does not need this heuristic — a stream carries an
//! explicit end-of-run frame.)
//!
//! The rendering is a pure function of the parsed events
//! ([`dashboard`]), so it is unit-testable without a filesystem or a
//! terminal; the polling loop ([`watch`]) owns all the I/O.

use crate::forest::{Forest, Status, Work};
use statsym_telemetry::{names, parse_trace_truncated, TraceEvent};

/// One rendered dashboard frame plus the run-ended flag.
#[derive(Debug)]
pub struct Frame {
    /// The rendered text, newline-terminated.
    pub text: String,
    /// True once final metrics are present in the trace (the recorder
    /// only flushes them when the run finishes).
    pub done: bool,
}

/// Builds a dashboard frame from a parsed (possibly truncated) trace.
pub fn dashboard(events: &[TraceEvent], truncated: bool) -> Frame {
    let forest = Forest::from_events(events);
    let mut total = Work::default();
    for n in &forest.nodes {
        total = total.plus(n.own);
    }
    let (by_op, live, suspended) = forest.disposition_counts();
    let terminal: u64 = by_op.values().sum();
    let (mut sus_tau, mut sus_pred, mut sus_branch, mut resumes) = (0u64, 0u64, 0u64, 0u64);
    let mut frontier_depth = 0u64;
    let mut max_depth = 0u64;
    for n in &forest.nodes {
        sus_tau += n.suspends[0];
        sus_pred += n.suspends[1];
        sus_branch += n.suspends[2];
        resumes += n.resumes;
        max_depth = max_depth.max(n.depth);
        if n.status() != Status::Terminal {
            frontier_depth = frontier_depth.max(n.depth);
        }
    }

    let mut attempts_open = 0u64;
    let mut attempts_closed = 0u64;
    let mut found = 0u64;
    let mut counters: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    let mut open_ids: Vec<u64> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::SpanOpen { id, name, .. } if name == names::CANDIDATE_ATTEMPT => {
                attempts_open += 1;
                open_ids.push(*id);
            }
            TraceEvent::SpanClose { id, .. } if open_ids.contains(id) => {
                open_ids.retain(|o| o != id);
                attempts_closed += 1;
            }
            TraceEvent::Event { name, fields, .. } if name == names::CANDIDATE_RESULT => {
                let hit = fields
                    .iter()
                    .find(|(k, _)| k == "found")
                    .and_then(|(_, v)| v.as_str());
                if hit == Some("true") {
                    found += 1;
                }
            }
            TraceEvent::Counter { name, value } => {
                counters.insert(name.as_str(), *value);
            }
            _ => {}
        }
    }
    let done = !counters.is_empty();

    let mut out = String::new();
    out.push_str(&format!(
        "StatSym watch — {} event(s){}{}\n\n",
        events.len(),
        if truncated { ", partial tail line" } else { "" },
        if done { ", run complete" } else { ", running" },
    ));
    out.push_str(&format!(
        "  states    {:>8} total   {:>8} live   {:>8} suspended   {:>8} terminal\n",
        forest.nodes.len(),
        live,
        suspended,
        terminal,
    ));
    let mut terminals: Vec<_> = by_op.iter().collect();
    terminals.sort();
    let terminal_detail: Vec<String> = terminals
        .iter()
        .map(|(op, n)| format!("{op}:{n}"))
        .collect();
    if !terminal_detail.is_empty() {
        out.push_str(&format!("            {}\n", terminal_detail.join("  ")));
    }
    out.push_str(&format!(
        "  suspends  {sus_tau:>8} tau    {sus_pred:>8} predicate   {sus_branch:>5} branch   {resumes:>8} resumed\n",
    ));
    out.push_str(&format!(
        "  frontier  {:>8} runs    depth {:>4} live / {:>4} max\n",
        forest.roots.len(),
        frontier_depth,
        max_depth,
    ));
    out.push_str(&format!(
        "  work      {:>8} steps  {:>8} solver nodes   {:>8} solver µs\n",
        total.steps, total.snodes, total.solver_us,
    ));
    out.push_str(&format!(
        "  attempts  {:>8} started {:>7} finished    {found:>5} found\n",
        attempts_open, attempts_closed,
    ));
    if done {
        let queries = counters.get(names::SOLVER_QUERIES).copied().unwrap_or(0);
        let hits = counters.get(names::SOLVER_CACHE_HITS).copied().unwrap_or(0)
            + counters
                .get(names::SOLVER_SHARED_HITS)
                .copied()
                .unwrap_or(0);
        let rate = if queries + hits == 0 {
            0.0
        } else {
            100.0 * hits as f64 / (queries + hits) as f64
        };
        out.push_str(&format!(
            "  solver    {queries:>8} queries {hits:>7} cache hits   {rate:>5.1}% hit rate\n",
        ));
    } else {
        out.push_str("  solver    cache stats pending (metrics flush at run end)\n");
    }
    Frame { text: out, done }
}

/// Polls `path`, redrawing the dashboard in place with adaptive backoff
/// (starting at `interval_ms`, doubling while the file is unchanged).
/// Returns the process exit code: 0 once the run completes (or
/// immediately with `once`), 2 on a read/parse error.
///
/// With `once`, the trace is held to the same parser contract as
/// `report`: strict unless `allow_truncated`, so a mid-write or
/// crash-cut trace exits 2 instead of silently rendering half a run.
/// Continuous watching always tolerates a partial tail line — that is
/// the expected state of a live trace. `no_color` appends plain frames
/// with no ANSI escapes (CI logs, pipes).
pub fn watch(
    path: &str,
    interval_ms: u64,
    once: bool,
    allow_truncated: bool,
    no_color: bool,
) -> i32 {
    let make_screen = || {
        if no_color {
            crate::tail::Screen::plain()
        } else {
            crate::tail::Screen::new()
        }
    };
    if once && !allow_truncated {
        // One strict frame, same acceptance rules as `report`.
        let events = match crate::load_trace(path) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let mut screen = make_screen();
        screen.draw(&dashboard(&events, false).text);
        return 0;
    }
    let mut screen = make_screen();
    let mut backoff = crate::tail::Backoff::new(interval_ms);
    let mut last_len: Option<u64> = None;
    loop {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: cannot read trace: {e}");
                return 2;
            }
        };
        let (events, truncated) = match parse_trace_truncated(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {path}:{}: {}", e.line, e.reason);
                return 2;
            }
        };
        let frame = dashboard(&events, truncated);
        screen.draw(&frame.text);
        if frame.done || once {
            return 0;
        }
        let grown = last_len != Some(text.len() as u64);
        last_len = Some(text.len() as u64);
        let delay = if grown {
            backoff.active()
        } else {
            backoff.idle()
        };
        std::thread::sleep(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsym_telemetry::{lineage_op, Clock, FieldValue, LineageEvent, MemRecorder, Recorder};

    fn lineage(rec: &dyn Recorder, op: &str, id: u64, parent: u64, depth: u64) {
        rec.state(&LineageEvent {
            op,
            id,
            parent,
            loc: "main:b0",
            hops: 0,
            depth: depth as u32,
            steps: 10,
            snodes: 4,
            solver_us: 0,
        });
    }

    #[test]
    fn running_frame_reports_states_and_pending_solver() {
        // A mid-run snapshot, hand-built: an open attempt span and
        // lineage events, but no final metrics yet.
        let state = |op: &str, id: u64, par: u64, depth: u64| TraceEvent::State {
            t: 0,
            op: op.to_string(),
            id,
            par,
            loc: "main:b0".to_string(),
            hops: 0,
            depth,
            steps: 10,
            snodes: 4,
            sus: 0,
        };
        let events = vec![
            TraceEvent::SpanOpen {
                t: 0,
                id: 1,
                parent: 0,
                name: names::CANDIDATE_ATTEMPT.to_string(),
            },
            state(lineage_op::ROOT, 1, 0, 0),
            state(lineage_op::FORK, 2, 1, 1),
            state(lineage_op::SUSPEND_TAU, 2, 1, 3),
        ];
        let frame = dashboard(&events, true);
        assert!(!frame.done);
        assert!(frame.text.contains("partial tail line"), "{}", frame.text);
        assert!(frame.text.contains(", running"), "{}", frame.text);
        assert!(frame.text.contains("2 total"), "{}", frame.text);
        assert!(frame.text.contains("1 suspended"), "{}", frame.text);
        assert!(frame.text.contains("1 tau"), "{}", frame.text);
        assert!(frame.text.contains("30 steps"), "{}", frame.text);
        assert!(frame.text.contains("1 started"), "{}", frame.text);
        assert!(frame.text.contains("pending"), "{}", frame.text);
        // Frontier: the suspended state sits at depth 3.
        assert!(frame.text.contains("depth    3 live"), "{}", frame.text);
    }

    #[test]
    fn finished_frame_reports_hit_rate_and_done() {
        let rec = MemRecorder::new(Clock::steps());
        let sp = rec.span_open(names::CANDIDATE_ATTEMPT);
        lineage(&rec, lineage_op::ROOT, rec.alloc_state_id(), 0, 0);
        lineage(&rec, lineage_op::FAULT, 1, 0, 2);
        rec.span_close(sp);
        rec.event(
            names::CANDIDATE_RESULT,
            &[
                ("index", FieldValue::from(0u64)),
                ("found", FieldValue::from(true)),
            ],
        );
        rec.counter_add(names::SOLVER_QUERIES, 30);
        rec.counter_add(names::SOLVER_CACHE_HITS, 10);
        let frame = dashboard(&rec.finish(), false);
        assert!(frame.done);
        assert!(frame.text.contains("run complete"), "{}", frame.text);
        assert!(frame.text.contains("1 found"), "{}", frame.text);
        assert!(frame.text.contains("25.0% hit rate"), "{}", frame.text);
        assert!(frame.text.contains("fault:1"), "{}", frame.text);
    }
}
