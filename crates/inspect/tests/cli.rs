//! End-to-end tests of the `statsym-inspect` binary: exit codes, the
//! golden run report, and the diff gate on both trace and JSON inputs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn inspect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_statsym-inspect"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn report_matches_golden_file() {
    let out = inspect(&["report", fixture("base.jsonl").to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let rendered = stdout(&out);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "report drifted from tests/golden/report.txt; \
         re-bless with BLESS=1 cargo test -p statsym-inspect --test cli"
    );
}

#[test]
fn diff_identical_traces_exits_zero() {
    let base = fixture("base.jsonl");
    let out = inspect(&["diff", base.to_str().unwrap(), base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 regression(s)"));
}

#[test]
fn diff_flags_injected_regression_with_exit_one() {
    let out = inspect(&[
        "diff",
        fixture("base.jsonl").to_str().unwrap(),
        fixture("regressed.jsonl").to_str().unwrap(),
        "--threshold",
        "20%",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("REGRESSION"), "{text}");
    // engine.run grew 140 -> 230 ticks; solver nodes 1000 -> 1300.
    assert!(text.contains("phase engine.run"), "{text}");
    assert!(text.contains("counter solver.nodes"), "{text}");
}

#[test]
fn diff_threshold_above_growth_passes() {
    let out = inspect(&[
        "diff",
        fixture("base.jsonl").to_str().unwrap(),
        fixture("regressed.jsonl").to_str().unwrap(),
        "--threshold",
        "500%",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
}

#[test]
fn diff_ignore_prefixes_suppress_the_gate() {
    let out = inspect(&[
        "diff",
        fixture("base.jsonl").to_str().unwrap(),
        fixture("regressed.jsonl").to_str().unwrap(),
        "--threshold",
        "20%",
        "--ignore",
        "engine.run",
        "--ignore",
        "solver",
        "--ignore",
        "symex.steps",
        "--ignore",
        "candidate.attempt",
        "--ignore",
        "pipeline.symex",
        "--ignore",
        "portfolio",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("[ignored]"));
}

#[test]
fn diff_compares_numeric_json_reports() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, r#"{"wall_s": 1.0, "parallel": [{"wall_s": 0.5}]}"#).unwrap();
    std::fs::write(&new, r#"{"wall_s": 1.6, "parallel": [{"wall_s": 0.5}]}"#).unwrap();
    let out = inspect(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "20%",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("value wall_s"), "{}", stdout(&out));
    let out = inspect(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "100%",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_trace_fails_with_line_number_and_exit_two() {
    let out = inspect(&["report", fixture("unbalanced.jsonl").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    // Duplicate span id 1 reopened on line 3.
    assert!(err.contains(":3:"), "{err}");
    assert!(err.contains("span"), "{err}");
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["diff", "only-one-file"][..],
        &["diff", "a", "b", "--threshold", "nope"][..],
        &["top", "x", "--limit", "0"][..],
    ] {
        let out = inspect(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}

/// Writes `name` under a per-process temp dir and returns its path.
fn temp_trace(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn diff_empty_traces_are_valid_and_schema_only() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-empty-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A zero-byte file is a degenerate but well-formed trace: no spans
    // to balance, no metrics to compare.
    let empty = temp_trace(&dir, "empty.jsonl", "");
    let out = inspect(&["diff", empty.to_str().unwrap(), empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("0 regression(s)"), "{}", stdout(&out));

    // Empty vs populated: every metric is a schema change (no baseline),
    // never a regression — in either direction.
    let base = fixture("base.jsonl");
    for (a, b) in [(&empty, &base), (&base, &empty)] {
        let out = inspect(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
        let text = stdout(&out);
        assert!(text.contains("(absent)"), "{text}");
        assert!(text.contains("0 regression(s)"), "{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_distinguishes_zero_counter_from_absent_counter() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-zero-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let meta = r#"{"k":"meta","clock":"steps","version":1}"#;
    let zero = temp_trace(
        &dir,
        "zero.jsonl",
        &format!("{meta}\n{{\"k\":\"counter\",\"name\":\"cache.hits\",\"value\":0}}\n"),
    );
    let absent = temp_trace(&dir, "absent.jsonl", &format!("{meta}\n"));
    let grown = temp_trace(
        &dir,
        "grown.jsonl",
        &format!("{meta}\n{{\"k\":\"counter\",\"name\":\"cache.hits\",\"value\":4}}\n"),
    );

    // Zero -> absent is a schema change (a vanished counter is not a
    // regression to zero), and absent -> zero has no baseline.
    for (a, b) in [(&zero, &absent), (&absent, &zero)] {
        let out = inspect(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
        let text = stdout(&out);
        assert!(text.contains("[schema]"), "{text}");
        assert!(text.contains("1 schema change(s)"), "{text}");
    }
    // Zero -> nonzero is infinite relative growth: a real regression.
    let out = inspect(&["diff", zero.to_str().unwrap(), grown.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("+inf%"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_threshold_boundary_is_strict_and_nan_is_rejected() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-thr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let meta = r#"{"k":"meta","clock":"steps","version":1}"#;
    let old = temp_trace(
        &dir,
        "old.jsonl",
        &format!("{meta}\n{{\"k\":\"counter\",\"name\":\"steps\",\"value\":100}}\n"),
    );
    let new = temp_trace(
        &dir,
        "new.jsonl",
        &format!("{meta}\n{{\"k\":\"counter\",\"name\":\"steps\",\"value\":110}}\n"),
    );
    // Exactly-at-threshold growth (10%) does not trip a 10% gate…
    let out = inspect(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "10%",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    // …but any threshold strictly below it does.
    let out = inspect(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "9.9%",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    // Non-finite thresholds are usage errors, not silent always/never
    // gates: NaN compares false with everything and would wave every
    // regression through.
    for bad in ["nan", "NaN", "inf", "-inf", "-5%"] {
        let out = inspect(&[
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--threshold",
            bad,
        ]);
        assert_eq!(out.status.code(), Some(2), "--threshold {bad}");
        assert!(stderr(&out).contains("threshold"), "{}", stderr(&out));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn critical_path_and_top_render_fixture() {
    let base = fixture("base.jsonl");
    let out = inspect(&["critical-path", base.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(
        text.contains("2 attempt(s) (4 portfolio workers)"),
        "{text}"
    );
    assert!(text.contains("bounding attempt: rank 0"), "{text}");

    let out = inspect(&["top", base.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("feasibility"), "{text}");
    assert!(text.contains("94.0% attributed"), "{text}");
}

/// Renders a `--lineage` trace from a pinned testkit corpus entry. The
/// step clock plus the pinned seed make the bytes reproducible, so the
/// coverage golden below is stable without checking in an opaque JSONL
/// fixture.
fn lineage_trace(dir: &Path) -> PathBuf {
    use statsym_core::pipeline::StatSym;
    use statsym_telemetry::{render_trace, Clock, MemRecorder};
    use testkit::corpus::CORPUS;
    use testkit::oracles::{input_spec, mint_logs, statsym_config};

    let entry = CORPUS
        .iter()
        .find(|e| e.name == "string_copy_overflow")
        .expect("pinned corpus entry");
    let program = entry.program();
    let module = sir::lower(&program).expect("corpus entry lowers");
    let logs = mint_logs(&module, &input_spec(&program), entry.seed, None);
    let mut config = statsym_config(1);
    config.engine.lineage = true;
    let rec = MemRecorder::new(Clock::steps());
    let statsym = StatSym::new(config);
    let analysis = statsym.analyze_traced(&logs, &rec);
    let _ = statsym.run_with_analysis_traced(&module, analysis, &rec);
    temp_trace(dir, "lineage.jsonl", &render_trace(&rec.finish()))
}

#[test]
fn coverage_matches_golden_on_pinned_testkit_seed() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-cov-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = lineage_trace(&dir);
    let out = inspect(&["coverage", trace.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let rendered = stdout(&out);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/coverage.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "coverage drifted from tests/golden/coverage.txt; \
         re-bless with BLESS=1 cargo test -p statsym-inspect --test cli"
    );

    // The --min gate: trivially satisfied floor passes, impossible
    // floor fails with exit 1 and a FAIL verdict in the output.
    let out = inspect(&["coverage", trace.to_str().unwrap(), "--min", "1"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("gate: pass"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tree_flame_and_watch_render_lineage_trace() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-lin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = lineage_trace(&dir);

    let out = inspect(&["tree", trace.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("exploration forest:"), "{text}");
    assert!(text.contains("└─"), "{text}");
    assert!(text.contains("subtree"), "{text}");

    let out = inspect(&["flame", trace.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(!text.is_empty(), "flame output empty");
    for line in text.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("collapsed-stack line");
        assert!(!stack.is_empty(), "{line}");
        weight.parse::<u64>().expect("numeric weight");
    }
    // steps weights differ from the solver-node default.
    let out = inspect(&["flame", trace.to_str().unwrap(), "--metric", "steps"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_ne!(stdout(&out), text);

    let out = inspect(&["watch", trace.to_str().unwrap(), "--once"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("StatSym watch"), "{text}");
    assert!(text.contains("run complete"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_format_json_emits_one_stable_object() {
    let base = fixture("base.jsonl");
    let out = inspect(&["report", base.to_str().unwrap(), "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 1, "one JSON object per report");
    assert!(
        text.starts_with("{\"kind\":\"statsym.report\",\"schema_version\":1,\"clock\":"),
        "{text}"
    );
    for key in [
        "\"spans\":[",
        "\"counters\":{",
        "\"gauges\":{",
        "\"hists\":[",
        "\"events\":{",
        "\"attribution\":{",
        "\"queries\":[",
        "\"calibration\":{",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    // The fixture's attribution and calibration data fold into the
    // report's machine-readable sections.
    assert!(
        text.contains("\"attribution\":{\"convert:7\":{\"steps\":60,"),
        "{text}"
    );
    assert!(
        text.contains("\"winner_rank\":2,\"corr_milli\":-1000"),
        "{text}"
    );
    // Byte-stable across invocations (the CI contract for machine
    // consumers).
    let again = inspect(&["report", base.to_str().unwrap(), "--format", "json"]);
    assert_eq!(text, stdout(&again));

    let out = inspect(&["report", base.to_str().unwrap(), "--format", "yaml"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown format is a usage error"
    );
}

#[test]
fn hotspots_explain_and_calib_render_fixture() {
    let base = fixture("base.jsonl");
    let path = base.to_str().unwrap();

    // hotspots: main:3 leads on steps; JSON form is byte-stable.
    let out = inspect(&["hotspots", path]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let main = text.find("main:3").expect("main row");
    let conv = text.find("convert:7").expect("convert row");
    assert!(main < conv, "{text}");
    let out = inspect(&["hotspots", path, "--format", "json", "--metric", "nodes"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(
        json.starts_with("{\"metric\":\"nodes\",\"total\":1000,"),
        "{json}"
    );
    let again = inspect(&["hotspots", path, "--format", "json", "--metric", "nodes"]);
    assert_eq!(json, stdout(&again));
    let out = inspect(&["hotspots", path, "--format", "flame"]);
    assert!(out.status.success());
    for line in stdout(&out).lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("collapsed-stack line");
        assert!(stack.contains(';'), "{line}");
        weight.parse::<u64>().expect("numeric weight");
    }

    // explain: the winning rank-2 candidate, end to end.
    let out = inspect(&["explain", path, "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("candidate rank 2 of 2"), "{text}");
    assert!(
        text.contains("winner rank           2  (this candidate)"),
        "{text}"
    );
    assert!(text.contains("where the attempt won"), "{text}");
    // A rank the trace does not carry exits 1 (not a usage error).
    let out = inspect(&["explain", path, "7"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stderr(&out).contains("rank 7"), "{}", stderr(&out));

    // calib: table + gates. The fixture anti-correlates (the winner was
    // ranked second and cheaper), so a -1000 floor passes and 0 fails.
    let out = inspect(&["calib", path]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("winner rank: 2"), "{text}");
    assert!(text.contains("rank-vs-cost corr: -1000 milli"), "{text}");
    let out = inspect(&["calib", path, "--min-corr", "-1000"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out = inspect(&["calib", path, "--min-corr", "0"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stderr(&out).contains("below the"), "{}", stderr(&out));
    let out = inspect(&["calib", path, "--format", "json"]);
    assert!(out.status.success());
    let json = stdout(&out);
    assert!(
        json.starts_with("{\"runs\":[{\"candidates\":[{\"rank\":1,"),
        "{json}"
    );
    assert!(json.contains("\"gauge_winner_rank\":2"), "{json}");
}

#[test]
fn malformed_provenance_events_are_rejected() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-prov-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let meta = "{\"k\":\"meta\",\"clock\":\"steps\",\"version\":1}\n";
    // Unknown cache disposition, unknown verdict, empty site: the
    // strict parser refuses each with a line-numbered error.
    for (name, bad) in [
        (
            "cache.jsonl",
            "{\"k\":\"query\",\"t\":1,\"sid\":1,\"loc\":\"f:1\",\"rank\":1,\"site\":\"s\",\
             \"verdict\":\"sat\",\"cache\":\"warp\",\"nodes\":1,\"us\":0}\n",
        ),
        (
            "verdict.jsonl",
            "{\"k\":\"query\",\"t\":1,\"sid\":1,\"loc\":\"f:1\",\"rank\":1,\"site\":\"s\",\
             \"verdict\":\"maybe\",\"cache\":\"search\",\"nodes\":1,\"us\":0}\n",
        ),
        (
            "site.jsonl",
            "{\"k\":\"query\",\"t\":1,\"sid\":1,\"loc\":\"f:1\",\"rank\":1,\"site\":\"\",\
             \"verdict\":\"sat\",\"cache\":\"search\",\"nodes\":1,\"us\":0}\n",
        ),
    ] {
        let path = temp_trace(&dir, name, &format!("{meta}{bad}"));
        let out = inspect(&["report", path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "{name}");
        assert!(stderr(&out).contains(":2:"), "{name}: {}", stderr(&out));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_once_matches_report_on_truncated_traces() {
    let dir = std::env::temp_dir().join(format!("statsym-inspect-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A mid-write trace: valid meta line, then half an event line.
    let cut = temp_trace(
        &dir,
        "cut.jsonl",
        "{\"k\":\"meta\",\"clock\":\"steps\",\"version\":1}\n{\"k\":\"event\",\"t\":0,\"na",
    );
    let path = cut.to_str().unwrap();

    // Strict by default: both commands reject the torn tail with exit 2.
    for args in [&["report", path][..], &["watch", path, "--once"][..]] {
        let out = inspect(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(!stderr(&out).is_empty(), "args: {args:?}");
    }
    // --allow-truncated: both accept it with exit 0.
    for args in [
        &["report", path, "--allow-truncated"][..],
        &["watch", path, "--once", "--allow-truncated"][..],
    ] {
        let out = inspect(args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "args: {args:?} {}",
            stderr(&out)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Connects to `path`, retrying while the `live` listener starts up.
#[cfg(unix)]
fn connect_unix_retrying(path: &Path) -> std::os::unix::net::UnixStream {
    for _ in 0..200 {
        if let Ok(s) = std::os::unix::net::UnixStream::connect(path) {
            return s;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("live listener never came up at {}", path.display());
}

#[cfg(unix)]
#[test]
fn live_record_tees_a_stream_byte_identical_to_the_trace_file() {
    use std::io::Write as _;

    let dir = std::env::temp_dir().join(format!("statsym-inspect-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = lineage_trace(&dir);
    let sock = dir.join("live.sock");
    let rec_dir = dir.join("rec");

    let mut live = Command::new(env!("CARGO_BIN_EXE_statsym-inspect"))
        .args([
            "live",
            sock.to_str().unwrap(),
            "--record",
            rec_dir.to_str().unwrap(),
            "--runs",
            "1",
            "--quiet",
            "--interval",
            "10",
        ])
        .spawn()
        .expect("live spawns");

    // Frame the recorded trace exactly as a StreamSink would: hello,
    // verbatim event lines, end.
    let body = std::fs::read_to_string(&trace).unwrap();
    let mut conn = connect_unix_retrying(&sock);
    conn.write_all(b"{\"s\":\"hello\",\"version\":1,\"run\":\"lineage\"}\n")
        .unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    conn.write_all(b"{\"s\":\"end\",\"dropped\":0}\n").unwrap();
    drop(conn);

    let status = live.wait().expect("live exits");
    assert_eq!(status.code(), Some(0));
    let recorded = std::fs::read_to_string(rec_dir.join("lineage.jsonl")).expect("recorded file");
    assert_eq!(recorded, body, "recorded stream must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn live_exits_nonzero_when_a_stream_dies_without_its_end_frame() {
    use std::io::Write as _;

    let dir = std::env::temp_dir().join(format!("statsym-inspect-lost-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("live.sock");
    let mut live = Command::new(env!("CARGO_BIN_EXE_statsym-inspect"))
        .args([
            "live",
            sock.to_str().unwrap(),
            "--runs",
            "1",
            "--quiet",
            "--interval",
            "10",
        ])
        .spawn()
        .expect("live spawns");

    let mut conn = connect_unix_retrying(&sock);
    conn.write_all(b"{\"s\":\"hello\",\"version\":1,\"run\":\"doomed\"}\n")
        .unwrap();
    conn.write_all(b"{\"k\":\"meta\",\"clock\":\"steps\",\"version\":1}\n")
        .unwrap();
    drop(conn); // hang up before the end frame

    let status = live.wait().expect("live exits");
    assert_eq!(status.code(), Some(1), "lost stream must fail the run");
    std::fs::remove_dir_all(&dir).ok();
}
