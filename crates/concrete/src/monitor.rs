//! The runtime program monitor: Fjalar-style function-boundary logging
//! with probabilistic sampling.
//!
//! At each function entry the monitor records the function's parameters
//! and all global variables; at each exit it records the return value and
//! all globals. Every record is retained with probability `sampling_rate`
//! (the paper's partial logging). String values are recorded as lengths.

use crate::event::{FnEvent, Location, Measure, VarId, VarRole};
use crate::fault::Fault;
use crate::value::Value;
use crate::vm::ExecHook;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sir::{FuncBody, GlobalDef};
use statsym_telemetry::{names, Recorder, NOOP};

/// One sampled instrumentation record: a location plus the numeric view
/// of every variable visible there.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// The instrumentation point.
    pub loc: Location,
    /// Logged variables and their numeric values.
    pub vars: Vec<(VarId, f64)>,
}

/// Whether a run was correct or faulty — the paper's partition of the
/// log corpus (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The run terminated normally.
    Correct,
    /// The run manifested a fault.
    Faulty,
    /// The run hit a resource limit; excluded from statistical analysis.
    Inconclusive,
}

/// The full (sampled) log of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionLog {
    /// Sampled records in execution order.
    pub records: Vec<LogRecord>,
    /// Correct / faulty annotation (the paper annotates each log file).
    pub verdict: Verdict,
    /// The detected fault, for faulty runs.
    pub fault: Option<Fault>,
}

impl ExecutionLog {
    /// True if this log came from a faulty execution.
    pub fn is_faulty(&self) -> bool {
        self.verdict == Verdict::Faulty
    }

    /// The sequence of sampled locations (the event trace used for
    /// transition mining).
    pub fn locations(&self) -> impl Iterator<Item = &Location> {
        self.records.iter().map(|r| &r.loc)
    }
}

/// The monitor: an [`ExecHook`] that collects sampled records.
///
/// # Example
///
/// ```
/// use concrete::{Monitor, Vm, VmConfig};
///
/// let p = minic::parse_program("fn main() -> int { return 0; }")?;
/// let m = sir::lower(&p)?;
/// let vm = Vm::new(&m, VmConfig::default());
/// let mut monitor = Monitor::new(1.0, 42);
/// vm.run_hooked(&Default::default(), &mut monitor)?;
/// let log = monitor.finish_with(&vm.run(&Default::default())?.outcome);
/// assert_eq!(log.records.len(), 2); // main enter + leave
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Monitor<'r> {
    sampling_rate: f64,
    rng: StdRng,
    records: Vec<LogRecord>,
    rec: &'r dyn Recorder,
}

impl std::fmt::Debug for Monitor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("sampling_rate", &self.sampling_rate)
            .field("records", &self.records.len())
            .finish_non_exhaustive()
    }
}

impl<'r> Monitor<'r> {
    /// Creates a monitor sampling each record with probability
    /// `sampling_rate` (clamped to `[0, 1]`), deterministically seeded.
    pub fn new(sampling_rate: f64, seed: u64) -> Monitor<'static> {
        Monitor::traced(sampling_rate, seed, &NOOP)
    }

    /// Like [`Monitor::new`] with a telemetry recorder: every record
    /// attempt is counted as sampled or dropped.
    pub fn traced(sampling_rate: f64, seed: u64, rec: &dyn Recorder) -> Monitor<'_> {
        Monitor {
            sampling_rate: sampling_rate.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
            records: Vec::new(),
            rec,
        }
    }

    fn sample(&mut self) -> bool {
        let keep = self.sampling_rate >= 1.0 || self.rng.random_bool(self.sampling_rate);
        let name = if keep {
            names::MONITOR_SAMPLED
        } else {
            names::MONITOR_DROPPED
        };
        self.rec.counter_add(name, 1);
        keep
    }

    fn global_vars(globals: &[GlobalDef], gvals: &[Value]) -> Vec<(VarId, f64)> {
        globals
            .iter()
            .zip(gvals)
            .filter_map(|(def, val)| {
                val.numeric_view().map(|(num, is_len)| {
                    let measure = if is_len {
                        Measure::Length
                    } else {
                        Measure::Value
                    };
                    (VarId::new(def.name.clone(), VarRole::Global, measure), num)
                })
            })
            .collect()
    }

    /// Consumes the collected records into an [`ExecutionLog`], deriving
    /// the verdict from `outcome`.
    pub fn finish_with(self, outcome: &crate::vm::Outcome) -> ExecutionLog {
        use crate::vm::Outcome;
        let (verdict, fault) = match outcome {
            Outcome::Exit(_) => (Verdict::Correct, None),
            Outcome::Fault(f) => (Verdict::Faulty, Some(f.clone())),
            Outcome::StepLimit => (Verdict::Inconclusive, None),
        };
        ExecutionLog {
            records: self.records,
            verdict,
            fault,
        }
    }
}

impl ExecHook for Monitor<'_> {
    fn on_enter(
        &mut self,
        func: &FuncBody,
        args: &[Value],
        globals: &[GlobalDef],
        gvals: &[Value],
    ) {
        if !self.sample() {
            return;
        }
        let mut vars = Vec::new();
        for ((name, _), val) in func.params.iter().zip(args) {
            if let Some((num, is_len)) = val.numeric_view() {
                let measure = if is_len {
                    Measure::Length
                } else {
                    Measure::Value
                };
                vars.push((VarId::new(name.clone(), VarRole::Param, measure), num));
            }
        }
        vars.extend(Self::global_vars(globals, gvals));
        self.records.push(LogRecord {
            loc: Location {
                func: func.name.clone(),
                event: FnEvent::Enter,
            },
            vars,
        });
    }

    fn on_exit(
        &mut self,
        func: &FuncBody,
        ret: Option<&Value>,
        globals: &[GlobalDef],
        gvals: &[Value],
    ) {
        if !self.sample() {
            return;
        }
        let mut vars = Vec::new();
        if let Some((num, is_len)) = ret.and_then(|v| v.numeric_view()) {
            let measure = if is_len {
                Measure::Length
            } else {
                Measure::Value
            };
            vars.push((VarId::new("ret", VarRole::Return, measure), num));
        }
        vars.extend(Self::global_vars(globals, gvals));
        self.records.push(LogRecord {
            loc: Location {
                func: func.name.clone(),
                event: FnEvent::Leave,
            },
            vars,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{InputMap, Vm, VmConfig};

    fn logged(src: &str, rate: f64, seed: u64) -> ExecutionLog {
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let vm = Vm::new(&m, VmConfig::default());
        let mut mon = Monitor::new(rate, seed);
        let r = vm.run_hooked(&InputMap::new(), &mut mon).unwrap();
        mon.finish_with(&r.outcome)
    }

    const SRC: &str = r#"
        global hits: int = 0;
        fn step(x: int) -> int { hits = hits + 1; return x * 2; }
        fn main() -> int {
            let i: int = 0;
            while (i < 5) { i = step(i); i = i + 1; }
            return hits;
        }
    "#;

    #[test]
    fn full_sampling_logs_every_boundary() {
        let log = logged(SRC, 1.0, 1);
        // main enter/leave + 3 step enter/leave pairs (i = 0,1,3 -> 3 calls).
        let enters = log
            .records
            .iter()
            .filter(|r| r.loc.event == FnEvent::Enter)
            .count();
        let leaves = log.records.len() - enters;
        assert_eq!(enters, leaves);
        assert!(log.records.len() >= 6);
        assert_eq!(log.verdict, Verdict::Correct);
    }

    #[test]
    fn records_carry_params_globals_and_returns() {
        let log = logged(SRC, 1.0, 1);
        let step_enter = log
            .records
            .iter()
            .find(|r| r.loc == Location::enter("step"))
            .unwrap();
        let names: Vec<String> = step_enter.vars.iter().map(|(v, _)| v.to_string()).collect();
        assert!(names.contains(&"x FUNCPARAM".to_string()));
        assert!(names.contains(&"hits GLOBAL".to_string()));
        let step_leave = log
            .records
            .iter()
            .find(|r| r.loc == Location::leave("step"))
            .unwrap();
        assert!(step_leave
            .vars
            .iter()
            .any(|(v, _)| v.role == VarRole::Return));
    }

    #[test]
    fn zero_sampling_logs_nothing() {
        let log = logged(SRC, 0.0, 7);
        assert!(log.records.is_empty());
    }

    #[test]
    fn partial_sampling_drops_some_records() {
        let full = logged(SRC, 1.0, 3).records.len();
        let partial = logged(SRC, 0.3, 3).records.len();
        assert!(partial < full, "expected {partial} < {full}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        assert_eq!(logged(SRC, 0.5, 9), logged(SRC, 0.5, 9));
    }

    #[test]
    fn telemetry_counts_sampled_and_dropped_records() {
        use statsym_telemetry::{names, Clock, MemRecorder};

        let p = minic::parse_program(SRC).unwrap();
        let m = sir::lower(&p).unwrap();
        let vm = Vm::new(&m, VmConfig::default());

        // Full sampling: every boundary is sampled, none dropped.
        let rec = MemRecorder::new(Clock::steps());
        let mut mon = Monitor::traced(1.0, 1, &rec);
        let r = vm.run_hooked(&InputMap::new(), &mut mon).unwrap();
        let kept = mon.finish_with(&r.outcome).records.len() as u64;
        assert_eq!(rec.metrics().counter(names::MONITOR_SAMPLED), Some(kept));
        assert_eq!(rec.metrics().counter(names::MONITOR_DROPPED), None);

        // Zero sampling: every boundary is dropped.
        let rec0 = MemRecorder::new(Clock::steps());
        let mut mon0 = Monitor::traced(0.0, 1, &rec0);
        let r0 = vm.run_hooked(&InputMap::new(), &mut mon0).unwrap();
        assert!(mon0.finish_with(&r0.outcome).records.is_empty());
        assert_eq!(rec0.metrics().counter(names::MONITOR_SAMPLED), None);
        assert_eq!(rec0.metrics().counter(names::MONITOR_DROPPED), Some(kept));
    }

    #[test]
    fn string_params_logged_as_lengths() {
        let log = logged(
            r#"
            fn consume(s: str) { return; }
            fn main() { consume("abcd"); return; }
            "#,
            1.0,
            1,
        );
        let rec = log
            .records
            .iter()
            .find(|r| r.loc == Location::enter("consume"))
            .unwrap();
        let (var, val) = &rec.vars[0];
        assert_eq!(var.measure, Measure::Length);
        assert_eq!(*val, 4.0);
    }
}
