//! Concrete execution substrate: a SIR virtual machine with fault
//! detection plus the runtime program monitor the paper builds on
//! Valgrind/Fjalar.
//!
//! The VM detects the paper's vulnerability classes at runtime — stack
//! buffer overflows ([`FaultKind::BufferOverflow`]), assertion failures,
//! string out-of-bounds reads, and division by zero — and reports the
//! *fault point* (function + source span).
//!
//! The [`monitor`] module implements the paper's instrumentation model:
//! at every function entry and exit it records global variables, function
//! parameters, and return values, each record retained with a tunable
//! sampling probability (the paper's partial logging, §III-B). String
//! values are logged as lengths, mirroring the paper's privacy-preserving
//! transformation.
//!
//! # Example
//!
//! ```
//! use concrete::{InputValue, Vm, VmConfig};
//!
//! let program = minic::parse_program(r#"
//!     fn main() -> int {
//!         let n: int = input_int("n");
//!         let b: buf[4];
//!         buf_set(b, n, 65); // overflows when n >= 4
//!         return 0;
//!     }
//! "#)?;
//! let module = sir::lower(&program)?;
//! let vm = Vm::new(&module, VmConfig::default());
//!
//! let ok = vm.run(&[("n".into(), InputValue::Int(2))].into_iter().collect())?;
//! assert!(ok.outcome.is_success());
//!
//! let bad = vm.run(&[("n".into(), InputValue::Int(9))].into_iter().collect())?;
//! assert!(bad.outcome.is_fault());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod event;
pub mod fault;
pub mod logfile;
pub mod monitor;
pub mod runner;
pub mod value;
pub mod vm;

pub use event::{FnEvent, Location, Measure, VarId, VarRole};
pub use fault::{Fault, FaultKind, MAX_ALLOC};
pub use logfile::{parse_log, write_log, ParseLogError};
pub use monitor::{ExecutionLog, LogRecord, Monitor, Verdict};
pub use runner::{run_logged, run_logged_traced, run_logged_with, LoggedRun};
pub use value::{InputValue, Value};
pub use vm::{ExecHook, InputMap, NoHook, Outcome, RunResult, Vm, VmConfig, VmError};
