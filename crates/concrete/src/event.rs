//! Instrumentation locations and logged-variable identities.
//!
//! The paper instruments programs at *function entry and exit points*
//! (§III-B) and logs global variables, function parameters and return
//! values. [`Location`] is the identity of one instrumentation point
//! (rendered `convert_fileName():enter`, as in the paper's Figure 8);
//! [`VarId`] is the identity of one logged variable at a location
//! (rendered `suspect FUNCPARAM` / `track GLOBAL`, as in Table V).

use std::fmt;

/// Entry or exit side of a function-boundary instrumentation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FnEvent {
    /// Function entry.
    Enter,
    /// Function exit (return). A faulting function never emits `Leave`.
    Leave,
}

impl fmt::Display for FnEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnEvent::Enter => f.write_str("enter"),
            FnEvent::Leave => f.write_str("leave"),
        }
    }
}

/// One instrumentation location: a function boundary event.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// Function name.
    pub func: String,
    /// Entry or exit.
    pub event: FnEvent,
}

impl Location {
    /// Creates the entry location for `func`.
    pub fn enter(func: impl Into<String>) -> Location {
        Location {
            func: func.into(),
            event: FnEvent::Enter,
        }
    }

    /// Creates the exit location for `func`.
    pub fn leave(func: impl Into<String>) -> Location {
        Location {
            func: func.into(),
            event: FnEvent::Leave,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}():{}", self.func, self.event)
    }
}

/// The role of a logged variable, mirroring the paper's Table V labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarRole {
    /// A program global variable (`GLOBAL`).
    Global,
    /// A function parameter (`FUNCPARAM`).
    Param,
    /// A function return value (`RETURN`).
    Return,
}

impl fmt::Display for VarRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarRole::Global => f.write_str("GLOBAL"),
            VarRole::Param => f.write_str("FUNCPARAM"),
            VarRole::Return => f.write_str("RETURN"),
        }
    }
}

/// How the logged numeric value relates to the variable: its value, or —
/// for strings — its length (the paper's privacy transformation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Measure {
    /// The variable's value itself (ints, bools-as-0/1).
    Value,
    /// The length of a string variable.
    Length,
}

/// Identity of a logged variable. The same source variable observed at
/// two different locations is treated as two distinct predicates by the
/// statistical analysis (paper §V-A), so `VarId` intentionally excludes
/// the location — pairing happens in the log records.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId {
    /// Source-level variable name (`ret` for return values).
    pub name: String,
    /// Global / parameter / return value.
    pub role: VarRole,
    /// Value or string-length measurement.
    pub measure: Measure,
}

impl VarId {
    /// Creates a variable identity.
    pub fn new(name: impl Into<String>, role: VarRole, measure: Measure) -> VarId {
        VarId {
            name: name.into(),
            role,
            measure,
        }
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.measure {
            Measure::Value => write!(f, "{} {}", self.name, self.role),
            Measure::Length => write!(f, "len({} {})", self.name, self.role),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_renders_like_the_paper() {
        assert_eq!(
            Location::enter("convert_fileName").to_string(),
            "convert_fileName():enter"
        );
        assert_eq!(Location::leave("main").to_string(), "main():leave");
    }

    #[test]
    fn varid_renders_like_table_v() {
        let v = VarId::new("suspect", VarRole::Param, Measure::Length);
        assert_eq!(v.to_string(), "len(suspect FUNCPARAM)");
        let g = VarId::new("track", VarRole::Global, Measure::Value);
        assert_eq!(g.to_string(), "track GLOBAL");
    }

    #[test]
    fn locations_order_deterministically() {
        let a = Location::enter("a");
        let b = Location::leave("a");
        assert!(a < b);
    }
}
