//! The concrete SIR virtual machine.

use crate::fault::{Fault, FaultKind, MAX_ALLOC};
use crate::value::{InputValue, Value};
use minic::BinOp;
use sir::{
    BlockId, ConstValue, FuncBody, FuncId, GlobalDef, InputKind, Inst, Module, Reg, Terminator,
};
use std::collections::HashMap;
use std::fmt;

/// VM resource limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// Maximum instructions executed before the run is cut off.
    pub max_steps: u64,
    /// Maximum call depth before a [`FaultKind::StackOverflow`].
    pub max_call_depth: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_steps: 5_000_000,
            max_call_depth: 512,
        }
    }
}

/// Named inputs for one run.
pub type InputMap = HashMap<String, InputValue>;

/// Configuration errors (distinct from program faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The program read an input that the run did not provide.
    MissingInput(String),
    /// The provided input has the wrong kind (e.g. string for `input_int`).
    WrongInputKind(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MissingInput(n) => write!(f, "missing input `{n}`"),
            VmError::WrongInputKind(n) => write!(f, "input `{n}` has the wrong kind"),
        }
    }
}

impl std::error::Error for VmError {}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Normal termination with an exit code.
    Exit(i64),
    /// A fault (vulnerability manifestation) was detected.
    Fault(Fault),
    /// The step budget ran out (treated as neither correct nor faulty).
    StepLimit,
}

impl Outcome {
    /// True for normal termination.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Exit(_))
    }

    /// True when a fault was detected.
    pub fn is_fault(&self) -> bool {
        matches!(self, Outcome::Fault(_))
    }

    /// The fault, if any.
    pub fn fault(&self) -> Option<&Fault> {
        match self {
            Outcome::Fault(f) => Some(f),
            _ => None,
        }
    }
}

/// Result of a concrete run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Instructions executed.
    pub steps: u64,
    /// Lines produced by `print`.
    pub output: Vec<String>,
}

/// Observer of function-boundary events — the seam the program monitor
/// (and tests) hook into. Mirrors Fjalar's instrumentation of function
/// entries and exits.
pub trait ExecHook {
    /// Called when `func` is entered with `args` (parallel to
    /// `func.params`). `globals`/`gvals` are the module's global
    /// definitions and their current values.
    fn on_enter(&mut self, func: &FuncBody, args: &[Value], globals: &[GlobalDef], gvals: &[Value]);

    /// Called when `func` returns `ret`. A faulting function never
    /// triggers `on_exit`, matching the paper's observation that the
    /// monitor cannot capture the return of a crashed function.
    fn on_exit(
        &mut self,
        func: &FuncBody,
        ret: Option<&Value>,
        globals: &[GlobalDef],
        gvals: &[Value],
    );
}

/// A no-op hook for unmonitored runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl ExecHook for NoHook {
    fn on_enter(&mut self, _: &FuncBody, _: &[Value], _: &[GlobalDef], _: &[Value]) {}
    fn on_exit(&mut self, _: &FuncBody, _: Option<&Value>, _: &[GlobalDef], _: &[Value]) {}
}

/// The concrete interpreter over a lowered module.
#[derive(Debug, Clone)]
pub struct Vm<'m> {
    module: &'m Module,
    config: VmConfig,
}

struct Frame {
    func: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<Value>,
    /// Where the caller wants the return value.
    ret_dst: Option<Reg>,
}

impl<'m> Vm<'m> {
    /// Creates a VM for `module` with the given limits.
    pub fn new(module: &'m Module, config: VmConfig) -> Self {
        Vm { module, config }
    }

    /// The module this VM executes.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Runs the program without instrumentation.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] if a required input is missing or ill-kinded.
    pub fn run(&self, inputs: &InputMap) -> Result<RunResult, VmError> {
        self.run_hooked(inputs, &mut NoHook)
    }

    /// Runs the program, delivering function-boundary events to `hook`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] if a required input is missing or ill-kinded.
    pub fn run_hooked(
        &self,
        inputs: &InputMap,
        hook: &mut dyn ExecHook,
    ) -> Result<RunResult, VmError> {
        Interp {
            module: self.module,
            config: self.config,
            inputs,
            hook,
            globals: self
                .module
                .globals
                .iter()
                .map(|g| const_value(&g.init))
                .collect(),
            heap: Vec::new(),
            stack: Vec::new(),
            steps: 0,
            output: Vec::new(),
        }
        .run()
    }
}

fn const_value(c: &ConstValue) -> Value {
    match c {
        ConstValue::Int(v) => Value::Int(*v),
        ConstValue::Bool(b) => Value::Bool(*b),
        ConstValue::Str(s) => Value::str_from(s.as_bytes().to_vec()),
    }
}

/// One heap allocation: its bytes, a liveness flag, and whether it was
/// produced by `alloc` (dynamic) rather than a sized stack declaration.
/// Dynamic cells get the stricter off-by-one bounds classification and
/// participate in the use-after-free liveness protocol.
struct HeapCell {
    data: Vec<u8>,
    live: bool,
    dynamic: bool,
}

struct Interp<'m, 'h> {
    module: &'m Module,
    config: VmConfig,
    inputs: &'m InputMap,
    hook: &'h mut dyn ExecHook,
    globals: Vec<Value>,
    heap: Vec<HeapCell>,
    stack: Vec<Frame>,
    steps: u64,
    output: Vec<String>,
}

/// Control-flow signal from executing one instruction or terminator.
enum Flow {
    Continue,
    Halt(Outcome),
}

impl<'m, 'h> Interp<'m, 'h> {
    fn run(mut self) -> Result<RunResult, VmError> {
        let main_id = self.module.main;
        let main = self.module.func(main_id);
        let args: Vec<Value> = main.params.iter().map(|(_, ty)| default_for(*ty)).collect();
        self.push_frame(main_id, args, None);

        let outcome = loop {
            if self.steps >= self.config.max_steps {
                break Outcome::StepLimit;
            }
            self.steps += 1;
            match self.step() {
                Ok(Flow::Continue) => {}
                Ok(Flow::Halt(outcome)) => break outcome,
                Err(e) => return Err(e),
            }
        };
        Ok(RunResult {
            outcome,
            steps: self.steps,
            output: self.output,
        })
    }

    fn push_frame(&mut self, func: FuncId, args: Vec<Value>, ret_dst: Option<Reg>) {
        let body = self.module.func(func);
        let mut regs = vec![Value::Unit; body.num_regs as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = a.clone();
        }
        self.hook
            .on_enter(body, &args, &self.module.globals, &self.globals);
        self.stack.push(Frame {
            func,
            block: body.entry(),
            idx: 0,
            regs,
            ret_dst,
        });
    }

    /// Resolves a register holding a buffer handle to a *live* heap cell
    /// index. `None` means the access is a use-after-free-class fault:
    /// a freed cell, an unbound dynamic `buf` local (register still holds
    /// its `Unit` default), or the never-allocated parameter sentinel.
    fn live_handle(&self, r: Reg) -> Option<usize> {
        match self.reg(r) {
            Value::Buf(id) if *id < self.heap.len() && self.heap[*id].live => Some(*id),
            _ => None,
        }
    }

    fn fault(&self, kind: FaultKind, span: minic::Span) -> Flow {
        let func = self
            .stack
            .last()
            .map(|f| self.module.func(f.func).name.clone())
            .unwrap_or_default();
        Flow::Halt(Outcome::Fault(Fault { kind, func, span }))
    }

    fn step(&mut self) -> Result<Flow, VmError> {
        let frame = self.stack.last().expect("non-empty stack while running");
        let body = self.module.func(frame.func);
        let block = &body.blocks[frame.block.index()];

        if frame.idx < block.insts.len() {
            let (inst, span) = &block.insts[frame.idx];
            let inst = inst.clone();
            let span = *span;
            self.stack.last_mut().unwrap().idx += 1;
            self.exec_inst(inst, span)
        } else {
            let (term, span) = &block.term;
            let term = term.clone();
            let span = *span;
            Ok(self.exec_term(term, span))
        }
    }

    fn reg(&self, r: Reg) -> &Value {
        &self.stack.last().unwrap().regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: Value) {
        self.stack.last_mut().unwrap().regs[r.index()] = v;
    }

    fn exec_inst(&mut self, inst: Inst, span: minic::Span) -> Result<Flow, VmError> {
        match inst {
            Inst::Const { dst, value } => {
                self.set_reg(dst, const_value(&value));
            }
            Inst::Move { dst, src } => {
                let v = self.reg(src).clone();
                self.set_reg(dst, v);
            }
            Inst::Bin { op, dst, a, b } => {
                let va = self.reg(a).clone();
                let vb = self.reg(b).clone();
                match bin_op(op, &va, &vb) {
                    Some(v) => self.set_reg(dst, v),
                    None => return Ok(self.fault(FaultKind::DivByZero, span)),
                }
            }
            Inst::Not { dst, src } => {
                let v = !self.reg(src).as_bool();
                self.set_reg(dst, Value::Bool(v));
            }
            Inst::Neg { dst, src } => {
                let v = self.reg(src).as_int().wrapping_neg();
                self.set_reg(dst, Value::Int(v));
            }
            Inst::LoadGlobal { dst, global } => {
                let v = self.globals[global.index()].clone();
                self.set_reg(dst, v);
            }
            Inst::StoreGlobal { global, src } => {
                self.globals[global.index()] = self.reg(src).clone();
            }
            Inst::Call { dst, func, args } => {
                if self.stack.len() >= self.config.max_call_depth {
                    return Ok(self.fault(FaultKind::StackOverflow, span));
                }
                let argv: Vec<Value> = args.iter().map(|r| self.reg(*r).clone()).collect();
                self.push_frame(func, argv, dst);
            }
            Inst::AllocBuf { dst, cap } => {
                let id = self.heap.len();
                self.heap.push(HeapCell {
                    data: vec![0u8; cap as usize],
                    live: true,
                    dynamic: false,
                });
                self.set_reg(dst, Value::Buf(id));
            }
            Inst::Alloc { dst, size } => {
                let n = self.reg(size).as_int();
                if !(0..=MAX_ALLOC).contains(&n) {
                    return Ok(self.fault(FaultKind::AllocOverflow { req: n }, span));
                }
                let id = self.heap.len();
                self.heap.push(HeapCell {
                    data: vec![0u8; n as usize],
                    live: true,
                    dynamic: true,
                });
                self.set_reg(dst, Value::Buf(id));
            }
            Inst::Free { buf } => {
                // Freeing a dead, unbound, or stack buffer is itself a
                // heap-lifetime fault (double free / invalid free).
                let Some(id) = self.live_handle(buf) else {
                    return Ok(self.fault(FaultKind::UseAfterFree, span));
                };
                if !self.heap[id].dynamic {
                    return Ok(self.fault(FaultKind::UseAfterFree, span));
                }
                self.heap[id].live = false;
            }
            Inst::BufSet { buf, idx, val } => {
                let Some(id) = self.live_handle(buf) else {
                    return Ok(self.fault(FaultKind::UseAfterFree, span));
                };
                let i = self.reg(idx).as_int();
                let v = self.reg(val).as_int();
                let cell = &mut self.heap[id];
                if i < 0 || i as usize >= cell.data.len() {
                    let cap = cell.data.len() as u32;
                    if cell.dynamic && i == cap as i64 {
                        return Ok(self.fault(FaultKind::OffByOne { cap }, span));
                    }
                    return Ok(self.fault(FaultKind::BufferOverflow { cap, idx: i }, span));
                }
                cell.data[i as usize] = v as u8;
            }
            Inst::BufGet { dst, buf, idx } => {
                let Some(id) = self.live_handle(buf) else {
                    return Ok(self.fault(FaultKind::UseAfterFree, span));
                };
                let i = self.reg(idx).as_int();
                let cell = &self.heap[id];
                if i < 0 || i as usize >= cell.data.len() {
                    let cap = cell.data.len() as u32;
                    if cell.dynamic && i == cap as i64 {
                        return Ok(self.fault(FaultKind::OffByOne { cap }, span));
                    }
                    return Ok(self.fault(FaultKind::BufferOverflow { cap, idx: i }, span));
                }
                let v = cell.data[i as usize] as i64;
                self.set_reg(dst, Value::Int(v));
            }
            Inst::BufCap { dst, buf } => {
                let Some(id) = self.live_handle(buf) else {
                    return Ok(self.fault(FaultKind::UseAfterFree, span));
                };
                let cap = self.heap[id].data.len() as i64;
                self.set_reg(dst, Value::Int(cap));
            }
            Inst::Format { fmt } => {
                let bytes = self.reg(fmt).as_str_bytes();
                if let Some(pos) = bytes.iter().position(|&b| b == b'%') {
                    return Ok(self.fault(FaultKind::FormatString { idx: pos as i64 }, span));
                }
            }
            Inst::StrAt { dst, s, idx } => {
                let i = self.reg(idx).as_int();
                let bytes = self.reg(s).as_str_bytes();
                let len = bytes.len();
                if i < 0 || i as usize > len {
                    return Ok(self.fault(
                        FaultKind::StringOob {
                            len: len as u32,
                            idx: i,
                        },
                        span,
                    ));
                }
                let v = if (i as usize) == len {
                    0 // NUL terminator
                } else {
                    bytes[i as usize] as i64
                };
                self.set_reg(dst, Value::Int(v));
            }
            Inst::StrLen { dst, s } => {
                let len = self.reg(s).as_str_bytes().len() as i64;
                self.set_reg(dst, Value::Int(len));
            }
            Inst::Input { dst, input } => {
                let def = &self.module.inputs[input.index()];
                let provided = self
                    .inputs
                    .get(&def.name)
                    .ok_or_else(|| VmError::MissingInput(def.name.clone()))?;
                let v = match (def.kind, provided) {
                    (InputKind::Int, InputValue::Int(v)) => Value::Int(*v),
                    (InputKind::Str { cap }, InputValue::Str(bytes)) => {
                        let mut b = bytes.clone();
                        b.truncate(cap as usize); // bounded read
                        Value::str_from(b)
                    }
                    _ => return Err(VmError::WrongInputKind(def.name.clone())),
                };
                self.set_reg(dst, v);
            }
            Inst::Print { args } => {
                let line: Vec<String> = args.iter().map(|r| self.reg(*r).to_string()).collect();
                self.output.push(line.join(" "));
            }
            Inst::Exit { code } => {
                let c = self.reg(code).as_int();
                return Ok(Flow::Halt(Outcome::Exit(c)));
            }
            Inst::Assert { cond } => {
                if !self.reg(cond).as_bool() {
                    return Ok(self.fault(FaultKind::AssertFailed, span));
                }
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_term(&mut self, term: Terminator, _span: minic::Span) -> Flow {
        match term {
            Terminator::Jump(b) => {
                let frame = self.stack.last_mut().unwrap();
                frame.block = b;
                frame.idx = 0;
                Flow::Continue
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = self.reg(cond).as_bool();
                let frame = self.stack.last_mut().unwrap();
                frame.block = if taken { then_bb } else { else_bb };
                frame.idx = 0;
                Flow::Continue
            }
            Terminator::Return(r) => {
                let frame = self.stack.last().unwrap();
                let ret = r.map(|r| frame.regs[r.index()].clone());
                let body = self.module.func(frame.func);
                self.hook
                    .on_exit(body, ret.as_ref(), &self.module.globals, &self.globals);
                let ret_dst = frame.ret_dst;
                self.stack.pop();
                match self.stack.last_mut() {
                    None => {
                        let code = match ret {
                            Some(Value::Int(v)) => v,
                            _ => 0,
                        };
                        Flow::Halt(Outcome::Exit(code))
                    }
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (ret_dst, ret) {
                            caller.regs[dst.index()] = v;
                        }
                        Flow::Continue
                    }
                }
            }
        }
    }
}

fn default_for(ty: minic::Type) -> Value {
    match ty {
        minic::Type::Int => Value::Int(0),
        minic::Type::Bool => Value::Bool(false),
        minic::Type::Str => Value::str_from(Vec::new()),
        minic::Type::Buf(_) => Value::Buf(usize::MAX), // never allocated; unused by benchmarks
    }
}

/// Evaluates a binary operation; `None` signals division by zero.
fn bin_op(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    use BinOp::*;
    Some(match (op, a, b) {
        (Add, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
        (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_sub(*y)),
        (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(*y)),
        (Div, Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                return None;
            }
            Value::Int(x.wrapping_div(*y))
        }
        (Rem, Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                return None;
            }
            Value::Int(x.wrapping_rem(*y))
        }
        (Eq, Value::Int(x), Value::Int(y)) => Value::Bool(x == y),
        (Ne, Value::Int(x), Value::Int(y)) => Value::Bool(x != y),
        (Eq, Value::Bool(x), Value::Bool(y)) => Value::Bool(x == y),
        (Ne, Value::Bool(x), Value::Bool(y)) => Value::Bool(x != y),
        (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
        (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
        (Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
        (Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
        _ => panic!("ill-typed bin op {op:?} on {a:?}, {b:?} (checker should prevent)"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str, inputs: &[(&str, InputValue)]) -> RunResult {
        let p = minic::parse_program(src).unwrap();
        let m = sir::lower(&p).unwrap();
        let vm = Vm::new(&m, VmConfig::default());
        let map: InputMap = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        vm.run(&map).unwrap()
    }

    #[test]
    fn arithmetic_and_exit_code() {
        let r = run_src("fn main() -> int { return (2 + 3) * 4 - 1; }", &[]);
        assert_eq!(r.outcome, Outcome::Exit(19));
    }

    #[test]
    fn while_loop_sums() {
        let r = run_src(
            r#"fn main() -> int {
                let i: int = 0; let acc: int = 0;
                while (i < 10) { acc = acc + i; i = i + 1; }
                return acc;
            }"#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::Exit(45));
    }

    #[test]
    fn function_calls_and_globals() {
        let r = run_src(
            r#"
            global count: int = 0;
            fn bump(v: int) -> int { count = count + v; return count; }
            fn main() -> int { print(bump(2)); print(bump(3)); return count; }
            "#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::Exit(5));
        assert_eq!(r.output, vec!["2", "5"]);
    }

    #[test]
    fn buffer_overflow_is_detected() {
        let r = run_src(
            r#"fn main() {
                let b: buf[4];
                let i: int = 0;
                while (i < 10) { buf_set(b, i, 65); i = i + 1; }
            }"#,
            &[],
        );
        let fault = r.outcome.fault().expect("expected fault");
        assert_eq!(fault.kind, FaultKind::BufferOverflow { cap: 4, idx: 4 });
        assert_eq!(fault.func, "main");
    }

    #[test]
    fn alloc_overflow_is_detected() {
        let r = run_src(
            r#"fn main() {
                let n: int = input_int("n");
                let h: buf = alloc(n * 256);
                buf_set(h, 0, 1);
            }"#,
            &[("n", InputValue::Int(100))],
        );
        assert_eq!(
            r.outcome.fault().unwrap().kind,
            FaultKind::AllocOverflow { req: 25600 }
        );
    }

    #[test]
    fn negative_alloc_is_overflow() {
        let r = run_src(
            r#"fn main() { let h: buf = alloc(0 - 1); buf_set(h, 0, 1); }"#,
            &[],
        );
        assert_eq!(
            r.outcome.fault().unwrap().kind,
            FaultKind::AllocOverflow { req: -1 }
        );
    }

    #[test]
    fn off_by_one_on_dynamic_buffer() {
        let r = run_src(
            r#"fn main() {
                let h: buf = alloc(4);
                let i: int = 0;
                while (i <= buf_cap(h)) { buf_set(h, i, 65); i = i + 1; }
            }"#,
            &[],
        );
        assert_eq!(
            r.outcome.fault().unwrap().kind,
            FaultKind::OffByOne { cap: 4 }
        );
    }

    #[test]
    fn stack_buffer_keeps_overflow_classification() {
        // idx == cap on a *stack* buffer stays BufferOverflow — the
        // paper benchapps (and their committed traces) rely on this.
        let r = run_src(
            r#"fn main() {
                let b: buf[4];
                let i: int = 0;
                while (i <= buf_cap(b)) { buf_set(b, i, 65); i = i + 1; }
            }"#,
            &[],
        );
        assert_eq!(
            r.outcome.fault().unwrap().kind,
            FaultKind::BufferOverflow { cap: 4, idx: 4 }
        );
    }

    #[test]
    fn use_after_free_is_detected() {
        let r = run_src(
            r#"fn main() {
                let h: buf = alloc(4);
                buf_set(h, 0, 1);
                free(h);
                buf_set(h, 1, 2);
            }"#,
            &[],
        );
        assert_eq!(r.outcome.fault().unwrap().kind, FaultKind::UseAfterFree);
    }

    #[test]
    fn double_free_is_detected() {
        let r = run_src(
            r#"fn main() { let h: buf = alloc(4); free(h); free(h); }"#,
            &[],
        );
        assert_eq!(r.outcome.fault().unwrap().kind, FaultKind::UseAfterFree);
    }

    #[test]
    fn format_string_faults_on_percent() {
        let r = run_src(
            r#"fn main() { let s: str = input_str("s", 8); format(s); }"#,
            &[("s", InputValue::text("ab%n"))],
        );
        assert_eq!(
            r.outcome.fault().unwrap().kind,
            FaultKind::FormatString { idx: 2 }
        );
    }

    #[test]
    fn format_without_percent_is_clean() {
        let r = run_src(
            r#"fn main() -> int { let s: str = input_str("s", 8); format(s); return 7; }"#,
            &[("s", InputValue::text("plain"))],
        );
        assert_eq!(r.outcome, Outcome::Exit(7));
    }

    #[test]
    fn string_iteration_stops_at_nul() {
        let r = run_src(
            r#"fn main() -> int {
                let s: str = input_str("name", 16);
                let i: int = 0;
                while (char_at(s, i) != 0) { i = i + 1; }
                return i;
            }"#,
            &[("name", InputValue::text("hello"))],
        );
        assert_eq!(r.outcome, Outcome::Exit(5));
    }

    #[test]
    fn string_input_truncated_to_capacity() {
        let r = run_src(
            r#"fn main() -> int { let s: str = input_str("x", 3); return len(s); }"#,
            &[("x", InputValue::text("abcdef"))],
        );
        assert_eq!(r.outcome, Outcome::Exit(3));
    }

    #[test]
    fn assert_failure_is_fault() {
        let r = run_src(
            "fn main() { let x: int = input_int(\"n\"); assert(x < 3); }",
            &[("n", InputValue::Int(5))],
        );
        assert_eq!(r.outcome.fault().unwrap().kind, FaultKind::AssertFailed);
    }

    #[test]
    fn division_by_zero_is_fault() {
        let r = run_src(
            "fn main() -> int { let d: int = input_int(\"d\"); return 10 / d; }",
            &[("d", InputValue::Int(0))],
        );
        assert_eq!(r.outcome.fault().unwrap().kind, FaultKind::DivByZero);
    }

    #[test]
    fn missing_input_is_config_error() {
        let p = minic::parse_program("fn main() -> int { return input_int(\"n\"); }").unwrap();
        let m = sir::lower(&p).unwrap();
        let vm = Vm::new(&m, VmConfig::default());
        assert_eq!(
            vm.run(&InputMap::new()),
            Err(VmError::MissingInput("n".into()))
        );
    }

    #[test]
    fn runaway_recursion_hits_stack_limit() {
        let r = run_src(
            "fn loopy(x: int) -> int { return loopy(x + 1); } fn main() -> int { return loopy(0); }",
            &[],
        );
        assert_eq!(r.outcome.fault().unwrap().kind, FaultKind::StackOverflow);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let p = minic::parse_program("fn main() { while (true) { print(1); } }").unwrap();
        let m = sir::lower(&p).unwrap();
        let vm = Vm::new(
            &m,
            VmConfig {
                max_steps: 1000,
                ..VmConfig::default()
            },
        );
        let r = vm.run(&InputMap::new()).unwrap();
        assert_eq!(r.outcome, Outcome::StepLimit);
    }

    #[test]
    fn exit_builtin_halts_immediately() {
        let r = run_src("fn main() -> int { exit(42); return 0; }", &[]);
        assert_eq!(r.outcome, Outcome::Exit(42));
    }

    #[test]
    fn short_circuit_avoids_rhs_effects() {
        // If `&&` did not short-circuit, char_at(s, 99) would fault.
        let r = run_src(
            r#"fn main() -> int {
                let s: str = "ab";
                if (len(s) > 5 && char_at(s, 99) == 0) { return 1; }
                return 0;
            }"#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::Exit(0));
    }

    #[test]
    fn hook_sees_enter_and_exit_events() {
        struct Spy(Vec<String>);
        impl ExecHook for Spy {
            fn on_enter(&mut self, f: &FuncBody, _: &[Value], _: &[GlobalDef], _: &[Value]) {
                self.0.push(format!("enter {}", f.name));
            }
            fn on_exit(&mut self, f: &FuncBody, _: Option<&Value>, _: &[GlobalDef], _: &[Value]) {
                self.0.push(format!("leave {}", f.name));
            }
        }
        let p =
            minic::parse_program("fn inner() { return; } fn main() { inner(); return; }").unwrap();
        let m = sir::lower(&p).unwrap();
        let vm = Vm::new(&m, VmConfig::default());
        let mut spy = Spy(Vec::new());
        vm.run_hooked(&InputMap::new(), &mut spy).unwrap();
        assert_eq!(
            spy.0,
            vec!["enter main", "enter inner", "leave inner", "leave main"]
        );
    }

    #[test]
    fn faulting_function_emits_no_leave() {
        struct Spy(Vec<String>);
        impl ExecHook for Spy {
            fn on_enter(&mut self, f: &FuncBody, _: &[Value], _: &[GlobalDef], _: &[Value]) {
                self.0.push(format!("enter {}", f.name));
            }
            fn on_exit(&mut self, f: &FuncBody, _: Option<&Value>, _: &[GlobalDef], _: &[Value]) {
                self.0.push(format!("leave {}", f.name));
            }
        }
        let p = minic::parse_program(
            r#"
            fn boom() { let b: buf[2]; buf_set(b, 5, 0); }
            fn main() { boom(); return; }
            "#,
        )
        .unwrap();
        let m = sir::lower(&p).unwrap();
        let vm = Vm::new(&m, VmConfig::default());
        let mut spy = Spy(Vec::new());
        let r = vm.run_hooked(&InputMap::new(), &mut spy).unwrap();
        assert!(r.outcome.is_fault());
        assert_eq!(spy.0, vec!["enter main", "enter boom"]);
    }
}
