//! Text serialization of execution logs.
//!
//! The paper's monitor writes one log *file* per run (hundreds of MB for
//! Grep); the statistical module reads them back. This module provides
//! the equivalent plain-text format:
//!
//! ```text
//! #verdict faulty
//! #fault convert_fileName 35:13 buffer-overflow
//! @ convert_fileName():enter
//! len(original FUNCPARAM) = 517
//! track GLOBAL = 3
//! @ main():leave
//! ret RETURN = 0
//! ```
//!
//! Parsing is strict: malformed lines are reported with their line
//! number rather than skipped, so corrupted corpora are caught early.

use crate::event::{FnEvent, Location, Measure, VarId, VarRole};
use crate::fault::{Fault, FaultKind};
use crate::monitor::{ExecutionLog, LogRecord, Verdict};
use minic::Span;
use std::fmt;

/// Error produced when parsing a log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLogError {}

/// Serializes a log to the text format.
pub fn write_log(log: &ExecutionLog) -> String {
    let mut out = String::new();
    let verdict = match log.verdict {
        Verdict::Correct => "correct",
        Verdict::Faulty => "faulty",
        Verdict::Inconclusive => "inconclusive",
    };
    out.push_str("#verdict ");
    out.push_str(verdict);
    out.push('\n');
    if let Some(fault) = &log.fault {
        out.push_str(&format!(
            "#fault {} {}:{} {}\n",
            fault.func,
            fault.span.line,
            fault.span.col,
            fault_tag(&fault.kind)
        ));
    }
    for rec in &log.records {
        out.push_str(&format!("@ {}\n", rec.loc));
        for (var, value) in &rec.vars {
            out.push_str(&format!("{var} = {value}\n"));
        }
    }
    out
}

fn fault_tag(kind: &FaultKind) -> String {
    match kind {
        FaultKind::BufferOverflow { cap, idx } => format!("buffer-overflow/{cap}/{idx}"),
        FaultKind::StringOob { len, idx } => format!("string-oob/{len}/{idx}"),
        FaultKind::AssertFailed => "assert-failed".into(),
        FaultKind::DivByZero => "div-by-zero".into(),
        FaultKind::StackOverflow => "stack-overflow".into(),
        FaultKind::AllocOverflow { req } => format!("alloc-overflow/{req}"),
        FaultKind::OffByOne { cap } => format!("off-by-one/{cap}"),
        FaultKind::FormatString { idx } => format!("format-string/{idx}"),
        FaultKind::UseAfterFree => "use-after-free".into(),
    }
}

fn parse_fault_tag(tag: &str) -> Option<FaultKind> {
    let mut parts = tag.split('/');
    match parts.next()? {
        "buffer-overflow" => Some(FaultKind::BufferOverflow {
            cap: parts.next()?.parse().ok()?,
            idx: parts.next()?.parse().ok()?,
        }),
        "string-oob" => Some(FaultKind::StringOob {
            len: parts.next()?.parse().ok()?,
            idx: parts.next()?.parse().ok()?,
        }),
        "assert-failed" => Some(FaultKind::AssertFailed),
        "div-by-zero" => Some(FaultKind::DivByZero),
        "stack-overflow" => Some(FaultKind::StackOverflow),
        "alloc-overflow" => Some(FaultKind::AllocOverflow {
            req: parts.next()?.parse().ok()?,
        }),
        "off-by-one" => Some(FaultKind::OffByOne {
            cap: parts.next()?.parse().ok()?,
        }),
        "format-string" => Some(FaultKind::FormatString {
            idx: parts.next()?.parse().ok()?,
        }),
        "use-after-free" => Some(FaultKind::UseAfterFree),
        _ => None,
    }
}

/// Parses one serialized log.
///
/// # Errors
///
/// Returns a [`ParseLogError`] with the offending line number on any
/// malformed header, location, or variable line.
pub fn parse_log(text: &str) -> Result<ExecutionLog, ParseLogError> {
    let err = |line: usize, message: &str| ParseLogError {
        line,
        message: message.to_string(),
    };
    let mut verdict = None;
    let mut fault: Option<Fault> = None;
    let mut records: Vec<LogRecord> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix("#verdict ") {
            verdict = Some(match v {
                "correct" => Verdict::Correct,
                "faulty" => Verdict::Faulty,
                "inconclusive" => Verdict::Inconclusive,
                _ => return Err(err(lineno, "unknown verdict")),
            });
        } else if let Some(rest) = line.strip_prefix("#fault ") {
            let mut parts = rest.split_whitespace();
            let func = parts
                .next()
                .ok_or_else(|| err(lineno, "missing fault function"))?;
            let pos = parts
                .next()
                .ok_or_else(|| err(lineno, "missing fault position"))?;
            let (l, c) = pos
                .split_once(':')
                .ok_or_else(|| err(lineno, "bad fault position"))?;
            let kind = parts
                .next()
                .and_then(parse_fault_tag)
                .ok_or_else(|| err(lineno, "bad fault kind"))?;
            fault = Some(Fault {
                kind,
                func: func.to_string(),
                span: Span::new(
                    l.parse().map_err(|_| err(lineno, "bad line number"))?,
                    c.parse().map_err(|_| err(lineno, "bad column number"))?,
                ),
            });
        } else if let Some(loc) = line.strip_prefix("@ ") {
            records.push(LogRecord {
                loc: parse_location(loc).ok_or_else(|| err(lineno, "bad location"))?,
                vars: Vec::new(),
            });
        } else if let Some((var, value)) = line.split_once(" = ") {
            let rec = records
                .last_mut()
                .ok_or_else(|| err(lineno, "variable before any location"))?;
            let var = parse_var(var).ok_or_else(|| err(lineno, "bad variable"))?;
            let value: f64 = value.parse().map_err(|_| err(lineno, "bad value"))?;
            rec.vars.push((var, value));
        } else {
            return Err(err(lineno, "unrecognized line"));
        }
    }

    Ok(ExecutionLog {
        records,
        verdict: verdict.ok_or_else(|| err(0, "missing #verdict header"))?,
        fault,
    })
}

fn parse_location(s: &str) -> Option<Location> {
    let (func, event) = s.split_once("():")?;
    let event = match event {
        "enter" => FnEvent::Enter,
        "leave" => FnEvent::Leave,
        _ => return None,
    };
    Some(Location {
        func: func.to_string(),
        event,
    })
}

fn parse_var(s: &str) -> Option<VarId> {
    let (inner, measure) = match s.strip_prefix("len(").and_then(|r| r.strip_suffix(')')) {
        Some(inner) => (inner, Measure::Length),
        None => (s, Measure::Value),
    };
    let (name, role) = inner.rsplit_once(' ')?;
    let role = match role {
        "GLOBAL" => VarRole::Global,
        "FUNCPARAM" => VarRole::Param,
        "RETURN" => VarRole::Return,
        _ => return None,
    };
    Some(VarId::new(name, role, measure))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ExecutionLog {
        ExecutionLog {
            records: vec![
                LogRecord {
                    loc: Location::enter("convert_fileName"),
                    vars: vec![
                        (
                            VarId::new("original", VarRole::Param, Measure::Length),
                            517.0,
                        ),
                        (VarId::new("track", VarRole::Global, Measure::Value), 3.0),
                    ],
                },
                LogRecord {
                    loc: Location::leave("main"),
                    vars: vec![(VarId::new("ret", VarRole::Return, Measure::Value), 0.0)],
                },
            ],
            verdict: Verdict::Faulty,
            fault: Some(Fault {
                kind: FaultKind::BufferOverflow { cap: 512, idx: 513 },
                func: "convert_fileName".into(),
                span: Span::new(35, 13),
            }),
        }
    }

    #[test]
    fn roundtrip_preserves_log() {
        let log = sample_log();
        let text = write_log(&log);
        let parsed = parse_log(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn roundtrip_correct_log_without_fault() {
        let log = ExecutionLog {
            records: vec![LogRecord {
                loc: Location::enter("main"),
                vars: vec![],
            }],
            verdict: Verdict::Correct,
            fault: None,
        };
        assert_eq!(parse_log(&write_log(&log)).unwrap(), log);
    }

    #[test]
    fn rejects_missing_verdict() {
        assert!(parse_log("@ main():enter\n").is_err());
    }

    #[test]
    fn rejects_variable_before_location() {
        let e = parse_log("#verdict correct\nx GLOBAL = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("before any location"));
    }

    #[test]
    fn rejects_garbage_lines() {
        let e = parse_log("#verdict correct\n???\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn negative_and_fractional_values_roundtrip() {
        let mut log = sample_log();
        log.records[0].vars[0].1 = -12.5;
        let parsed = parse_log(&write_log(&log)).unwrap();
        assert_eq!(parsed.records[0].vars[0].1, -12.5);
    }

    #[test]
    fn all_fault_kinds_roundtrip() {
        for kind in [
            FaultKind::BufferOverflow { cap: 4, idx: 9 },
            FaultKind::StringOob { len: 3, idx: -1 },
            FaultKind::AssertFailed,
            FaultKind::DivByZero,
            FaultKind::StackOverflow,
            FaultKind::AllocOverflow {
                req: -70368744177664,
            },
            FaultKind::OffByOne { cap: 16 },
            FaultKind::FormatString { idx: 3 },
            FaultKind::UseAfterFree,
        ] {
            let mut log = sample_log();
            log.fault.as_mut().unwrap().kind = kind;
            let parsed = parse_log(&write_log(&log)).unwrap();
            assert_eq!(parsed.fault.unwrap().kind, kind);
        }
    }

    #[test]
    fn monitored_run_roundtrips() {
        // An actual monitored execution survives the write/parse cycle.
        let p = minic::parse_program(
            r#"
            global count: int = 0;
            fn bump(v: int) -> int { count = count + v; return count; }
            fn main() { print(bump(3)); print(bump(4)); }
            "#,
        )
        .unwrap();
        let module = sir::lower(&p).unwrap();
        let run = crate::runner::run_logged(&module, &Default::default(), 1.0, 0).unwrap();
        let text = write_log(&run.log);
        assert_eq!(parse_log(&text).unwrap(), run.log);
    }
}
