//! Fault (vulnerability manifestation) descriptions.

use minic::Span;
use std::fmt;

/// Largest `alloc(n)` request either VM will honor. Requests outside
/// `[0, MAX_ALLOC]` raise [`FaultKind::AllocOverflow`], modeling the
/// truncation/overflow ASAN-style check at the allocation site.
pub const MAX_ALLOC: i64 = 4096;

/// The vulnerability classes the VM detects, mirroring the paper's
/// benchmark bug classes (buffer overruns, assertion violations, integer
/// handling errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Write or read outside a buffer's capacity — the paper's stack
    /// buffer overflow class (polymorph, CTree, Grep, thttpd).
    BufferOverflow {
        /// Capacity of the violated buffer.
        cap: u32,
        /// Offending index.
        idx: i64,
    },
    /// String read beyond the NUL terminator or at a negative index.
    StringOob {
        /// Length of the string.
        len: u32,
        /// Offending index.
        idx: i64,
    },
    /// `assert(..)` evaluated to false.
    AssertFailed,
    /// Division or remainder by zero.
    DivByZero,
    /// Call depth exceeded the configured limit (runaway recursion).
    StackOverflow,
    /// `alloc(n)` requested a size outside `[0, MAX_ALLOC]` — the
    /// integer-overflow/truncation-feeding-an-allocation class.
    AllocOverflow {
        /// The out-of-range requested size.
        req: i64,
    },
    /// Write or read at exactly `cap` on a dynamically allocated buffer:
    /// the classic `<=` loop-bound off-by-one.
    OffByOne {
        /// Capacity of the violated buffer.
        cap: u32,
    },
    /// A `%` byte reached the `format(..)` sink (format-string class).
    FormatString {
        /// Byte offset of the first `%` in the formatted string.
        idx: i64,
    },
    /// Access (or double free) of a freed or never-allocated heap buffer.
    UseAfterFree,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::BufferOverflow { cap, idx } => {
                write!(f, "buffer overflow: index {idx} on capacity {cap}")
            }
            FaultKind::StringOob { len, idx } => {
                write!(f, "string read out of bounds: index {idx} on length {len}")
            }
            FaultKind::AssertFailed => f.write_str("assertion failed"),
            FaultKind::DivByZero => f.write_str("division by zero"),
            FaultKind::StackOverflow => f.write_str("call stack overflow"),
            FaultKind::AllocOverflow { req } => {
                write!(f, "allocation overflow: requested size {req}")
            }
            FaultKind::OffByOne { cap } => {
                write!(f, "off-by-one: index {cap} on capacity {cap}")
            }
            FaultKind::FormatString { idx } => {
                write!(f, "format string: `%` at offset {idx}")
            }
            FaultKind::UseAfterFree => f.write_str("use after free"),
        }
    }
}

/// A detected fault: the paper's *fault point* (root cause site). The
/// *failure point* — where the fault manifests to the user — is derived
/// by the statistical analysis from the logs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Function containing the fault point.
    pub func: String,
    /// Source location of the faulting statement.
    pub span: Span,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in `{}` at {}", self.kind, self.func, self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display_mentions_function_and_kind() {
        let fault = Fault {
            kind: FaultKind::BufferOverflow { cap: 512, idx: 513 },
            func: "convert_fileName".into(),
            span: Span::new(10, 5),
        };
        let s = fault.to_string();
        assert!(s.contains("convert_fileName"));
        assert!(s.contains("buffer overflow"));
        assert!(s.contains("10:5"));
    }
}
