//! Runtime values for the concrete VM.

use std::fmt;
use std::rc::Rc;

/// A concrete runtime value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// 64-bit signed integer (also bytes/chars).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Immutable byte string (cheaply clonable).
    Str(Rc<[u8]>),
    /// Reference to a mutable buffer in the run's heap.
    Buf(usize),
    /// Result of a void call; never read.
    Unit,
}

impl Value {
    /// Makes a string value from bytes.
    pub fn str_from(bytes: impl Into<Vec<u8>>) -> Value {
        Value::Str(bytes.into().into())
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int` (the type checker rules this
    /// out for well-typed programs).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int value, found {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool value, found {other:?}"),
        }
    }

    /// The string payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Str`.
    pub fn as_str_bytes(&self) -> &[u8] {
        match self {
            Value::Str(s) => s,
            other => panic!("expected str value, found {other:?}"),
        }
    }

    /// The buffer id payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Buf`.
    pub fn as_buf(&self) -> usize {
        match self {
            Value::Buf(b) => *b,
            other => panic!("expected buf value, found {other:?}"),
        }
    }

    /// The numeric view the program monitor logs: ints as themselves,
    /// bools as 0/1, strings as their length. Buffers and unit have no
    /// loggable value.
    pub fn numeric_view(&self) -> Option<(f64, bool)> {
        match self {
            Value::Int(v) => Some((*v as f64, false)),
            Value::Bool(b) => Some((if *b { 1.0 } else { 0.0 }, false)),
            Value::Str(s) => Some((s.len() as f64, true)),
            Value::Buf(_) | Value::Unit => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{:?}", String::from_utf8_lossy(s)),
            Value::Buf(id) => write!(f, "<buf#{id}>"),
            Value::Unit => write!(f, "<unit>"),
        }
    }
}

/// A named input supplied to a concrete run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputValue {
    /// Integer input (for `input_int`).
    Int(i64),
    /// String input (for `input_str`); truncated to the declared capacity
    /// on read, like a bounded `read(2)`.
    Str(Vec<u8>),
}

impl InputValue {
    /// Convenience constructor from text.
    pub fn text(s: &str) -> InputValue {
        InputValue::Str(s.as_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_view_transforms() {
        assert_eq!(Value::Int(-3).numeric_view(), Some((-3.0, false)));
        assert_eq!(Value::Bool(true).numeric_view(), Some((1.0, false)));
        assert_eq!(Value::str_from(*b"abc").numeric_view(), Some((3.0, true)));
        assert_eq!(Value::Buf(0).numeric_view(), None);
        assert_eq!(Value::Unit.numeric_view(), None);
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::str_from(*b"xy").as_str_bytes(), b"xy");
        assert_eq!(Value::Buf(5).as_buf(), 5);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_panics_on_bool() {
        Value::Bool(false).as_int();
    }
}
