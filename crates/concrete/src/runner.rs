//! Convenience driver: run a program once, monitored, and get both the
//! execution result and the sampled log.

use crate::monitor::{ExecutionLog, Monitor};
use crate::vm::{InputMap, RunResult, Vm, VmConfig, VmError};
use sir::Module;

/// A monitored run: the VM result plus the sampled execution log.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedRun {
    /// VM outcome, step count and output.
    pub result: RunResult,
    /// The sampled log annotated with its verdict.
    pub log: ExecutionLog,
}

/// Runs `module` on `inputs` under the program monitor.
///
/// `sampling_rate` is the per-record retention probability; `seed` makes
/// sampling deterministic.
///
/// # Errors
///
/// Returns [`VmError`] if a required input is missing or ill-kinded.
///
/// # Example
///
/// ```
/// use concrete::{run_logged, InputValue};
///
/// let p = minic::parse_program(r#"
///     fn main() -> int { let n: int = input_int("n"); assert(n < 10); return n; }
/// "#)?;
/// let m = sir::lower(&p)?;
/// let inputs = [("n".into(), InputValue::Int(3))].into_iter().collect();
/// let run = run_logged(&m, &inputs, 1.0, 0)?;
/// assert!(run.result.outcome.is_success());
/// assert_eq!(run.log.records.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_logged(
    module: &Module,
    inputs: &InputMap,
    sampling_rate: f64,
    seed: u64,
) -> Result<LoggedRun, VmError> {
    run_logged_with(module, inputs, sampling_rate, seed, VmConfig::default())
}

/// Like [`run_logged`] with an explicit [`VmConfig`].
///
/// # Errors
///
/// Returns [`VmError`] if a required input is missing or ill-kinded.
pub fn run_logged_with(
    module: &Module,
    inputs: &InputMap,
    sampling_rate: f64,
    seed: u64,
    config: VmConfig,
) -> Result<LoggedRun, VmError> {
    run_logged_traced(
        module,
        inputs,
        sampling_rate,
        seed,
        config,
        &statsym_telemetry::NOOP,
    )
}

/// Like [`run_logged_with`] with a telemetry recorder: the monitor's
/// sampled/dropped record counts are added to the recorder's metrics.
///
/// # Errors
///
/// Returns [`VmError`] if a required input is missing or ill-kinded.
pub fn run_logged_traced(
    module: &Module,
    inputs: &InputMap,
    sampling_rate: f64,
    seed: u64,
    config: VmConfig,
    rec: &dyn statsym_telemetry::Recorder,
) -> Result<LoggedRun, VmError> {
    let vm = Vm::new(module, config);
    let mut monitor = Monitor::traced(sampling_rate, seed, rec);
    let result = vm.run_hooked(inputs, &mut monitor)?;
    let log = monitor.finish_with(&result.outcome);
    Ok(LoggedRun { result, log })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Verdict;
    use crate::value::InputValue;

    #[test]
    fn faulty_run_produces_faulty_log() {
        let p = minic::parse_program(
            r#"
            fn overflow(s: str) {
                let b: buf[4];
                let i: int = 0;
                while (char_at(s, i) != 0) { buf_set(b, i, char_at(s, i)); i = i + 1; }
            }
            fn main() { let s: str = input_str("a", 32); overflow(s); return; }
            "#,
        )
        .unwrap();
        let m = sir::lower(&p).unwrap();
        let inputs: InputMap = [("a".to_string(), InputValue::text("way too long"))]
            .into_iter()
            .collect();
        let run = run_logged(&m, &inputs, 1.0, 0).unwrap();
        assert_eq!(run.log.verdict, Verdict::Faulty);
        assert_eq!(run.log.fault.as_ref().unwrap().func, "overflow");
        // The faulting function has an enter record but no leave record.
        let enters = run
            .log
            .records
            .iter()
            .filter(|r| r.loc.func == "overflow")
            .count();
        assert_eq!(enters, 1);
    }

    #[test]
    fn correct_run_produces_correct_log() {
        let p = minic::parse_program("fn main() -> int { return 0; }").unwrap();
        let m = sir::lower(&p).unwrap();
        let run = run_logged(&m, &InputMap::new(), 1.0, 0).unwrap();
        assert_eq!(run.log.verdict, Verdict::Correct);
    }
}
