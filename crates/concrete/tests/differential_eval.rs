//! Differential property test: random MiniC integer expressions are
//! pretty-printed into a program, executed on the VM, and compared
//! against a host-side reference evaluator with the same (wrapping,
//! fault-on-div-zero) semantics.

use concrete::{InputMap, Outcome, Vm, VmConfig};
use proptest::prelude::*;

/// A tiny expression tree over two integer variables.
#[derive(Debug, Clone)]
enum E {
    Const(i64),
    X,
    Y,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Neg(Box<E>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-50i64..=50).prop_map(E::Const), Just(E::X), Just(E::Y),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Const(v) if *v < 0 => format!("(0 - {})", -v),
        E::Const(v) => v.to_string(),
        E::X => "x".into(),
        E::Y => "y".into(),
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::Div(a, b) => format!("({} / {})", render(a), render(b)),
        E::Rem(a, b) => format!("({} % {})", render(a), render(b)),
        E::Neg(a) => format!("(-{})", render(a)),
    }
}

/// Host-side reference: `None` = division by zero fault.
fn eval(e: &E, x: i64, y: i64) -> Option<i64> {
    Some(match e {
        E::Const(v) => *v,
        E::X => x,
        E::Y => y,
        E::Add(a, b) => eval(a, x, y)?.wrapping_add(eval(b, x, y)?),
        E::Sub(a, b) => eval(a, x, y)?.wrapping_sub(eval(b, x, y)?),
        E::Mul(a, b) => eval(a, x, y)?.wrapping_mul(eval(b, x, y)?),
        E::Div(a, b) => {
            let (av, bv) = (eval(a, x, y)?, eval(b, x, y)?);
            if bv == 0 {
                return None;
            }
            av.wrapping_div(bv)
        }
        E::Rem(a, b) => {
            let (av, bv) = (eval(a, x, y)?, eval(b, x, y)?);
            if bv == 0 {
                return None;
            }
            av.wrapping_rem(bv)
        }
        E::Neg(a) => eval(a, x, y)?.wrapping_neg(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn vm_matches_reference_evaluator(e in expr_strategy(), x in -30i64..=30, y in -30i64..=30) {
        let src = format!(
            "fn main() -> int {{\n    let x: int = input_int(\"x\");\n    let y: int = input_int(\"y\");\n    return {};\n}}\n",
            render(&e)
        );
        let program = minic::parse_program(&src).expect("generated source parses");
        let module = sir::lower(&program).expect("generated source lowers");
        let vm = Vm::new(&module, VmConfig::default());
        let inputs: InputMap = [
            ("x".to_string(), concrete::InputValue::Int(x)),
            ("y".to_string(), concrete::InputValue::Int(y)),
        ]
        .into_iter()
        .collect();
        let result = vm.run(&inputs).expect("inputs provided");
        match (eval(&e, x, y), &result.outcome) {
            (Some(expected), Outcome::Exit(got)) => prop_assert_eq!(*got, expected),
            (None, Outcome::Fault(f)) => {
                prop_assert_eq!(f.kind, concrete::FaultKind::DivByZero);
            }
            (expected, got) => {
                prop_assert!(false, "mismatch: reference {expected:?}, vm {got:?}\n{src}");
            }
        }
    }

    #[test]
    fn comparisons_match_reference(a in expr_strategy(), x in -20i64..=20, y in -20i64..=20,
                                   op_idx in 0usize..6) {
        let ops = ["==", "!=", "<", "<=", ">", ">="];
        let op = ops[op_idx];
        let src = format!(
            "fn main() -> int {{\n    let x: int = input_int(\"x\");\n    let y: int = input_int(\"y\");\n    if ({} {op} 3) {{ return 1; }}\n    return 0;\n}}\n",
            render(&a)
        );
        let program = minic::parse_program(&src).unwrap();
        let module = sir::lower(&program).unwrap();
        let vm = Vm::new(&module, VmConfig::default());
        let inputs: InputMap = [
            ("x".to_string(), concrete::InputValue::Int(x)),
            ("y".to_string(), concrete::InputValue::Int(y)),
        ]
        .into_iter()
        .collect();
        let result = vm.run(&inputs).unwrap();
        match eval(&a, x, y) {
            Some(v) => {
                let expected = match op {
                    "==" => v == 3,
                    "!=" => v != 3,
                    "<" => v < 3,
                    "<=" => v <= 3,
                    ">" => v > 3,
                    _ => v >= 3,
                };
                prop_assert_eq!(result.outcome, Outcome::Exit(i64::from(expected)));
            }
            None => prop_assert!(result.outcome.is_fault()),
        }
    }
}
