//! Grammar-directed fuzzing of the whole front-end → IR → VM pipeline:
//! randomly generated *well-typed* MiniC programs must parse, check,
//! lower, verify, pretty-print-roundtrip, and execute without panicking;
//! any fault raised must be one of the defined fault classes.

use concrete::{InputMap, InputValue, Outcome, Vm, VmConfig};
use proptest::prelude::*;

/// Generator state: tracks declared int variables so references are
/// always valid.
#[derive(Debug, Clone)]
struct GenProgram {
    stmts: Vec<GenStmt>,
}

#[derive(Debug, Clone)]
enum GenStmt {
    /// `let vN: int = <expr>;`
    Let(GenExpr),
    /// `vK = <expr>;` (index resolved modulo declared count)
    Assign(usize, GenExpr),
    /// `if (<expr> <op> <expr>) { .. } else { .. }`
    If(GenExpr, GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    /// Bounded while loop: `while (vK < <small>) { vK = vK + 1; .. }`
    BoundedLoop(usize, i64, Vec<GenStmt>),
    /// `print(<expr>);`
    Print(GenExpr),
}

#[derive(Debug, Clone)]
enum GenExpr {
    Const(i64),
    Var(usize),
    Input,
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
}

fn gen_expr() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (-100i64..=100).prop_map(GenExpr::Const),
        (0usize..8).prop_map(GenExpr::Var),
        Just(GenExpr::Input),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn gen_stmts(depth: u32) -> BoxedStrategy<Vec<GenStmt>> {
    let stmt = if depth == 0 {
        prop_oneof![
            gen_expr().prop_map(GenStmt::Let),
            (0usize..8, gen_expr()).prop_map(|(i, e)| GenStmt::Assign(i, e)),
            gen_expr().prop_map(GenStmt::Print),
        ]
        .boxed()
    } else {
        let inner = gen_stmts(depth - 1);
        prop_oneof![
            gen_expr().prop_map(GenStmt::Let),
            (0usize..8, gen_expr()).prop_map(|(i, e)| GenStmt::Assign(i, e)),
            gen_expr().prop_map(GenStmt::Print),
            (gen_expr(), gen_expr(), inner.clone(), inner.clone())
                .prop_map(|(a, b, t, e)| GenStmt::If(a, b, t, e)),
            ((0usize..8), (1i64..6), inner).prop_map(|(v, n, b)| GenStmt::BoundedLoop(v, n, b)),
        ]
        .boxed()
    };
    proptest::collection::vec(stmt, 1..5).boxed()
}

fn gen_program() -> impl Strategy<Value = GenProgram> {
    gen_stmts(2).prop_map(|stmts| GenProgram { stmts })
}

/// Renders the generated program. `n_vars` tracks declarations so every
/// reference is to an existing variable (v0 always exists).
fn render(p: &GenProgram) -> String {
    let mut out = String::from("fn main() {\n    let v0: int = input_int(\"seed\");\n");
    let mut n_vars = 1usize;
    let mut counters = Vec::new();
    render_stmts(&p.stmts, &mut out, &mut n_vars, &mut counters, 1);
    out.push_str("    print(v0);\n}\n");
    out
}

fn render_stmts(
    stmts: &[GenStmt],
    out: &mut String,
    n_vars: &mut usize,
    counters: &mut Vec<usize>,
    depth: usize,
) {
    let pad = "    ".repeat(depth);
    for s in stmts {
        match s {
            GenStmt::Let(e) => {
                let name = format!("v{}", *n_vars);
                out.push_str(&format!(
                    "{pad}let {name}: int = {};\n",
                    render_expr(e, *n_vars)
                ));
                *n_vars += 1;
            }
            GenStmt::Assign(i, e) => {
                // Never clobber a live loop counter: that could turn a
                // bounded loop into an infinite one.
                let mut target = i % *n_vars;
                if counters.contains(&target) {
                    target = 0;
                }
                out.push_str(&format!("{pad}v{target} = {};\n", render_expr(e, *n_vars)));
            }
            GenStmt::If(a, b, t, els) => {
                out.push_str(&format!(
                    "{pad}if ({} < {}) {{\n",
                    render_expr(a, *n_vars),
                    render_expr(b, *n_vars)
                ));
                // Scoping: declarations inside branches leak to the
                // function scope in MiniC (locals are default-initialized
                // at function entry), but redefinition is an error, so
                // thread n_vars through sequentially.
                render_stmts(t, out, n_vars, counters, depth + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(els, out, n_vars, counters, depth + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::BoundedLoop(v, n, body) => {
                let ctr_idx = *n_vars;
                let ctr = format!("v{ctr_idx}");
                *n_vars += 1;
                out.push_str(&format!("{pad}let {ctr}: int = 0;\n"));
                out.push_str(&format!("{pad}while ({ctr} < {n}) {{\n"));
                out.push_str(&format!("{pad}    {ctr} = {ctr} + 1;\n"));
                counters.push(ctr_idx);
                render_stmts(body, out, n_vars, counters, depth + 1);
                counters.pop();
                let _ = v;
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::Print(e) => {
                out.push_str(&format!("{pad}print({});\n", render_expr(e, *n_vars)));
            }
        }
    }
}

fn render_expr(e: &GenExpr, n_vars: usize) -> String {
    match e {
        GenExpr::Const(v) if *v < 0 => format!("(0 - {})", -v),
        GenExpr::Const(v) => v.to_string(),
        GenExpr::Var(i) => format!("v{}", i % n_vars),
        GenExpr::Input => "v0".to_string(),
        GenExpr::Add(a, b) => format!("({} + {})", render_expr(a, n_vars), render_expr(b, n_vars)),
        GenExpr::Sub(a, b) => format!("({} - {})", render_expr(a, n_vars), render_expr(b, n_vars)),
        GenExpr::Mul(a, b) => format!("({} * {})", render_expr(a, n_vars), render_expr(b, n_vars)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn generated_programs_run_through_the_whole_pipeline(p in gen_program(), seed in -50i64..=50) {
        let src = render(&p);

        // Front end.
        let program = minic::parse_program(&src)
            .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));

        // Pretty-print fixpoint.
        let printed = minic::print_program(&program);
        let reparsed = minic::parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program rejected: {e}\n{printed}"));
        prop_assert_eq!(minic::print_program(&reparsed), printed);

        // Lowering + validation.
        let module = sir::lower(&program).unwrap_or_else(|e| panic!("lowering failed: {e}\n{src}"));
        sir::verify(&module).unwrap_or_else(|e| panic!("invalid SIR: {e}\n{src}"));

        // CFG sanity on main.
        let cfg = sir::Cfg::build(module.function_by_name("main").unwrap());
        prop_assert!(cfg.reachable().len() <= cfg.len());

        // Concrete execution terminates (loops are bounded) without
        // panics; outcome is Exit (generated arithmetic cannot fault).
        let vm = Vm::new(&module, VmConfig::default());
        let inputs: InputMap = [("seed".to_string(), InputValue::Int(seed))].into_iter().collect();
        let result = vm.run(&inputs).expect("input provided");
        prop_assert!(matches!(result.outcome, Outcome::Exit(_)), "{:?}\n{src}", result.outcome);

        // Determinism.
        let again = vm.run(&inputs).expect("input provided");
        prop_assert_eq!(result.outcome, again.outcome);
        prop_assert_eq!(result.output, again.output);
    }
}
