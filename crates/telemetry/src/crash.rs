//! Crash diagnostic bundles.
//!
//! A run armed with a [`CrashGuard`] captures everything needed to
//! reproduce and triage a panic: the panic message and location, the
//! effective config, the exact reproduce command, a copy of the partial
//! trace, and a [`RunManifest`](crate::manifest::RunManifest) folded
//! from that partial trace with budget disposition `"crashed"`. The
//! bundle lands under `<dir>/<run>/` (`results/crash/` by convention).
//!
//! The guard chains the previously installed panic hook, so the default
//! backtrace printing (or a test harness's capture) still runs. It is
//! armed exactly once: a clean finish calls [`CrashGuard::disarm`] and
//! the hook becomes a no-op, and a second panic cannot double-write the
//! bundle because arming is a `swap(false)`.

use crate::manifest::{ManifestMeta, RunManifest};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Everything a crash bundle needs, captured up front while the run is
/// still healthy.
#[derive(Debug, Clone, Default)]
pub struct CrashContext {
    /// Bundle root (`results/crash` by convention); the bundle itself is
    /// written to `<dir>/<run>/`.
    pub dir: String,
    /// Run id — names the bundle directory.
    pub run: String,
    /// Exact command line that reproduces the crashed run.
    pub reproduce: String,
    /// Human-readable dump of the effective configuration.
    pub config: String,
    /// Path of the (partial) trace file being written, if any.
    pub trace_path: Option<String>,
    /// Manifest identity fields for the crash manifest.
    pub meta: ManifestMeta,
}

/// Writes the crash bundle for `ctx` to `<ctx.dir>/<ctx.run>/`, with
/// `panic_msg` as the captured panic payload + location. Returns the
/// bundle directory.
///
/// The partial trace (when present) is copied into the bundle as
/// `trace.partial.jsonl` and folded into `manifest.jsonl` via the
/// truncated parser, so the manifest carries budget disposition
/// `"crashed"`. A trace too damaged even for the truncated parser is
/// reported in `manifest.error.txt` instead of aborting the bundle.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures for the
/// required members (`panic.txt`, `config.txt`, `reproduce.txt`).
pub fn write_bundle(ctx: &CrashContext, panic_msg: &str) -> io::Result<PathBuf> {
    let bundle = Path::new(&ctx.dir).join(&ctx.run);
    fs::create_dir_all(&bundle)?;
    write_text(&bundle.join("panic.txt"), panic_msg)?;
    write_text(&bundle.join("config.txt"), &ctx.config)?;
    write_text(&bundle.join("reproduce.txt"), &ctx.reproduce)?;
    if let Some(trace) = &ctx.trace_path {
        match fs::read_to_string(trace) {
            Ok(text) => {
                write_text(&bundle.join("trace.partial.jsonl"), &text)?;
                match RunManifest::from_trace_truncated(&text, &ctx.meta) {
                    Ok(m) => {
                        write_text(&bundle.join("manifest.jsonl"), &format!("{}\n", m.render()))?;
                    }
                    Err(e) => {
                        let msg = format!("line {}: {}\n", e.line, e.reason);
                        write_text(&bundle.join("manifest.error.txt"), &msg)?;
                    }
                }
            }
            Err(e) => {
                let msg = format!("unreadable trace {trace}: {e}\n");
                write_text(&bundle.join("manifest.error.txt"), &msg)?;
            }
        }
    }
    Ok(bundle)
}

fn write_text(path: &Path, text: &str) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(text.as_bytes())?;
    if !text.ends_with('\n') {
        f.write_all(b"\n")?;
    }
    f.flush()
}

/// An armed panic hook that writes the crash bundle exactly once.
///
/// Install early (before the engine runs), call
/// [`disarm`](CrashGuard::disarm) when the run finishes cleanly. The
/// process-global hook chains whatever hook was installed before, so
/// stacking guards (tests, nested tools) degrades gracefully: each
/// guard only fires for its own armed window.
#[derive(Debug)]
pub struct CrashGuard {
    armed: Arc<AtomicBool>,
    ctx: Arc<std::sync::Mutex<CrashContext>>,
}

impl CrashGuard {
    /// Installs the chained panic hook and arms it with `ctx`.
    pub fn install(ctx: CrashContext) -> CrashGuard {
        let armed = Arc::new(AtomicBool::new(true));
        let ctx = Arc::new(std::sync::Mutex::new(ctx));
        let hook_armed = Arc::clone(&armed);
        let hook_ctx = Arc::clone(&ctx);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // swap: first panic claims the bundle, re-entrant or later
            // panics fall through to the chained hook only.
            if hook_armed.swap(false, Ordering::SeqCst) {
                let msg = render_panic(info);
                let snapshot = hook_ctx
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone();
                match write_bundle(&snapshot, &msg) {
                    Ok(dir) => {
                        eprintln!("crash bundle written to {}", dir.display());
                    }
                    Err(e) => eprintln!("crash bundle write failed: {e}"),
                }
            }
            prev(info);
        }));
        CrashGuard { armed, ctx }
    }

    /// Amends the armed context in place — for identity fields (seed,
    /// config fingerprint, config dump) resolved only after the guard
    /// had to be installed.
    pub fn update<F: FnOnce(&mut CrashContext)>(&self, f: F) {
        let mut ctx = self
            .ctx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut ctx);
    }

    /// Disarms the hook: the run finished cleanly, no bundle on exit.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }
}

fn render_panic(info: &std::panic::PanicHookInfo<'_>) -> String {
    let payload = info.payload();
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    match info.location() {
        Some(loc) => format!(
            "panicked at {}:{}:{}\n{msg}",
            loc.file(),
            loc.line(),
            loc.column()
        ),
        None => msg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("statsym-crash-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_trace() -> String {
        use crate::Recorder;
        let rec = crate::MemRecorder::new(crate::Clock::steps());
        rec.tick(5);
        rec.counter_add("symex.steps", 5);
        // Sorts after symex.steps, so truncation below severs only this
        // line and the steps counter survives the truncated parse.
        rec.counter_add("zz.tail", 1);
        let events = rec.finish();
        // Truncate mid-line to simulate a crash cutting the writer off.
        let mut text = crate::render_trace(&events);
        text.truncate(text.len() - 4);
        text
    }

    #[test]
    fn bundle_contains_all_members_and_crashed_manifest() {
        let root = temp_dir("bundle");
        let trace_path = root.join("run.jsonl");
        fs::write(&trace_path, sample_trace()).unwrap();
        let ctx = CrashContext {
            dir: root.join("crash").to_string_lossy().into_owned(),
            run: "demo".to_string(),
            reproduce: "cargo run -p statsym-bench --bin portfolio -- --trace run.jsonl"
                .to_string(),
            config: "workers=2".to_string(),
            trace_path: Some(trace_path.to_string_lossy().into_owned()),
            meta: ManifestMeta {
                source: "bench".to_string(),
                run: "demo".to_string(),
                ..ManifestMeta::default()
            },
        };
        let bundle = write_bundle(&ctx, "panicked at x.rs:1:1\nboom").unwrap();
        for member in [
            "panic.txt",
            "config.txt",
            "reproduce.txt",
            "trace.partial.jsonl",
        ] {
            assert!(bundle.join(member).is_file(), "missing {member}");
        }
        let manifest = fs::read_to_string(bundle.join("manifest.jsonl")).unwrap();
        let parsed = RunManifest::parse_line(manifest.trim_end(), 1).expect("manifest parses");
        assert_eq!(parsed.budget, "crashed");
        assert_eq!(parsed.source, "bench");
        assert_eq!(parsed.counters.get("symex.steps"), Some(&5));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unreadable_trace_degrades_to_error_note() {
        let root = temp_dir("noread");
        let ctx = CrashContext {
            dir: root.join("crash").to_string_lossy().into_owned(),
            run: "gone".to_string(),
            trace_path: Some(root.join("missing.jsonl").to_string_lossy().into_owned()),
            ..CrashContext::default()
        };
        let bundle = write_bundle(&ctx, "boom").unwrap();
        assert!(bundle.join("manifest.error.txt").is_file());
        assert!(!bundle.join("manifest.jsonl").exists());
        let _ = fs::remove_dir_all(&root);
    }

    // One test covers the whole hook lifecycle: the panic hook is
    // process-global, so splitting this into parallel test functions
    // would let one test's intentional panic trip another's armed guard.
    #[test]
    fn guard_fires_once_on_panic_and_never_after_disarm() {
        let root = temp_dir("guard");
        let crash_dir = root.join("crash");
        let ctx = CrashContext {
            dir: crash_dir.to_string_lossy().into_owned(),
            run: "panicking".to_string(),
            reproduce: "repro".to_string(),
            config: "cfg".to_string(),
            trace_path: None,
            meta: ManifestMeta::default(),
        };
        let guard = CrashGuard::install(ctx);
        let result = std::panic::catch_unwind(|| panic!("chaos: forced test panic"));
        assert!(result.is_err());
        let bundle = crash_dir.join("panicking");
        let panic_txt = fs::read_to_string(bundle.join("panic.txt")).unwrap();
        assert!(
            panic_txt.contains("chaos: forced test panic"),
            "{panic_txt}"
        );
        assert!(bundle.join("reproduce.txt").is_file());

        // Second panic after the bundle is claimed: no rewrite.
        fs::remove_dir_all(&bundle).unwrap();
        let _ = std::panic::catch_unwind(|| panic!("again"));
        assert!(!bundle.exists(), "bundle must be written at most once");
        guard.disarm();

        // A fresh guard disarmed before any panic stays silent.
        let ctx2 = CrashContext {
            dir: crash_dir.to_string_lossy().into_owned(),
            run: "clean".to_string(),
            ..CrashContext::default()
        };
        let guard2 = CrashGuard::install(ctx2);
        guard2.disarm();
        let _ = std::panic::catch_unwind(|| panic!("after disarm"));
        assert!(!crash_dir.join("clean").exists());
        let _ = fs::remove_dir_all(&root);
    }
}
