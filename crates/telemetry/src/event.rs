//! The trace event model and its JSONL wire format.
//!
//! A trace is a sequence of self-describing lines, one JSON object per
//! line, written in a *canonical* form: fixed key order, no whitespace,
//! integers only (no floats — they cannot round-trip bytewise). The
//! emitter and parser are exact inverses on canonical input, which the
//! round-trip tests pin down byte for byte.

use std::fmt;

/// Identifier of an open span. `SpanId(0)` is the reserved "no span"
/// value used for root parents and by the no-op recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved null span.
    pub const NONE: SpanId = SpanId(0);
}

/// A structured field value attached to an event.
///
/// Deliberately float-free: every value is an integer or a string, so
/// canonical re-emission is byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A signed integer (negative values).
    Int(i64),
    /// An unsigned integer (all non-negative values parse as this).
    Uint(u64),
    /// A string.
    Str(String),
}

impl FieldValue {
    /// The value as `u64`, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::Uint(v) => Some(*v),
            FieldValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            FieldValue::Int(v) => Some(*v),
            FieldValue::Uint(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::Uint(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        if v >= 0 {
            FieldValue::Uint(v as u64)
        } else {
            FieldValue::Int(v)
        }
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::Uint(v as u64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Str(if v { "true" } else { "false" }.to_string())
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Trace header: clock label (`wall_us` / `steps`) and format version.
    Meta {
        /// Clock label.
        clock: String,
        /// Format version (currently 1).
        version: u64,
    },
    /// A span opened at tick `t`.
    SpanOpen {
        /// Open tick.
        t: u64,
        /// Span id (unique, increasing within a trace).
        id: u64,
        /// Enclosing span id (0 = root).
        parent: u64,
        /// Span name (e.g. `phase.transition_mining`).
        name: String,
    },
    /// A span closed at tick `t`.
    SpanClose {
        /// Close tick.
        t: u64,
        /// The id from the matching [`TraceEvent::SpanOpen`].
        id: u64,
    },
    /// A point event with structured fields.
    Event {
        /// Emission tick.
        t: u64,
        /// Event name (e.g. `candidate.result`).
        name: String,
        /// Fields in emission order.
        fields: Vec<(String, FieldValue)>,
    },
    /// Final value of a monotone counter.
    Counter {
        /// Counter name.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// Final value of a gauge (recorded maxima, e.g. peak memory).
    Gauge {
        /// Gauge name.
        name: String,
        /// Final value.
        value: i64,
    },
    /// Final state of a log-scale histogram.
    Hist {
        /// Histogram name.
        name: String,
        /// Number of observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Sparse `(bucket, count)` pairs; bucket `b > 0` covers values
        /// in `[2^(b-1), 2^b - 1]`, bucket 0 holds zeros.
        buckets: Vec<(u32, u64)>,
    },
    /// One state-lineage transition in the exploration tree: a state is
    /// born (`root`/`fork`), changes disposition (`suspend.*`, `resume`,
    /// `kill`), or terminates (`exit`, `fault`, `unconfirmed`). The
    /// `steps`/`snodes`/`sus` fields are *deltas* attributed to the
    /// executing state since the previous lineage event.
    State {
        /// Emission tick.
        t: u64,
        /// Operation, one of [`lineage_op::ALL`].
        op: String,
        /// Trace-global state id (unique and increasing; never 0).
        id: u64,
        /// Parent state id (0 only for `root` states).
        par: u64,
        /// SIR location (`function:bN`) where the transition happened.
        loc: String,
        /// Hop count (divergence from the candidate path) at emission.
        hops: u64,
        /// Path depth (branch decisions taken) at emission.
        depth: u64,
        /// Executor steps attributed since the last lineage event.
        steps: u64,
        /// Solver search-tree nodes attributed since the last lineage
        /// event.
        snodes: u64,
        /// Solver µs attributed since the last lineage event (0 under
        /// the deterministic step clock).
        sus: u64,
    },
    /// Provenance of one solver query: which state asked, from which
    /// source location, under which candidate rank, and how the layered
    /// caches disposed of it. Emitted by the solver dispatch layer when
    /// provenance recording is enabled.
    ///
    /// `sid` is engine- or segment-local (stable for a deterministic
    /// schedule but *not* remapped on buffer merges, unlike lineage
    /// state ids): it identifies the asking state within its enclosing
    /// attempt, not across the whole trace.
    Query {
        /// Emission tick.
        t: u64,
        /// Engine/segment-local id of the state that issued the query.
        sid: u64,
        /// Source location (`function:line`) of the instruction that
        /// triggered the query.
        loc: String,
        /// Candidate rank of the enclosing attempt.
        rank: u64,
        /// Solver callsite (`feasibility`, `fault_model`, …).
        site: String,
        /// Verdict, one of [`query_disposition::VERDICTS`].
        verdict: String,
        /// Cache disposition, one of [`query_disposition::ALL`].
        cache: String,
        /// Solver search-tree nodes this query visited.
        nodes: u64,
        /// Wall µs this query took (0 under the deterministic step
        /// clock).
        us: u64,
    },
}

/// The operation vocabulary of [`TraceEvent::State`], kept in one place
/// so emitters, the strict parser, and `statsym-inspect` cannot drift.
pub mod lineage_op {
    /// Initial state of one engine run (its `par` is always 0).
    pub const ROOT: &str = "root";
    /// A fresh child forked off an executing parent.
    pub const FORK: &str = "fork";
    /// Suspension: the τ hop budget ran out (PAPER.md §IV).
    pub const SUSPEND_TAU: &str = "suspend.tau";
    /// Suspension: an injected candidate predicate conflicted with the
    /// hard path constraints.
    pub const SUSPEND_PREDICATE: &str = "suspend.predicate";
    /// A fork child born suspended by guidance classification.
    pub const SUSPEND_BRANCH: &str = "suspend.branch";
    /// A suspended state re-entered the schedulable pool (guidance off).
    pub const RESUME: &str = "resume";
    /// The state was killed outright (infeasible on hard constraints).
    pub const KILL: &str = "kill";
    /// Terminal: the path ran to normal completion.
    pub const EXIT: &str = "exit";
    /// Terminal: a confirmed fault (vulnerable path found).
    pub const FAULT: &str = "fault";
    /// Terminal: a fault the solver budget could not confirm a model
    /// for.
    pub const UNCONFIRMED: &str = "unconfirmed";
    /// Terminal: the run's resource budget tripped while this state was
    /// executing; exploration stopped here.
    pub const BUDGET_EXCEEDED: &str = "budget_exceeded";

    /// Every known op, in taxonomy order.
    pub const ALL: &[&str] = &[
        ROOT,
        FORK,
        SUSPEND_TAU,
        SUSPEND_PREDICATE,
        SUSPEND_BRANCH,
        RESUME,
        KILL,
        EXIT,
        FAULT,
        UNCONFIRMED,
        BUDGET_EXCEEDED,
    ];

    /// Whether `op` introduces a new state id (`root`/`fork`).
    pub fn introduces(op: &str) -> bool {
        op == ROOT || op == FORK
    }

    /// Whether `op` is part of the vocabulary.
    pub fn is_known(op: &str) -> bool {
        ALL.contains(&op)
    }
}

/// The cache-disposition and verdict vocabulary of
/// [`TraceEvent::Query`], kept in one place so the solver emitter, the
/// strict parser, and `statsym-inspect explain` cannot drift.
pub mod query_disposition {
    /// Trivially satisfiable: the constraint set was empty.
    pub const EMPTY: &str = "empty";
    /// Answered by the solver's private per-engine query cache.
    pub const PRIVATE: &str = "private";
    /// Answered by an unsat-cache *subset* hit (a cached unsat core is
    /// contained in this query).
    pub const UCACHE_SUB: &str = "ucache.sub";
    /// Answered by an unsat-cache *superset* hit (a cached sat model
    /// verified against this query).
    pub const UCACHE_SUP: &str = "ucache.sup";
    /// Answered by the cross-worker shared cache.
    pub const SHARED: &str = "shared";
    /// Solved by independence slicing into ≥ 2 components.
    pub const SLICED: &str = "sliced";
    /// Solved by a full constraint-graph search (every cache missed).
    pub const SEARCH: &str = "search";

    /// Every known disposition, cheapest first.
    pub const ALL: &[&str] = &[
        EMPTY, PRIVATE, UCACHE_SUB, UCACHE_SUP, SHARED, SLICED, SEARCH,
    ];

    /// Every known verdict.
    pub const VERDICTS: &[&str] = &["sat", "unsat", "unknown"];

    /// Whether `cache` is a known disposition.
    pub fn is_known(cache: &str) -> bool {
        ALL.contains(&cache)
    }

    /// Whether `verdict` is a known verdict.
    pub fn is_verdict(verdict: &str) -> bool {
        VERDICTS.contains(&verdict)
    }
}

/// A trace parsing failure: the offending line (1-based) and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// Appends `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes, and control characters. Shared by every canonical JSON
/// renderer in the workspace so escaping cannot drift.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::Int(i) => out.push_str(&i.to_string()),
        FieldValue::Uint(u) => out.push_str(&u.to_string()),
        FieldValue::Str(s) => push_json_str(out, s),
    }
}

impl TraceEvent {
    /// Renders the canonical single-line JSON form (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            TraceEvent::Meta { clock, version } => {
                s.push_str("{\"k\":\"meta\",\"clock\":");
                push_json_str(&mut s, clock);
                s.push_str(&format!(",\"version\":{version}}}"));
            }
            TraceEvent::SpanOpen {
                t,
                id,
                parent,
                name,
            } => {
                s.push_str(&format!(
                    "{{\"k\":\"span_open\",\"t\":{t},\"id\":{id},\"parent\":{parent},\"name\":"
                ));
                push_json_str(&mut s, name);
                s.push('}');
            }
            TraceEvent::SpanClose { t, id } => {
                s.push_str(&format!("{{\"k\":\"span_close\",\"t\":{t},\"id\":{id}}}"));
            }
            TraceEvent::Event { t, name, fields } => {
                s.push_str(&format!("{{\"k\":\"event\",\"t\":{t},\"name\":"));
                push_json_str(&mut s, name);
                s.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_json_str(&mut s, k);
                    s.push(':');
                    push_field_value(&mut s, v);
                }
                s.push_str("}}");
            }
            TraceEvent::Counter { name, value } => {
                s.push_str("{\"k\":\"counter\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"value\":{value}}}"));
            }
            TraceEvent::Gauge { name, value } => {
                s.push_str("{\"k\":\"gauge\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"value\":{value}}}"));
            }
            TraceEvent::Hist {
                name,
                count,
                sum,
                buckets,
            } => {
                s.push_str("{\"k\":\"hist\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"count\":{count},\"sum\":{sum},\"buckets\":["));
                for (i, (b, n)) in buckets.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("[{b},{n}]"));
                }
                s.push_str("]}");
            }
            TraceEvent::State {
                t,
                op,
                id,
                par,
                loc,
                hops,
                depth,
                steps,
                snodes,
                sus,
            } => {
                s.push_str(&format!("{{\"k\":\"state\",\"t\":{t},\"op\":"));
                push_json_str(&mut s, op);
                s.push_str(&format!(",\"id\":{id},\"par\":{par},\"loc\":"));
                push_json_str(&mut s, loc);
                s.push_str(&format!(
                    ",\"hops\":{hops},\"depth\":{depth},\"steps\":{steps},\
                     \"snodes\":{snodes},\"sus\":{sus}}}"
                ));
            }
            TraceEvent::Query {
                t,
                sid,
                loc,
                rank,
                site,
                verdict,
                cache,
                nodes,
                us,
            } => {
                s.push_str(&format!(
                    "{{\"k\":\"query\",\"t\":{t},\"sid\":{sid},\"loc\":"
                ));
                push_json_str(&mut s, loc);
                s.push_str(&format!(",\"rank\":{rank},\"site\":"));
                push_json_str(&mut s, site);
                s.push_str(",\"verdict\":");
                push_json_str(&mut s, verdict);
                s.push_str(",\"cache\":");
                push_json_str(&mut s, cache);
                s.push_str(&format!(",\"nodes\":{nodes},\"us\":{us}}}"));
            }
        }
        s
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] (with `line` set to 0; [`parse_trace`]
    /// fills in the real line number) on malformed JSON or an unknown
    /// `k` discriminator.
    pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
        let err = |reason: &str| ParseError {
            line: 0,
            reason: reason.to_string(),
        };
        let json = json::parse(line).map_err(|e| err(&e))?;
        let obj = json.as_object().ok_or_else(|| err("expected an object"))?;
        let get = |key: &str| -> Result<&json::Value, ParseError> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| err(&format!("missing key `{key}`")))
        };
        let get_u64 = |key: &str| -> Result<u64, ParseError> {
            get(key)?
                .as_u64()
                .ok_or_else(|| err(&format!("`{key}` must be a non-negative integer")))
        };
        let get_i64 = |key: &str| -> Result<i64, ParseError> {
            get(key)?
                .as_i64()
                .ok_or_else(|| err(&format!("`{key}` must be an integer")))
        };
        let get_str = |key: &str| -> Result<String, ParseError> {
            get(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| err(&format!("`{key}` must be a string")))
        };
        let kind = get_str("k")?;
        match kind.as_str() {
            "meta" => Ok(TraceEvent::Meta {
                clock: get_str("clock")?,
                version: get_u64("version")?,
            }),
            "span_open" => Ok(TraceEvent::SpanOpen {
                t: get_u64("t")?,
                id: get_u64("id")?,
                parent: get_u64("parent")?,
                name: get_str("name")?,
            }),
            "span_close" => Ok(TraceEvent::SpanClose {
                t: get_u64("t")?,
                id: get_u64("id")?,
            }),
            "event" => {
                let fields_val = get("fields")?;
                let fields_obj = fields_val
                    .as_object()
                    .ok_or_else(|| err("`fields` must be an object"))?;
                let mut fields = Vec::with_capacity(fields_obj.len());
                for (k, v) in fields_obj {
                    let fv = match v {
                        json::Value::Uint(u) => FieldValue::Uint(*u),
                        json::Value::Int(i) => FieldValue::Int(*i),
                        json::Value::Str(s) => FieldValue::Str(s.clone()),
                        _ => return Err(err("field values must be integers or strings")),
                    };
                    fields.push((k.clone(), fv));
                }
                Ok(TraceEvent::Event {
                    t: get_u64("t")?,
                    name: get_str("name")?,
                    fields,
                })
            }
            "counter" => Ok(TraceEvent::Counter {
                name: get_str("name")?,
                value: get_u64("value")?,
            }),
            "gauge" => Ok(TraceEvent::Gauge {
                name: get_str("name")?,
                value: get_i64("value")?,
            }),
            "hist" => {
                let arr = get("buckets")?
                    .as_array()
                    .ok_or_else(|| err("`buckets` must be an array"))?;
                let mut buckets = Vec::with_capacity(arr.len());
                for pair in arr {
                    let pair = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| err("each bucket must be a [bucket, count] pair"))?;
                    let b = pair[0]
                        .as_u64()
                        .and_then(|b| u32::try_from(b).ok())
                        .ok_or_else(|| err("bucket index must fit u32"))?;
                    let n = pair[1]
                        .as_u64()
                        .ok_or_else(|| err("bucket count must be u64"))?;
                    buckets.push((b, n));
                }
                Ok(TraceEvent::Hist {
                    name: get_str("name")?,
                    count: get_u64("count")?,
                    sum: get_u64("sum")?,
                    buckets,
                })
            }
            "state" => Ok(TraceEvent::State {
                t: get_u64("t")?,
                op: get_str("op")?,
                id: get_u64("id")?,
                par: get_u64("par")?,
                loc: get_str("loc")?,
                hops: get_u64("hops")?,
                depth: get_u64("depth")?,
                steps: get_u64("steps")?,
                snodes: get_u64("snodes")?,
                sus: get_u64("sus")?,
            }),
            "query" => Ok(TraceEvent::Query {
                t: get_u64("t")?,
                sid: get_u64("sid")?,
                loc: get_str("loc")?,
                rank: get_u64("rank")?,
                site: get_str("site")?,
                verdict: get_str("verdict")?,
                cache: get_str("cache")?,
                nodes: get_u64("nodes")?,
                us: get_u64("us")?,
            }),
            other => Err(err(&format!("unknown event kind `{other}`"))),
        }
    }
}

/// Parses a whole JSONL trace (empty lines are skipped).
///
/// # Errors
///
/// Returns the first [`ParseError`] with its 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match TraceEvent::parse_line(line) {
            Ok(ev) => out.push(ev),
            Err(mut e) => {
                e.line = i + 1;
                return Err(e);
            }
        }
    }
    Ok(out)
}

/// Parses a whole JSONL trace and validates span structure: every
/// `span_open` id must be fresh (no duplicates) and every `span_close`
/// must match an open, still-unclosed span. Spans left open at end of
/// trace are an error too (reported at their open line). State-lineage
/// events are validated as well: ops must be known, state ids must be
/// introduced (`root`/`fork`) before any later transition references
/// them, roots have parent 0, and forks name an already-introduced
/// parent — so every lineage event's `par` precedes it and the events
/// form a forest of per-run trees. Solver-query provenance events are
/// validated against the [`query_disposition`] vocabulary (known
/// verdict, known cache disposition, non-empty site). Use this for
/// untrusted input —
/// `statsym-inspect` runs it on every file — where a skewed span tree
/// would otherwise produce a silently wrong `TraceSummary`.
///
/// # Errors
///
/// Returns the first structural [`ParseError`] with its 1-based line
/// number.
pub fn parse_trace_strict(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    parse_strict_inner(text, false).map(|(events, _)| events)
}

/// [`parse_trace_strict`] for traces still being written (or cut short
/// by a crash): tolerates *exactly one* trailing partial line — dropped,
/// reported via the returned flag — and spans/states left open at end
/// of text. Interior corruption (a malformed line that is not the last,
/// duplicate ids, closes of never-opened spans, lineage orphans) is
/// still rejected.
///
/// # Errors
///
/// Returns the first interior structural [`ParseError`] with its
/// 1-based line number.
pub fn parse_trace_truncated(text: &str) -> Result<(Vec<TraceEvent>, bool), ParseError> {
    parse_strict_inner(text, true)
}

fn parse_strict_inner(
    text: &str,
    allow_truncated: bool,
) -> Result<(Vec<TraceEvent>, bool), ParseError> {
    let mut out = Vec::new();
    // span id -> (open line, still open?)
    let mut spans: std::collections::HashMap<u64, (usize, bool)> = std::collections::HashMap::new();
    // state id -> intro line (root/fork that created it)
    let mut states: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let fail = |line: usize, reason: String| Err(ParseError { line, reason });
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut truncated = false;
    for (pos, &(i, line)) in lines.iter().enumerate() {
        let lineno = i + 1;
        let ev = match TraceEvent::parse_line(line) {
            Ok(ev) => ev,
            Err(mut e) => {
                if allow_truncated && pos == lines.len() - 1 {
                    // A crash mid-write leaves at most one partial line,
                    // and only at the very end.
                    truncated = true;
                    break;
                }
                e.line = lineno;
                return Err(e);
            }
        };
        match &ev {
            TraceEvent::Meta { version, .. } if *version != crate::recorder::TRACE_VERSION => {
                return fail(
                    lineno,
                    format!(
                        "unsupported trace version {version} (this build supports {})",
                        crate::recorder::TRACE_VERSION
                    ),
                );
            }
            TraceEvent::Meta { .. } => {}
            TraceEvent::SpanOpen { id, .. } => {
                if *id == 0 {
                    return fail(lineno, "span_open with reserved id 0".to_string());
                }
                if let Some((first, _)) = spans.get(id) {
                    return fail(
                        lineno,
                        format!("duplicate span id {id} (first opened at line {first})"),
                    );
                }
                spans.insert(*id, (lineno, true));
            }
            TraceEvent::SpanClose { id, .. } => match spans.get_mut(id) {
                None => {
                    return fail(lineno, format!("span_close for never-opened span id {id}"));
                }
                Some((open_line, open)) => {
                    if !*open {
                        return fail(
                            lineno,
                            format!(
                                "span_close for already-closed span id {id} \
                                 (opened at line {open_line})"
                            ),
                        );
                    }
                    *open = false;
                }
            },
            TraceEvent::State { op, id, par, .. } => {
                if !lineage_op::is_known(op) {
                    return fail(lineno, format!("unknown lineage op `{op}`"));
                }
                if *id == 0 {
                    return fail(lineno, "state event with reserved id 0".to_string());
                }
                if lineage_op::introduces(op) {
                    if let Some(first) = states.get(id) {
                        return fail(
                            lineno,
                            format!("duplicate state id {id} (introduced at line {first})"),
                        );
                    }
                    if op == lineage_op::ROOT && *par != 0 {
                        return fail(
                            lineno,
                            format!("root state {id} must have parent 0, got {par}"),
                        );
                    }
                    if op == lineage_op::FORK && !states.contains_key(par) {
                        return fail(
                            lineno,
                            format!("fork state {id} references unintroduced parent {par}"),
                        );
                    }
                    states.insert(*id, lineno);
                } else if !states.contains_key(id) {
                    return fail(
                        lineno,
                        format!("lineage op `{op}` for unintroduced state id {id}"),
                    );
                }
            }
            TraceEvent::Query {
                site,
                verdict,
                cache,
                ..
            } => {
                if site.is_empty() {
                    return fail(lineno, "query event with empty site".to_string());
                }
                if !query_disposition::is_verdict(verdict) {
                    return fail(lineno, format!("unknown query verdict `{verdict}`"));
                }
                if !query_disposition::is_known(cache) {
                    return fail(lineno, format!("unknown query cache disposition `{cache}`"));
                }
            }
            _ => {}
        }
        out.push(ev);
    }
    if !allow_truncated {
        if let Some((&id, &(open_line, _))) = spans
            .iter()
            .filter(|(_, (_, open))| *open)
            .min_by_key(|(_, (line, _))| *line)
        {
            return fail(open_line, format!("span id {id} is never closed"));
        }
    }
    Ok((out, truncated))
}

/// Renders events back to canonical JSONL (one line each, trailing
/// newline after every line). `parse_trace` ∘ `render_trace` is the
/// identity on canonical traces, byte for byte.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut s = String::new();
    for ev in events {
        s.push_str(&ev.to_json_line());
        s.push('\n');
    }
    s
}

/// A minimal JSON reader: just enough to parse the canonical trace
/// format (objects, arrays, strings, integers) plus standard escapes
/// and whitespace tolerance. Floats are intentionally rejected — the
/// emitter never produces them, and they cannot round-trip bytewise.
pub(crate) mod json {
    /// A parsed JSON value (integer-only numbers).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Non-negative integer.
        Uint(u64),
        /// Negative integer.
        Int(i64),
        /// String.
        Str(String),
        /// Array.
        Array(Vec<Value>),
        /// Object with preserved key order.
        Object(Vec<(String, Value)>),
        /// `true`/`false`.
        Bool(bool),
        /// `null`.
        Null,
    }

    impl Value {
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Uint(v) => Some(*v),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Uint(v) => i64::try_from(*v).ok(),
                Value::Int(v) => Some(*v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(v) => Some(v),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            Some(b)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.bump() == Some(b) {
                Ok(())
            } else {
                Err(format!(
                    "expected `{}` at byte {}",
                    b as char,
                    self.pos.saturating_sub(1)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.keyword("true", Value::Bool(true)),
                Some(b'f') => self.keyword("false", Value::Bool(false)),
                Some(b'n') => self.keyword("null", Value::Null),
                Some(b'-') | Some(b'0'..=b'9') => self.number(),
                other => Err(format!("unexpected byte {other:?} at {}", self.pos)),
            }
        }

        fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                Ok(v)
            } else {
                Err(format!("invalid keyword at byte {}", self.pos))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                entries.push((key, val));
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b'}') => return Ok(Value::Object(entries)),
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b']') => return Ok(Value::Array(items)),
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                match self.bump() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => return Ok(s),
                    Some(b'\\') => match self.bump() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let mut code: u32 = 0;
                            for _ in 0..4 {
                                let d = self
                                    .bump()
                                    .and_then(|b| (b as char).to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                            }
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        _ => return Err("bad escape".to_string()),
                    },
                    Some(b) if b < 0x80 => s.push(b as char),
                    Some(b) => {
                        // Re-decode the UTF-8 sequence starting at b.
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err("invalid UTF-8".to_string()),
                        };
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or("truncated UTF-8 sequence")?;
                        let text = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?;
                        s.push_str(text);
                        self.pos = end;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                return Err("floats are not part of the trace format".to_string());
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            if let Some(stripped) = text.strip_prefix('-') {
                let _ = stripped;
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| "integer out of range".to_string())
            } else {
                text.parse::<u64>()
                    .map(Value::Uint)
                    .map_err(|_| "integer out of range".to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: TraceEvent) {
        let line = ev.to_json_line();
        let back = TraceEvent::parse_line(&line).expect(&line);
        assert_eq!(back, ev, "{line}");
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn all_event_kinds_roundtrip() {
        roundtrip(TraceEvent::Meta {
            clock: "steps".into(),
            version: 1,
        });
        roundtrip(TraceEvent::SpanOpen {
            t: 0,
            id: 1,
            parent: 0,
            name: "pipeline.analyze".into(),
        });
        roundtrip(TraceEvent::SpanClose { t: 42, id: 1 });
        roundtrip(TraceEvent::Event {
            t: 7,
            name: "candidate.result".into(),
            fields: vec![
                ("index".into(), FieldValue::Uint(0)),
                ("delta".into(), FieldValue::Int(-5)),
                ("found".into(), FieldValue::Str("true".into())),
            ],
        });
        roundtrip(TraceEvent::Counter {
            name: "solver.queries".into(),
            value: u64::MAX,
        });
        roundtrip(TraceEvent::Gauge {
            name: "symex.peak_memory_bytes".into(),
            value: -1,
        });
        roundtrip(TraceEvent::Hist {
            name: "solver.query_us".into(),
            count: 3,
            sum: 10,
            buckets: vec![(0, 1), (2, 2)],
        });
        roundtrip(TraceEvent::State {
            t: 12,
            op: lineage_op::FORK.into(),
            id: 5,
            par: 2,
            loc: "main:b3".into(),
            hops: 1,
            depth: 4,
            steps: 37,
            snodes: 12,
            sus: 0,
        });
        roundtrip(TraceEvent::Query {
            t: 19,
            sid: 3,
            loc: "main:12".into(),
            rank: 2,
            site: "feasibility".into(),
            verdict: "unsat".into(),
            cache: query_disposition::UCACHE_SUB.into(),
            nodes: 44,
            us: 0,
        });
    }

    fn state_line(op: &str, id: u64, par: u64) -> String {
        TraceEvent::State {
            t: 0,
            op: op.into(),
            id,
            par,
            loc: "f:b0".into(),
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            sus: 0,
        }
        .to_json_line()
            + "\n"
    }

    #[test]
    fn strict_parse_accepts_lineage_tree() {
        let text = state_line(lineage_op::ROOT, 1, 0)
            + &state_line(lineage_op::FORK, 2, 1)
            + &state_line(lineage_op::SUSPEND_TAU, 2, 1)
            + &state_line(lineage_op::RESUME, 2, 1)
            + &state_line(lineage_op::EXIT, 1, 0)
            + &state_line(lineage_op::ROOT, 3, 0); // second run's root
        assert_eq!(parse_trace_strict(&text).unwrap().len(), 6);
    }

    #[test]
    fn strict_parse_rejects_lineage_orphans_and_bad_ops() {
        // Fork before its parent is introduced.
        let err = parse_trace_strict(&state_line(lineage_op::FORK, 2, 1)).unwrap_err();
        assert!(err.reason.contains("unintroduced parent 1"), "{err}");
        // Transition on a never-introduced state.
        let err = parse_trace_strict(&state_line(lineage_op::KILL, 9, 0)).unwrap_err();
        assert!(err.reason.contains("unintroduced state id 9"), "{err}");
        // Duplicate introduction.
        let text = state_line(lineage_op::ROOT, 1, 0) + &state_line(lineage_op::ROOT, 1, 0);
        let err = parse_trace_strict(&text).unwrap_err();
        assert!(err.reason.contains("duplicate state id 1"), "{err}");
        // Root with a parent.
        let err = parse_trace_strict(&state_line(lineage_op::ROOT, 1, 7)).unwrap_err();
        assert!(err.reason.contains("must have parent 0"), "{err}");
        // Unknown op.
        let err = parse_trace_strict(&state_line("teleport", 1, 0)).unwrap_err();
        assert!(err.reason.contains("unknown lineage op"), "{err}");
        // Reserved id 0.
        let err = parse_trace_strict(&state_line(lineage_op::ROOT, 0, 0)).unwrap_err();
        assert!(err.reason.contains("reserved id 0"), "{err}");
    }

    fn query_line(site: &str, verdict: &str, cache: &str) -> String {
        TraceEvent::Query {
            t: 0,
            sid: 1,
            loc: "f:3".into(),
            rank: 0,
            site: site.into(),
            verdict: verdict.into(),
            cache: cache.into(),
            nodes: 2,
            us: 0,
        }
        .to_json_line()
            + "\n"
    }

    #[test]
    fn strict_parse_accepts_well_formed_queries() {
        let mut text = String::new();
        for cache in query_disposition::ALL {
            for verdict in query_disposition::VERDICTS {
                text.push_str(&query_line("feasibility", verdict, cache));
            }
        }
        let n = query_disposition::ALL.len() * query_disposition::VERDICTS.len();
        assert_eq!(parse_trace_strict(&text).unwrap().len(), n);
    }

    #[test]
    fn strict_parse_rejects_malformed_provenance() {
        // Unknown verdict.
        let err = parse_trace_strict(&query_line("feasibility", "maybe", "search")).unwrap_err();
        assert!(err.reason.contains("unknown query verdict"), "{err}");
        // Unknown cache disposition.
        let err = parse_trace_strict(&query_line("feasibility", "sat", "psychic")).unwrap_err();
        assert!(err.reason.contains("cache disposition"), "{err}");
        // Empty callsite.
        let err = parse_trace_strict(&query_line("", "sat", "search")).unwrap_err();
        assert!(err.reason.contains("empty site"), "{err}");
        // Missing key entirely.
        assert!(TraceEvent::parse_line(
            "{\"k\":\"query\",\"t\":0,\"sid\":1,\"loc\":\"f:3\",\"rank\":0,\"site\":\"s\",\
             \"verdict\":\"sat\",\"cache\":\"search\",\"nodes\":2}"
        )
        .is_err());
    }

    #[test]
    fn truncated_parse_tolerates_one_trailing_partial_line() {
        let good = state_line(lineage_op::ROOT, 1, 0);
        let text = format!("{good}{{\"k\":\"sta"); // cut mid-write
        let (events, truncated) = parse_trace_truncated(&text).unwrap();
        assert_eq!(events.len(), 1);
        assert!(truncated);
        // A complete trace parses un-truncated.
        let (events, truncated) = parse_trace_truncated(&good).unwrap();
        assert_eq!(events.len(), 1);
        assert!(!truncated);
        // Strict mode still rejects the partial line.
        assert!(parse_trace_strict(&text).is_err());
    }

    #[test]
    fn truncated_parse_still_rejects_interior_corruption() {
        let text = format!(
            "{}not json\n{}",
            state_line(lineage_op::ROOT, 1, 0),
            state_line(lineage_op::EXIT, 1, 0)
        );
        let err = parse_trace_truncated(&text).unwrap_err();
        assert_eq!(err.line, 2);
        // Structural violations are interior corruption even on the
        // last line: the line itself parses, so no tolerance applies.
        let bad = state_line(lineage_op::ROOT, 1, 0) + &state_line(lineage_op::KILL, 5, 0);
        assert!(parse_trace_truncated(&bad).is_err());
    }

    #[test]
    fn truncated_parse_tolerates_open_spans_at_eof() {
        let text = "{\"k\":\"span_open\",\"t\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n";
        assert!(parse_trace_strict(text).is_err());
        let (events, truncated) = parse_trace_truncated(text).unwrap();
        assert_eq!(events.len(), 1);
        assert!(!truncated);
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        roundtrip(TraceEvent::Event {
            t: 0,
            name: "weird \"name\"\twith\nescapes \\ λ".into(),
            fields: vec![("k\u{1}".into(), FieldValue::Str("v\u{7f}λ中".into()))],
        });
    }

    #[test]
    fn parse_trace_reports_line_numbers() {
        let text = "{\"k\":\"span_close\",\"t\":1,\"id\":1}\n\nnot json\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn strict_parse_accepts_balanced_spans() {
        let text = "{\"k\":\"span_open\",\"t\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n\
                    {\"k\":\"span_open\",\"t\":1,\"id\":2,\"parent\":1,\"name\":\"b\"}\n\
                    {\"k\":\"span_close\",\"t\":2,\"id\":2}\n\
                    {\"k\":\"span_close\",\"t\":3,\"id\":1}\n";
        assert_eq!(parse_trace_strict(text).unwrap().len(), 4);
    }

    #[test]
    fn strict_parse_rejects_duplicate_span_id() {
        let text = "{\"k\":\"span_open\",\"t\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n\
                    {\"k\":\"span_close\",\"t\":1,\"id\":1}\n\
                    {\"k\":\"span_open\",\"t\":2,\"id\":1,\"parent\":0,\"name\":\"b\"}\n";
        let err = parse_trace_strict(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("duplicate span id 1"));
        assert!(err.reason.contains("line 1"));
    }

    #[test]
    fn strict_parse_rejects_unmatched_close() {
        let err = parse_trace_strict("{\"k\":\"span_close\",\"t\":1,\"id\":7}\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("never-opened"));

        let text = "{\"k\":\"span_open\",\"t\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n\
                    {\"k\":\"span_close\",\"t\":1,\"id\":1}\n\
                    {\"k\":\"span_close\",\"t\":2,\"id\":1}\n";
        let err = parse_trace_strict(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("already-closed"));
    }

    #[test]
    fn strict_parse_rejects_unclosed_span_at_eof() {
        let text = "{\"k\":\"span_open\",\"t\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n\
                    {\"k\":\"span_open\",\"t\":1,\"id\":2,\"parent\":1,\"name\":\"b\"}\n\
                    {\"k\":\"span_close\",\"t\":2,\"id\":2}\n";
        let err = parse_trace_strict(text).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("never closed"));
    }

    #[test]
    fn strict_parse_rejects_unknown_trace_version_with_line_number() {
        // A future-major trace must be refused up front, not
        // half-interpreted: the meta line is line 1 by construction, but
        // the parser reports wherever it actually sits.
        let text = "{\"k\":\"span_open\",\"t\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n\
                    {\"k\":\"span_close\",\"t\":1,\"id\":1}\n\
                    {\"k\":\"meta\",\"clock\":\"steps\",\"version\":99}\n";
        for parse in [
            parse_trace_strict(text).map(|_| ()),
            parse_trace_truncated(text).map(|_| ()),
        ] {
            let err = parse.unwrap_err();
            assert_eq!(err.line, 3);
            assert!(
                err.reason.contains("unsupported trace version 99"),
                "{}",
                err.reason
            );
            assert!(err.reason.contains("supports 1"), "{}", err.reason);
        }
        // The current version stays accepted.
        let ok = "{\"k\":\"meta\",\"clock\":\"steps\",\"version\":1}\n";
        assert_eq!(parse_trace_strict(ok).unwrap().len(), 1);
    }

    #[test]
    fn strict_parse_rejects_reserved_id_zero() {
        let err = parse_trace_strict(
            "{\"k\":\"span_open\",\"t\":0,\"id\":0,\"parent\":0,\"name\":\"a\"}\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("reserved id 0"));
    }

    #[test]
    fn floats_are_rejected() {
        assert!(
            TraceEvent::parse_line("{\"k\":\"counter\",\"name\":\"x\",\"value\":1.5}").is_err()
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(TraceEvent::parse_line("{\"k\":\"bogus\"}").is_err());
    }

    #[test]
    fn render_trace_is_parse_inverse() {
        let evs = vec![
            TraceEvent::Meta {
                clock: "steps".into(),
                version: 1,
            },
            TraceEvent::Counter {
                name: "a".into(),
                value: 1,
            },
        ];
        let text = render_trace(&evs);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, evs);
        assert_eq!(render_trace(&back), text);
    }
}
