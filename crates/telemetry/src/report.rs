//! Run-report renderer: turns a parsed trace into the per-phase
//! breakdown the paper prints in Tables II/III.
//!
//! The summary aggregates spans by name (count, total ticks, nesting
//! depth from the parent chain) and appends final metric values. The
//! rendering is fully deterministic: span rows appear in first-open
//! order, metrics in the sorted order the registry dumped them in, and
//! all numbers are integers.

use std::collections::{BTreeMap, HashMap};

use crate::event::{push_json_str, TraceEvent};
use crate::names;

/// Schema version stamped into [`TraceSummary::render_json`] output.
/// Strict consumers reject majors they don't understand.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Stable top-level `kind` discriminator of the JSON report, so a
/// machine consumer can tell a report apart from a manifest or any
/// other single-line JSON artifact before reading further.
pub const REPORT_KIND: &str = "statsym.report";

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Nesting depth of the first occurrence (0 = root).
    pub depth: usize,
    /// Number of times a span with this name was opened.
    pub count: u64,
    /// Total ticks spent inside (sum of close − open over closed
    /// spans; unclosed spans contribute nothing).
    pub total_ticks: u64,
}

/// Final state of one log₂ histogram, buckets included, with
/// bucket-resolution percentile estimates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistStat {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Sparse `(bucket, count)` pairs as recorded in the trace; bucket
    /// `b > 0` covers `[2^(b-1), 2^b - 1]`, bucket 0 holds zeros.
    pub buckets: Vec<(u32, u64)>,
}

impl HistStat {
    /// The value at quantile `num/den`, estimated as the *upper bound*
    /// of the log₂ bucket holding that rank (so the true value is ≤ the
    /// estimate, within one power of two). Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 || den == 0 {
            return 0;
        }
        // 1-based rank of the requested quantile, rounded up.
        let rank = ((self.count as u128 * num as u128).div_ceil(den as u128)).max(1);
        let mut seen: u128 = 0;
        for &(b, n) in &self.buckets {
            seen += n as u128;
            if seen >= rank {
                return if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
            }
        }
        // Sparse buckets should sum to `count`; fall back to the top.
        self.buckets.last().map_or(
            0,
            |&(b, _)| if b >= 64 { u64::MAX } else { (1u64 << b) - 1 },
        )
    }

    /// Median estimate (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(1, 2)
    }

    /// 90th-percentile estimate (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.percentile(9, 10)
    }

    /// 99th-percentile estimate (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(99, 100)
    }
}

/// One `calib.candidate` record: the ranking's prediction for a
/// candidate next to what the attempt actually cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalibCandidate {
    /// Candidate rank (0 = ranked first).
    pub rank: u64,
    /// Statistical score in milli-units (`score * 1000`, truncated).
    pub score_milli: i64,
    /// Candidate path length in branches.
    pub path_len: u64,
    /// Executor steps the attempt spent.
    pub steps: u64,
    /// Forks the attempt spent.
    pub forks: u64,
    /// Solver search-tree nodes the attempt spent.
    pub snodes: u64,
    /// Solver wall-µs the attempt spent (0 under the step clock).
    pub solver_us: u64,
    /// Whether the attempt reached the vulnerability.
    pub found: bool,
}

impl CalibCandidate {
    /// Parses a [`TraceEvent::Event`] field list into a record. Missing
    /// or non-numeric fields default to zero, so partial records from
    /// older traces still summarize.
    pub fn from_fields(fields: &[(String, crate::event::FieldValue)]) -> CalibCandidate {
        let mut c = CalibCandidate::default();
        for (k, v) in fields {
            match k.as_str() {
                "rank" => c.rank = v.as_u64().unwrap_or(0),
                "score_milli" => c.score_milli = v.as_i64().unwrap_or(0),
                "path_len" => c.path_len = v.as_u64().unwrap_or(0),
                "steps" => c.steps = v.as_u64().unwrap_or(0),
                "forks" => c.forks = v.as_u64().unwrap_or(0),
                "snodes" => c.snodes = v.as_u64().unwrap_or(0),
                "solver_us" => c.solver_us = v.as_u64().unwrap_or(0),
                "found" => c.found = v.as_u64().unwrap_or(0) != 0,
                _ => {}
            }
        }
        c
    }
}

/// `(site, verdict, cache)` key of one query-provenance rollup row.
pub type QueryKey = (String, String, String);
/// `(count, nodes, us)` totals of one query-provenance rollup row.
pub type QueryTotals = (u64, u64, u64);

/// A digest of one trace, ready to render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Clock label from the meta event (`wall_us` / `steps`).
    pub clock: String,
    /// Span aggregates in first-open order.
    pub spans: Vec<SpanStat>,
    /// Final counter values in dump order.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values in dump order.
    pub gauges: Vec<(String, i64)>,
    /// Histograms in dump order, buckets preserved for percentile
    /// summaries.
    pub hists: Vec<HistStat>,
    /// Point events grouped by name, in first-seen order.
    pub event_counts: Vec<(String, u64)>,
    /// Solver-query provenance rollup: `(site, verdict, cache)` ->
    /// `(count, nodes, us)`, in first-seen order.
    pub query_stats: Vec<(QueryKey, QueryTotals)>,
    /// Per-candidate calibration records in trace order.
    pub calib: Vec<CalibCandidate>,
}

/// Incremental [`TraceSummary`] construction: feed events one at a time
/// as they arrive (a tailed file, a live stream) and read the digest at
/// any cut point. `SummaryBuilder` over a full event list is exactly
/// [`TraceSummary::from_events`] — the batch entry point delegates here.
#[derive(Debug, Default)]
pub struct SummaryBuilder {
    summary: TraceSummary,
    /// Per-open-span bookkeeping: id -> (name index, open tick, depth).
    open: HashMap<u64, (usize, u64, usize)>,
    depth_of: HashMap<u64, usize>,
    name_index: HashMap<String, usize>,
    event_index: HashMap<String, usize>,
    query_index: HashMap<QueryKey, usize>,
}

impl SummaryBuilder {
    /// An empty builder.
    pub fn new() -> SummaryBuilder {
        SummaryBuilder::default()
    }

    /// Folds one event into the summary.
    pub fn push(&mut self, ev: &TraceEvent) {
        let summary = &mut self.summary;
        match ev {
            TraceEvent::Meta { clock, .. } => summary.clock = clock.clone(),
            TraceEvent::SpanOpen {
                t,
                id,
                parent,
                name,
            } => {
                let depth = if *parent == 0 {
                    0
                } else {
                    self.depth_of.get(parent).map_or(0, |d| d + 1)
                };
                self.depth_of.insert(*id, depth);
                let idx = *self.name_index.entry(name.clone()).or_insert_with(|| {
                    summary.spans.push(SpanStat {
                        name: name.clone(),
                        depth,
                        count: 0,
                        total_ticks: 0,
                    });
                    summary.spans.len() - 1
                });
                summary.spans[idx].count += 1;
                self.open.insert(*id, (idx, *t, depth));
            }
            TraceEvent::SpanClose { t, id } => {
                if let Some((idx, opened, _)) = self.open.remove(id) {
                    summary.spans[idx].total_ticks += t.saturating_sub(opened);
                }
            }
            TraceEvent::Event { name, fields, .. } => {
                let idx = *self.event_index.entry(name.clone()).or_insert_with(|| {
                    summary.event_counts.push((name.clone(), 0));
                    summary.event_counts.len() - 1
                });
                summary.event_counts[idx].1 += 1;
                if name == names::CALIB_CANDIDATE {
                    summary.calib.push(CalibCandidate::from_fields(fields));
                }
            }
            TraceEvent::Counter { name, value } => {
                summary.counters.push((name.clone(), *value));
            }
            TraceEvent::Gauge { name, value } => {
                summary.gauges.push((name.clone(), *value));
            }
            TraceEvent::Hist {
                name,
                count,
                sum,
                buckets,
            } => {
                summary.hists.push(HistStat {
                    name: name.clone(),
                    count: *count,
                    sum: *sum,
                    buckets: buckets.clone(),
                });
            }
            TraceEvent::State { .. } => {}
            TraceEvent::Query {
                site,
                verdict,
                cache,
                nodes,
                us,
                ..
            } => {
                let key = (site.clone(), verdict.clone(), cache.clone());
                let idx = *self.query_index.entry(key.clone()).or_insert_with(|| {
                    summary.query_stats.push((key, (0, 0, 0)));
                    summary.query_stats.len() - 1
                });
                let (count, total_nodes, total_us) = &mut summary.query_stats[idx].1;
                *count += 1;
                *total_nodes += nodes;
                *total_us += us;
            }
        }
    }

    /// The digest of everything pushed so far.
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    /// Consumes the builder into the final digest.
    pub fn finish(self) -> TraceSummary {
        self.summary
    }
}

impl TraceSummary {
    /// Builds a summary from a parsed event stream.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        let mut b = SummaryBuilder::new();
        for ev in events {
            b.push(ev);
        }
        b.finish()
    }

    /// Total ticks of the named span (0 if absent).
    pub fn span_ticks(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.total_ticks)
    }

    /// Final value of the named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_opt(name).unwrap_or(0)
    }

    /// Final value of the named counter, or `None` if the trace never
    /// recorded it — distinct from an observed zero, which matters to
    /// `statsym-inspect diff` (a vanished counter is a schema change,
    /// not a regression to 0).
    pub fn counter_opt(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Final value of the named gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Per-source-line attribution totals derived from the `attr.*`
    /// counter family: `loc -> [steps, forks, suspends, queries, nodes,
    /// us]` (the [`names::ATTR_DIMS`] order), sorted by location.
    /// Counters under a merge rename prefix (overshoot workers) do not
    /// start with `attr.` and are excluded, so the map reflects the
    /// canonical winner-ordered totals.
    pub fn attr_locs(&self) -> BTreeMap<String, [u64; 6]> {
        let mut locs: BTreeMap<String, [u64; 6]> = BTreeMap::new();
        for (name, v) in &self.counters {
            let Some(rest) = name.strip_prefix(names::ATTR_PREFIX) else {
                continue;
            };
            let Some((loc, dim)) = rest.rsplit_once('.') else {
                continue;
            };
            let Some(idx) = names::ATTR_DIMS.iter().position(|d| *d == dim) else {
                continue;
            };
            locs.entry(loc.to_string()).or_default()[idx] += *v;
        }
        locs
    }

    /// Renders the Table II/III-style run report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let unit = if self.clock.is_empty() {
            "ticks".to_string()
        } else {
            self.clock.clone()
        };
        out.push_str(&format!("run report (clock: {unit})\n"));

        if !self.spans.is_empty() {
            out.push_str("\nphases:\n");
            let name_w = self
                .spans
                .iter()
                .map(|s| s.name.len() + 2 * s.depth)
                .max()
                .unwrap_or(0)
                .max(5);
            out.push_str(&format!(
                "  {:<name_w$}  {:>8}  {:>12}\n",
                "phase", "count", unit
            ));
            for s in &self.spans {
                let label = format!("{}{}", "  ".repeat(s.depth), s.name);
                out.push_str(&format!(
                    "  {label:<name_w$}  {:>8}  {:>12}\n",
                    s.count, s.total_ticks
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<32}  {v:>12}\n"));
            }
        }

        if !self.gauges.is_empty() {
            out.push_str("\ngauges (peaks):\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<32}  {v:>12}\n"));
            }
        }

        if !self.hists.is_empty() {
            out.push_str("\nhistograms:\n");
            for h in &self.hists {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                out.push_str(&format!(
                    "  {:<32}  count {:>8}  sum {:>12}  mean {mean:>8}  \
                     p50 {:>8}  p90 {:>8}  p99 {:>8}\n",
                    h.name,
                    h.count,
                    h.sum,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                ));
            }
        }

        if !self.event_counts.is_empty() {
            out.push_str("\nevents:\n");
            for (name, n) in &self.event_counts {
                out.push_str(&format!("  {name:<32}  {n:>12}\n"));
            }
        }

        if !self.query_stats.is_empty() {
            out.push_str("\nsolver queries (site / verdict / cache):\n");
            let mut rows: Vec<_> = self.query_stats.iter().collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for ((site, verdict, cache), (count, nodes, us)) in rows {
                let key = format!("{site} / {verdict} / {cache}");
                out.push_str(&format!(
                    "  {key:<36}  n {count:>8}  nodes {nodes:>10}  us {us:>10}\n"
                ));
            }
        }

        if !self.calib.is_empty() {
            out.push_str("\ncalibration (predicted vs actual):\n");
            out.push_str(&format!(
                "  {:>4}  {:>11}  {:>8}  {:>10}  {:>8}  {:>10}  {:>10}  {:>5}\n",
                "rank", "score_milli", "path_len", "steps", "forks", "snodes", "solver_us", "found"
            ));
            for c in &self.calib {
                out.push_str(&format!(
                    "  {:>4}  {:>11}  {:>8}  {:>10}  {:>8}  {:>10}  {:>10}  {:>5}\n",
                    c.rank,
                    c.score_milli,
                    c.path_len,
                    c.steps,
                    c.forks,
                    c.snodes,
                    c.solver_us,
                    if c.found { "yes" } else { "no" }
                ));
            }
        }
        out
    }

    /// Renders the summary as a single-line JSON object with a stable
    /// key order, for machine consumers (`statsym-inspect report
    /// --format json`, CI assertions). All numbers are integers; span
    /// and histogram rows keep their deterministic trace order, and
    /// counter/gauge/event maps keep the sorted dump order they arrived
    /// in.
    pub fn render_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"kind\":");
        push_json_str(&mut s, REPORT_KIND);
        s.push_str(&format!(",\"schema_version\":{REPORT_SCHEMA_VERSION}"));
        s.push_str(",\"clock\":");
        push_json_str(&mut s, &self.clock);
        s.push_str(",\"spans\":[");
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            push_json_str(&mut s, &sp.name);
            s.push_str(&format!(
                ",\"depth\":{},\"count\":{},\"ticks\":{}}}",
                sp.depth, sp.count, sp.total_ticks
            ));
        }
        s.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, name);
            s.push_str(&format!(":{v}"));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, name);
            s.push_str(&format!(":{v}"));
        }
        s.push_str("},\"hists\":[");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            push_json_str(&mut s, &h.name);
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            s.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"mean\":{mean},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.p50(),
                h.p90(),
                h.p99()
            ));
        }
        s.push_str("],\"events\":{");
        for (i, (name, n)) in self.event_counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, name);
            s.push_str(&format!(":{n}"));
        }
        s.push_str("},\"attribution\":{");
        for (i, (loc, d)) in self.attr_locs().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, loc);
            s.push(':');
            s.push('{');
            for (j, dim) in names::ATTR_DIMS.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{dim}\":{}", d[j]));
            }
            s.push('}');
        }
        s.push_str("},\"queries\":[");
        let mut rows: Vec<_> = self.query_stats.iter().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, ((site, verdict, cache), (count, nodes, us))) in rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"site\":");
            push_json_str(&mut s, site);
            s.push_str(",\"verdict\":");
            push_json_str(&mut s, verdict);
            s.push_str(",\"cache\":");
            push_json_str(&mut s, cache);
            s.push_str(&format!(
                ",\"count\":{count},\"nodes\":{nodes},\"us\":{us}}}"
            ));
        }
        s.push_str("],\"calibration\":{\"candidates\":[");
        for (i, c) in self.calib.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rank\":{},\"score_milli\":{},\"path_len\":{},\"steps\":{},\
                 \"forks\":{},\"snodes\":{},\"solver_us\":{},\"found\":{}}}",
                c.rank,
                c.score_milli,
                c.path_len,
                c.steps,
                c.forks,
                c.snodes,
                c.solver_us,
                u64::from(c.found)
            ));
        }
        s.push(']');
        if let Some(w) = self.gauge(names::CALIB_WINNER_RANK) {
            s.push_str(&format!(",\"winner_rank\":{w}"));
        }
        if let Some(corr) = self.gauge(names::CALIB_RANK_COST_CORR) {
            s.push_str(&format!(",\"corr_milli\":{corr}"));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Meta {
                clock: "steps".into(),
                version: 1,
            },
            TraceEvent::SpanOpen {
                t: 0,
                id: 1,
                parent: 0,
                name: "pipeline.analyze".into(),
            },
            TraceEvent::SpanOpen {
                t: 1,
                id: 2,
                parent: 1,
                name: "phase.skeleton".into(),
            },
            TraceEvent::SpanClose { t: 4, id: 2 },
            TraceEvent::SpanClose { t: 6, id: 1 },
            TraceEvent::SpanOpen {
                t: 6,
                id: 3,
                parent: 0,
                name: "pipeline.analyze".into(),
            },
            TraceEvent::SpanClose { t: 8, id: 3 },
            TraceEvent::Event {
                t: 8,
                name: "candidate.result".into(),
                fields: vec![("found".into(), FieldValue::Str("true".into()))],
            },
            TraceEvent::Counter {
                name: "solver.queries".into(),
                value: 12,
            },
            TraceEvent::Gauge {
                name: "symex.peak_live_states".into(),
                value: 4,
            },
            TraceEvent::Hist {
                name: "solver.query_us".into(),
                count: 2,
                sum: 9,
                buckets: vec![(2, 1), (3, 1)],
            },
        ]
    }

    #[test]
    fn summary_aggregates_spans_by_name() {
        let s = TraceSummary::from_events(&sample_events());
        assert_eq!(s.clock, "steps");
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].name, "pipeline.analyze");
        assert_eq!(s.spans[0].count, 2);
        assert_eq!(s.spans[0].total_ticks, 8);
        assert_eq!(s.spans[0].depth, 0);
        assert_eq!(s.spans[1].name, "phase.skeleton");
        assert_eq!(s.spans[1].depth, 1);
        assert_eq!(s.span_ticks("phase.skeleton"), 3);
        assert_eq!(s.counter("solver.queries"), 12);
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.counter_opt("solver.queries"), Some(12));
        assert_eq!(s.counter_opt("nope"), None);
        assert_eq!(s.gauge("symex.peak_live_states"), Some(4));
        assert_eq!(s.event_counts, vec![("candidate.result".to_string(), 1)]);
    }

    #[test]
    fn render_is_deterministic_and_indented() {
        let s = TraceSummary::from_events(&sample_events());
        let a = s.render();
        let b = s.render();
        assert_eq!(a, b);
        assert!(a.contains("run report (clock: steps)"));
        assert!(a.contains("  phase.skeleton") || a.contains("    phase.skeleton"));
        assert!(a.contains("solver.queries"));
        assert!(a.contains("mean"));
        assert!(a.contains("p50"));
        assert!(a.contains("p99"));
    }

    #[test]
    fn incremental_builder_matches_batch_summary() {
        let events = sample_events();
        let mut b = SummaryBuilder::new();
        for ev in &events {
            b.push(ev);
        }
        assert_eq!(b.summary(), &TraceSummary::from_events(&events));
        // A prefix digest is readable at any cut point.
        let mut partial = SummaryBuilder::new();
        for ev in &events[..3] {
            partial.push(ev);
        }
        assert_eq!(partial.summary(), &TraceSummary::from_events(&events[..3]));
        assert_eq!(b.finish(), TraceSummary::from_events(&events));
    }

    #[test]
    fn render_json_is_stable_and_parseable() {
        let s = TraceSummary::from_events(&sample_events());
        let a = s.render_json();
        assert_eq!(a, s.render_json());
        // Key order is fixed by construction, and the kind + schema
        // version lead so consumers can dispatch before parsing fully.
        assert!(a.starts_with(
            "{\"kind\":\"statsym.report\",\"schema_version\":1,\"clock\":\"steps\",\"spans\":["
        ));
        assert!(a.contains("\"counters\":{\"solver.queries\":12}"));
        assert!(a.contains("\"gauges\":{\"symex.peak_live_states\":4}"));
        assert!(a.contains("\"events\":{\"candidate.result\":1}"));
        assert!(a.contains(
            "{\"name\":\"solver.query_us\",\"count\":2,\"sum\":9,\"mean\":4,\
             \"p50\":3,\"p90\":7,\"p99\":7}"
        ));
        // New sections are always present, empty when the trace carries
        // no attribution/provenance/calibration data.
        assert!(
            a.ends_with("\"attribution\":{},\"queries\":[],\"calibration\":{\"candidates\":[]}}")
        );
        // It is valid JSON by our own strict reader.
        crate::event::json::parse(&a).unwrap();
    }

    #[test]
    fn summary_folds_attribution_queries_and_calibration() {
        let mut events = sample_events();
        events.push(TraceEvent::Counter {
            name: "attr.convert:7.steps".into(),
            value: 40,
        });
        events.push(TraceEvent::Counter {
            name: "attr.convert:7.nodes".into(),
            value: 9,
        });
        events.push(TraceEvent::Counter {
            name: "attr.main:2.steps".into(),
            value: 3,
        });
        // A renamed (overshoot) counter must not pollute the canonical map.
        events.push(TraceEvent::Counter {
            name: "o1.attr.main:2.steps".into(),
            value: 99,
        });
        events.push(TraceEvent::Query {
            t: 5,
            sid: 1,
            loc: "convert:7".into(),
            rank: 0,
            site: "feasibility".into(),
            verdict: "sat".into(),
            cache: "search".into(),
            nodes: 6,
            us: 0,
        });
        events.push(TraceEvent::Query {
            t: 6,
            sid: 1,
            loc: "convert:7".into(),
            rank: 0,
            site: "feasibility".into(),
            verdict: "sat".into(),
            cache: "search".into(),
            nodes: 3,
            us: 0,
        });
        events.push(TraceEvent::Event {
            t: 7,
            name: "calib.candidate".into(),
            fields: vec![
                ("rank".into(), FieldValue::Uint(1)),
                ("score_milli".into(), FieldValue::Uint(4250)),
                ("path_len".into(), FieldValue::Uint(3)),
                ("steps".into(), FieldValue::Uint(120)),
                ("forks".into(), FieldValue::Uint(2)),
                ("snodes".into(), FieldValue::Uint(9)),
                ("found".into(), FieldValue::Uint(1)),
            ],
        });
        events.push(TraceEvent::Gauge {
            name: "calib.winner_rank".into(),
            value: 1,
        });
        events.push(TraceEvent::Gauge {
            name: "calib.rank_cost_corr_milli".into(),
            value: -500,
        });

        let s = TraceSummary::from_events(&events);
        let locs = s.attr_locs();
        assert_eq!(locs["convert:7"], [40, 0, 0, 0, 9, 0]);
        assert_eq!(locs["main:2"], [3, 0, 0, 0, 0, 0]);
        assert_eq!(locs.len(), 2);
        assert_eq!(
            s.query_stats,
            vec![(
                (
                    "feasibility".to_string(),
                    "sat".to_string(),
                    "search".to_string()
                ),
                (2, 9, 0)
            )]
        );
        assert_eq!(s.calib.len(), 1);
        assert_eq!(s.calib[0].rank, 1);
        assert_eq!(s.calib[0].score_milli, 4250);
        assert!(s.calib[0].found);
        assert_eq!(s.calib[0].solver_us, 0);

        let json = s.render_json();
        assert!(json.contains(
            "\"attribution\":{\"convert:7\":{\"steps\":40,\"forks\":0,\"suspends\":0,\
             \"queries\":0,\"nodes\":9,\"us\":0},\"main:2\":{\"steps\":3,"
        ));
        assert!(json.contains(
            "\"queries\":[{\"site\":\"feasibility\",\"verdict\":\"sat\",\
             \"cache\":\"search\",\"count\":2,\"nodes\":9,\"us\":0}]"
        ));
        assert!(json.contains(
            "\"calibration\":{\"candidates\":[{\"rank\":1,\"score_milli\":4250,\
             \"path_len\":3,\"steps\":120,\"forks\":2,\"snodes\":9,\"solver_us\":0,\
             \"found\":1}],\"winner_rank\":1,\"corr_milli\":-500}"
        ));
        crate::event::json::parse(&json).unwrap();

        let text = s.render();
        assert!(text.contains("solver queries (site / verdict / cache):"));
        assert!(text.contains("feasibility / sat / search"));
        assert!(text.contains("calibration (predicted vs actual):"));
    }

    #[test]
    fn percentiles_follow_bucket_upper_bounds() {
        // 10 observations: 4 zeros, 3 in bucket 2 ([2,3]), 2 in bucket
        // 5 ([16,31]), 1 in bucket 7 ([64,127]).
        let h = HistStat {
            name: "lat".into(),
            count: 10,
            sum: 0,
            buckets: vec![(0, 4), (2, 3), (5, 2), (7, 1)],
        };
        assert_eq!(h.p50(), 3); // rank 5 lands in bucket 2 -> 2^2-1
        assert_eq!(h.p90(), 31); // rank 9 lands in bucket 5 -> 2^5-1
        assert_eq!(h.p99(), 127); // rank 10 lands in bucket 7 -> 2^7-1
        assert_eq!(h.percentile(1, 10), 0); // rank 1: a zero

        let empty = HistStat::default();
        assert_eq!(empty.p50(), 0);

        // Bucket 64 (values >= 2^63) saturates at u64::MAX.
        let top = HistStat {
            name: "big".into(),
            count: 1,
            sum: u64::MAX,
            buckets: vec![(64, 1)],
        };
        assert_eq!(top.p50(), u64::MAX);
    }
}
