//! Run-report renderer: turns a parsed trace into the per-phase
//! breakdown the paper prints in Tables II/III.
//!
//! The summary aggregates spans by name (count, total ticks, nesting
//! depth from the parent chain) and appends final metric values. The
//! rendering is fully deterministic: span rows appear in first-open
//! order, metrics in the sorted order the registry dumped them in, and
//! all numbers are integers.

use std::collections::HashMap;

use crate::event::TraceEvent;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Nesting depth of the first occurrence (0 = root).
    pub depth: usize,
    /// Number of times a span with this name was opened.
    pub count: u64,
    /// Total ticks spent inside (sum of close − open over closed
    /// spans; unclosed spans contribute nothing).
    pub total_ticks: u64,
}

/// A digest of one trace, ready to render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Clock label from the meta event (`wall_us` / `steps`).
    pub clock: String,
    /// Span aggregates in first-open order.
    pub spans: Vec<SpanStat>,
    /// Final counter values in dump order.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values in dump order.
    pub gauges: Vec<(String, i64)>,
    /// Histograms in dump order: `(name, count, sum)`.
    pub hists: Vec<(String, u64, u64)>,
    /// Point events grouped by name, in first-seen order.
    pub event_counts: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Builds a summary from a parsed event stream.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        let mut summary = TraceSummary::default();
        // Per-open-span bookkeeping: id -> (name index, open tick, depth).
        let mut open: HashMap<u64, (usize, u64, usize)> = HashMap::new();
        let mut depth_of: HashMap<u64, usize> = HashMap::new();
        let mut name_index: HashMap<String, usize> = HashMap::new();
        let mut event_index: HashMap<String, usize> = HashMap::new();

        for ev in events {
            match ev {
                TraceEvent::Meta { clock, .. } => summary.clock = clock.clone(),
                TraceEvent::SpanOpen {
                    t,
                    id,
                    parent,
                    name,
                } => {
                    let depth = if *parent == 0 {
                        0
                    } else {
                        depth_of.get(parent).map_or(0, |d| d + 1)
                    };
                    depth_of.insert(*id, depth);
                    let idx = *name_index.entry(name.clone()).or_insert_with(|| {
                        summary.spans.push(SpanStat {
                            name: name.clone(),
                            depth,
                            count: 0,
                            total_ticks: 0,
                        });
                        summary.spans.len() - 1
                    });
                    summary.spans[idx].count += 1;
                    open.insert(*id, (idx, *t, depth));
                }
                TraceEvent::SpanClose { t, id } => {
                    if let Some((idx, opened, _)) = open.remove(id) {
                        summary.spans[idx].total_ticks += t.saturating_sub(opened);
                    }
                }
                TraceEvent::Event { name, .. } => {
                    let idx = *event_index.entry(name.clone()).or_insert_with(|| {
                        summary.event_counts.push((name.clone(), 0));
                        summary.event_counts.len() - 1
                    });
                    summary.event_counts[idx].1 += 1;
                }
                TraceEvent::Counter { name, value } => {
                    summary.counters.push((name.clone(), *value));
                }
                TraceEvent::Gauge { name, value } => {
                    summary.gauges.push((name.clone(), *value));
                }
                TraceEvent::Hist {
                    name, count, sum, ..
                } => {
                    summary.hists.push((name.clone(), *count, *sum));
                }
            }
        }
        summary
    }

    /// Total ticks of the named span (0 if absent).
    pub fn span_ticks(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.total_ticks)
    }

    /// Final value of the named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_opt(name).unwrap_or(0)
    }

    /// Final value of the named counter, or `None` if the trace never
    /// recorded it — distinct from an observed zero, which matters to
    /// `statsym-inspect diff` (a vanished counter is a schema change,
    /// not a regression to 0).
    pub fn counter_opt(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Final value of the named gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the Table II/III-style run report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let unit = if self.clock.is_empty() {
            "ticks".to_string()
        } else {
            self.clock.clone()
        };
        out.push_str(&format!("run report (clock: {unit})\n"));

        if !self.spans.is_empty() {
            out.push_str("\nphases:\n");
            let name_w = self
                .spans
                .iter()
                .map(|s| s.name.len() + 2 * s.depth)
                .max()
                .unwrap_or(0)
                .max(5);
            out.push_str(&format!(
                "  {:<name_w$}  {:>8}  {:>12}\n",
                "phase", "count", unit
            ));
            for s in &self.spans {
                let label = format!("{}{}", "  ".repeat(s.depth), s.name);
                out.push_str(&format!(
                    "  {label:<name_w$}  {:>8}  {:>12}\n",
                    s.count, s.total_ticks
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<32}  {v:>12}\n"));
            }
        }

        if !self.gauges.is_empty() {
            out.push_str("\ngauges (peaks):\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<32}  {v:>12}\n"));
            }
        }

        if !self.hists.is_empty() {
            out.push_str("\nhistograms:\n");
            for (name, count, sum) in &self.hists {
                let mean = if *count > 0 { sum / count } else { 0 };
                out.push_str(&format!(
                    "  {name:<32}  count {count:>8}  sum {sum:>12}  mean {mean:>8}\n"
                ));
            }
        }

        if !self.event_counts.is_empty() {
            out.push_str("\nevents:\n");
            for (name, n) in &self.event_counts {
                out.push_str(&format!("  {name:<32}  {n:>12}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Meta {
                clock: "steps".into(),
                version: 1,
            },
            TraceEvent::SpanOpen {
                t: 0,
                id: 1,
                parent: 0,
                name: "pipeline.analyze".into(),
            },
            TraceEvent::SpanOpen {
                t: 1,
                id: 2,
                parent: 1,
                name: "phase.skeleton".into(),
            },
            TraceEvent::SpanClose { t: 4, id: 2 },
            TraceEvent::SpanClose { t: 6, id: 1 },
            TraceEvent::SpanOpen {
                t: 6,
                id: 3,
                parent: 0,
                name: "pipeline.analyze".into(),
            },
            TraceEvent::SpanClose { t: 8, id: 3 },
            TraceEvent::Event {
                t: 8,
                name: "candidate.result".into(),
                fields: vec![("found".into(), FieldValue::Str("true".into()))],
            },
            TraceEvent::Counter {
                name: "solver.queries".into(),
                value: 12,
            },
            TraceEvent::Gauge {
                name: "symex.peak_live_states".into(),
                value: 4,
            },
            TraceEvent::Hist {
                name: "solver.query_us".into(),
                count: 2,
                sum: 9,
                buckets: vec![(2, 1), (3, 1)],
            },
        ]
    }

    #[test]
    fn summary_aggregates_spans_by_name() {
        let s = TraceSummary::from_events(&sample_events());
        assert_eq!(s.clock, "steps");
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].name, "pipeline.analyze");
        assert_eq!(s.spans[0].count, 2);
        assert_eq!(s.spans[0].total_ticks, 8);
        assert_eq!(s.spans[0].depth, 0);
        assert_eq!(s.spans[1].name, "phase.skeleton");
        assert_eq!(s.spans[1].depth, 1);
        assert_eq!(s.span_ticks("phase.skeleton"), 3);
        assert_eq!(s.counter("solver.queries"), 12);
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.counter_opt("solver.queries"), Some(12));
        assert_eq!(s.counter_opt("nope"), None);
        assert_eq!(s.gauge("symex.peak_live_states"), Some(4));
        assert_eq!(s.event_counts, vec![("candidate.result".to_string(), 1)]);
    }

    #[test]
    fn render_is_deterministic_and_indented() {
        let s = TraceSummary::from_events(&sample_events());
        let a = s.render();
        let b = s.render();
        assert_eq!(a, b);
        assert!(a.contains("run report (clock: steps)"));
        assert!(a.contains("  phase.skeleton") || a.contains("    phase.skeleton"));
        assert!(a.contains("solver.queries"));
        assert!(a.contains("mean"));
    }
}
