//! Multi-sink fan-out recording and live trace streaming.
//!
//! One run can record to N destinations at once through a
//! [`FanoutRecorder`]: a single [`SinkCore`] stamps every event exactly
//! once (clock tick, span id, state id), then broadcasts the finished
//! [`TraceEvent`] to each attached [`EventSink`]. Because all sinks see
//! the *same* stamped events, a [`FileSink`] inside a fan-out writes
//! bytes identical to a standalone [`FileRecorder`](crate::FileRecorder)
//! of the same run — byte-identity by construction, not by luck.
//!
//! Sinks:
//!
//! * [`FileSink`] — canonical JSONL to any `Write` target (the
//!   [`FileRecorder`](crate::FileRecorder) behaviour, factored out).
//! * [`MemSink`] — collects events behind a shared handle for in-memory
//!   aggregation (live `TraceSummary`, tests).
//! * [`StreamSink`] — frames the canonical JSONL lines over a TCP or
//!   Unix socket through a bounded, non-blocking queue. The engine is
//!   never stalled by a slow consumer: when the queue is full the line
//!   is dropped and counted, and the final drop count rides out on the
//!   end-of-run frame (and, when nonzero, the
//!   `telemetry.stream.dropped` counter).
//!
//! # Wire format
//!
//! A stream is newline-delimited JSON. Trace events use the `"k"`
//! discriminator and are byte-identical to the trace file lines. The
//! stream adds exactly two *frames*, distinguished by an `"s"` key so
//! no trace parser can confuse them with events:
//!
//! ```text
//! {"s":"hello","version":1,"run":"<run id>"}     (first line)
//! ... canonical trace event lines ...
//! {"s":"end","dropped":<n>}                      (last line)
//! ```
//!
//! The `end` frame is the authoritative end-of-run signal — consumers
//! no longer need the "metrics flush seen ⇒ run done" heuristic the
//! file-polling dashboard uses. A stream that closes without an `end`
//! frame died mid-run.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::net::TcpStream;
use std::path::Path;
use std::rc::Rc;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock::{Clock, ClockMode};
use crate::event::{json, push_json_str, FieldValue, SpanId, TraceEvent};
use crate::expose::{render_prometheus, Exposer};
use crate::metrics::Metrics;
use crate::recorder::{LineageEvent, QueryEvent, Recorder, SinkCore, TraceBuffer, TRACE_VERSION};

/// Counter materialized at trace end when (and only when) a
/// [`StreamSink`] dropped events under backpressure. Zero-drop runs
/// emit nothing, so a streamed trace stays byte-identical to an
/// unstreamed one.
pub const STREAM_DROPPED: &str = "telemetry.stream.dropped";

/// One destination for the stamped event stream of a [`FanoutRecorder`].
///
/// Sinks receive every event exactly once, in recording order, starting
/// with the trace meta event. They are driven from the recording thread
/// and may be `!Send`.
pub trait EventSink {
    /// Delivers one stamped event.
    fn emit(&mut self, ev: &TraceEvent);

    /// Called after lineage-state events: a hint to make buffered output
    /// visible (the tailability contract of
    /// [`FileRecorder`](crate::FileRecorder)). Default no-op.
    fn flush_hint(&mut self) {}

    /// Finalizes the sink after the metrics snapshot has been emitted.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink hit at any point.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Events this sink discarded under backpressure (0 for lossless
    /// sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Canonical JSONL to a `Write` target; the file half of
/// [`FileRecorder`](crate::FileRecorder), usable standalone inside any
/// fan-out. Writes are best-effort while the run is in flight; the
/// first I/O error is latched and surfaced by [`EventSink::finish`].
pub struct FileSink {
    out: BufWriter<Box<dyn Write>>,
    error: Option<io::Error>,
}

impl FileSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` failure.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<FileSink> {
        let file = File::create(path)?;
        Ok(FileSink::from_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (tests trace into memory this way).
    pub fn from_writer(w: Box<dyn Write>) -> FileSink {
        FileSink {
            out: BufWriter::new(w),
            error: None,
        }
    }
}

impl EventSink for FileSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = ev.to_json_line();
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush_hint(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Shared handle to the events captured by a [`MemSink`].
#[derive(Debug, Clone, Default)]
pub struct SharedEvents(Rc<RefCell<Vec<TraceEvent>>>);

impl SharedEvents {
    /// The events captured so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.borrow().clone()
    }
}

/// An in-memory sink: the aggregation leg of a fan-out. Events are
/// readable mid-run through the [`SharedEvents`] handle.
#[derive(Debug, Default)]
pub struct MemSink(SharedEvents);

impl MemSink {
    /// A fresh sink and the handle to read it.
    pub fn new() -> (MemSink, SharedEvents) {
        let handle = SharedEvents::default();
        (MemSink(handle.clone()), handle)
    }
}

impl EventSink for MemSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.0 .0.borrow_mut().push(ev.clone());
    }
}

/// The non-event frames a [`StreamSink`] adds around the trace lines.
///
/// Frames use an `"s"` discriminator where events use `"k"`, so a frame
/// line is invisible to every trace parser — and stripping frames from
/// a captured stream yields the canonical trace byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamFrame {
    /// First line of a stream: run metadata.
    Hello {
        /// Trace format version ([`TRACE_VERSION`]).
        version: u64,
        /// Caller-chosen run identifier (e.g. the trace file stem).
        run: String,
    },
    /// Last line of a stream: the authoritative end-of-run signal.
    End {
        /// Events dropped under backpressure over the stream's life.
        dropped: u64,
    },
}

impl StreamFrame {
    /// Renders the canonical single-line form (no trailing newline).
    pub fn to_json_line(&self) -> String {
        match self {
            StreamFrame::Hello { version, run } => {
                let mut s = format!("{{\"s\":\"hello\",\"version\":{version},\"run\":");
                push_json_str(&mut s, run);
                s.push('}');
                s
            }
            StreamFrame::End { dropped } => {
                format!("{{\"s\":\"end\",\"dropped\":{dropped}}}")
            }
        }
    }

    /// Parses a stream line as a frame. `None` means the line is not a
    /// frame (most likely an ordinary trace event line).
    pub fn parse(line: &str) -> Option<StreamFrame> {
        let obj = json::parse(line).ok()?;
        let obj = obj.as_object()?;
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match get("s")?.as_str()? {
            "hello" => Some(StreamFrame::Hello {
                version: get("version")?.as_u64()?,
                run: get("run")?.as_str()?.to_string(),
            }),
            "end" => Some(StreamFrame::End {
                dropped: get("dropped")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// How many lines a [`StreamSink`] buffers before dropping.
pub const STREAM_QUEUE_CAPACITY: usize = 8192;

/// Frames the canonical JSONL event stream over a socket (or any `Write`)
/// without ever blocking the recording thread.
///
/// Lines are handed to a background writer thread through a bounded
/// queue via `try_send`: a full queue (slow or stalled consumer) drops
/// the line and bumps the drop counter instead of stalling the engine.
/// [`EventSink::finish`] sends the [`StreamFrame::End`] frame carrying
/// the final drop count, joins the writer, and reports its first I/O
/// error.
pub struct StreamSink {
    tx: Option<SyncSender<String>>,
    dropped: u64,
    writer: Option<JoinHandle<io::Result<()>>>,
}

impl StreamSink {
    /// Connects to `addr` — a Unix socket path if it contains `/`, else
    /// a TCP `host:port` — retrying for a few seconds so a consumer
    /// started in parallel (`statsym-inspect live`) wins the race.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once retries are exhausted.
    pub fn connect(addr: &str, run: &str) -> io::Result<StreamSink> {
        let mut last = None;
        for attempt in 0..100u32 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(50));
            }
            match Self::connect_once(addr) {
                Ok(w) => return Ok(StreamSink::start(w, run)),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connection attempt made")))
    }

    fn connect_once(addr: &str) -> io::Result<Box<dyn Write + Send>> {
        #[cfg(unix)]
        if addr.contains('/') {
            let s = std::os::unix::net::UnixStream::connect(addr)?;
            return Ok(Box::new(s));
        }
        let s = TcpStream::connect(addr)?;
        Ok(Box::new(s))
    }

    /// Streams into an arbitrary writer (tests capture the framed bytes
    /// this way).
    pub fn from_writer(w: Box<dyn Write + Send>, run: &str) -> StreamSink {
        StreamSink::start(w, run)
    }

    fn start(w: Box<dyn Write + Send>, run: &str) -> StreamSink {
        let (tx, rx) = sync_channel::<String>(STREAM_QUEUE_CAPACITY);
        let hello = StreamFrame::Hello {
            version: TRACE_VERSION,
            run: run.to_string(),
        }
        .to_json_line();
        let writer = std::thread::spawn(move || -> io::Result<()> {
            let mut w = w;
            w.write_all(hello.as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()?;
            // Drain until every sender hangs up (finish() drops the tx
            // after queueing the end frame).
            for line in rx {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
                w.flush()?;
            }
            w.flush()
        });
        StreamSink {
            tx: Some(tx),
            dropped: 0,
            writer: Some(writer),
        }
    }
}

impl EventSink for StreamSink {
    fn emit(&mut self, ev: &TraceEvent) {
        let Some(tx) = &self.tx else {
            return;
        };
        match tx.try_send(ev.to_json_line()) {
            Ok(()) => {}
            // Full queue (slow consumer) or dead writer (broken socket):
            // either way the engine must not stall — drop and count.
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped += 1;
            }
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(tx) = self.tx.take() {
            let end = StreamFrame::End {
                dropped: self.dropped,
            }
            .to_json_line();
            // Blocking send: end-of-run is off the hot path and the
            // consumer deserves the final frame. A dead writer already
            // dropped the receiver, in which case this fails cleanly.
            let _ = tx.send(end);
        }
        match self.writer.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("stream writer thread panicked"))),
            None => Ok(()),
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        // finish() not called — a panic unwound the run. Still send the
        // end frame (best effort, never blocking) so the consumer can
        // tell "run crashed after N events" from "stream died mid-run":
        // `inspect live` must not report a lost stream for a crashed
        // run. Then close the queue so the writer thread exits.
        if let Some(tx) = self.tx.take() {
            let end = StreamFrame::End {
                dropped: self.dropped,
            }
            .to_json_line();
            let _ = tx.try_send(end);
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

/// Records one run to N sinks at once.
///
/// A single [`SinkCore`] stamps each event exactly once and the result
/// is broadcast to every sink, so all destinations carry the same
/// bytes. With a [`FileSink`] attached this *is*
/// [`FileRecorder`](crate::FileRecorder) (which delegates here); adding
/// a [`StreamSink`] or [`MemSink`] cannot perturb the file output.
///
/// Zero sinks is legal and cheap, but callers wanting true zero cost
/// when tracing is off should keep using
/// [`NOOP`](crate::NOOP)/[`Recorder::enabled`].
pub struct FanoutRecorder {
    core: SinkCore,
    sinks: RefCell<Vec<Box<dyn EventSink>>>,
    exposer: Option<Exposer>,
    // State events between exposition refreshes; spans/merges refresh
    // unconditionally (rare), states are throttled (frequent).
    expose_pending: std::cell::Cell<u32>,
}

impl std::fmt::Debug for FanoutRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutRecorder")
            .field("core", &self.core)
            .field("sinks", &self.sinks.borrow().len())
            .finish()
    }
}

impl FanoutRecorder {
    /// An empty fan-out stamping events with the given clock.
    pub fn new(clock: Clock) -> FanoutRecorder {
        FanoutRecorder {
            core: SinkCore::new(clock),
            sinks: RefCell::new(Vec::new()),
            exposer: None,
            expose_pending: std::cell::Cell::new(0),
        }
    }

    /// Attaches a sink. The trace meta event is delivered immediately,
    /// so every sink's stream starts identically no matter when it was
    /// attached (attach all sinks before recording anything else).
    pub fn add_sink(&mut self, mut sink: Box<dyn EventSink>) {
        sink.emit(&self.core.meta_event());
        self.sinks.get_mut().push(sink);
    }

    /// Builder-style [`FanoutRecorder::add_sink`].
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn EventSink>) -> FanoutRecorder {
        self.add_sink(sink);
        self
    }

    /// Read-only access to the metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Starts serving Prometheus-text snapshots of the metrics registry
    /// on `addr` (TCP `host:port`, or a Unix socket path containing
    /// `/`). Returns the bound address (`:0` resolved). The snapshot is
    /// refreshed at span boundaries, buffer merges, throttled lineage
    /// cadence, and finish; `statsym-inspect scrape` is the client.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn expose(&mut self, addr: &str, run: &str) -> io::Result<String> {
        let exp = Exposer::bind(addr, run)?;
        let bound = exp.addr().to_string();
        exp.update(render_prometheus(&self.core.metrics));
        self.exposer = Some(exp);
        Ok(bound)
    }

    /// State events between exposition refreshes — frequent-event
    /// throttle so lineage-heavy runs don't render a snapshot per fork.
    const EXPOSE_STATE_STRIDE: u32 = 256;

    fn refresh_exposition(&self) {
        if let Some(exp) = &self.exposer {
            exp.update(render_prometheus(&self.core.metrics));
            self.expose_pending.set(0);
        }
    }

    fn refresh_exposition_throttled(&self) {
        if self.exposer.is_some() {
            let n = self.expose_pending.get() + 1;
            if n >= Self::EXPOSE_STATE_STRIDE {
                self.refresh_exposition();
            } else {
                self.expose_pending.set(n);
            }
        }
    }

    fn broadcast(&self, ev: &TraceEvent) {
        for sink in self.sinks.borrow_mut().iter_mut() {
            sink.emit(ev);
        }
    }

    /// Emits the metrics snapshot and finalizes every sink.
    ///
    /// If any [`StreamSink`] dropped events, a `telemetry.stream.dropped`
    /// counter is materialized first so the drop is visible in the trace
    /// itself (drops of the snapshot lines themselves are only visible
    /// in the end frame).
    ///
    /// # Errors
    ///
    /// Returns the first error any sink reported; all sinks are
    /// finalized regardless.
    pub fn finish(self) -> io::Result<()> {
        let mut sinks = self.sinks.into_inner();
        let dropped: u64 = sinks.iter().map(|s| s.dropped()).sum();
        if dropped > 0 {
            self.core.metrics.counter_add(STREAM_DROPPED, dropped);
        }
        if let Some(exp) = &self.exposer {
            // Final snapshot, then shut the endpoint down (dropped below).
            exp.update(render_prometheus(&self.core.metrics));
        }
        for ev in self.core.metrics.snapshot() {
            for sink in sinks.iter_mut() {
                sink.emit(&ev);
            }
        }
        let mut first_err = None;
        for sink in sinks.iter_mut() {
            if let Err(e) = sink.finish() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_open(&self, name: &str) -> SpanId {
        let (id, ev) = self.core.open(name);
        self.broadcast(&ev);
        id
    }

    fn span_close(&self, id: SpanId) {
        if let Some(ev) = self.core.close(id) {
            self.broadcast(&ev);
        }
        self.refresh_exposition();
    }

    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let ev = self.core.point(name, fields);
        self.broadcast(&ev);
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.core.metrics.counter_add(name, delta);
    }

    fn gauge_max(&self, name: &str, v: i64) {
        self.core.metrics.gauge_max(name, v);
    }

    fn observe(&self, name: &str, v: u64) {
        self.core.metrics.observe(name, v);
    }

    fn observe_wall(&self, name: &str, d: Duration) {
        if !self.core.clock.is_deterministic() {
            self.core.metrics.observe(name, d.as_micros() as u64);
        }
    }

    fn tick(&self, delta: u64) {
        self.core.clock.advance(delta);
    }

    fn alloc_state_id(&self) -> u64 {
        self.core.alloc_state()
    }

    fn state(&self, ev: &LineageEvent<'_>) {
        let ev = self.core.state_event(ev);
        self.broadcast(&ev);
        // Keep tailing consumers current: the file half flushes so
        // `statsym-inspect watch` sees a growing trace mid-run.
        for sink in self.sinks.borrow_mut().iter_mut() {
            sink.flush_hint();
        }
        self.refresh_exposition_throttled();
    }

    fn query(&self, ev: &QueryEvent<'_>) {
        // No flush hint: queries are far too frequent for per-event
        // flushing; a tailing consumer catches up at the next lineage
        // event or at finish().
        let ev = self.core.query_event(ev);
        self.broadcast(&ev);
    }

    fn clock_mode(&self) -> ClockMode {
        self.core.clock.mode()
    }

    fn merge_buffer(&self, buf: &TraceBuffer, prefix: Option<&str>) {
        for ev in self.core.splice(buf, prefix) {
            self.broadcast(&ev);
        }
        self.refresh_exposition();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FileRecorder, SharedBuf};
    use std::sync::{Arc, Mutex};

    /// A `Write` that captures bytes behind an Arc so the writer thread
    /// can own it while the test reads the result after finish().
    #[derive(Clone, Default)]
    struct CapturedBytes(Arc<Mutex<Vec<u8>>>);

    impl CapturedBytes {
        fn contents(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Write for CapturedBytes {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drive(rec: &dyn Recorder) {
        let run = rec.span_open("engine.run");
        rec.tick(10);
        rec.event("engine.outcome", &[("outcome", FieldValue::from("found"))]);
        let id = rec.alloc_state_id();
        rec.state(&LineageEvent {
            op: crate::lineage_op::ROOT,
            id,
            parent: 0,
            loc: "main:b0",
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            solver_us: 0,
        });
        rec.span_close(run);
        rec.counter_add("symex.steps", 10);
        rec.gauge_max("symex.peak_live_states", 3);
        rec.observe("lat", 7);
    }

    #[test]
    fn frames_render_and_parse_roundtrip() {
        let hello = StreamFrame::Hello {
            version: TRACE_VERSION,
            run: "ci \"quoted\"".into(),
        };
        let end = StreamFrame::End { dropped: 3 };
        assert_eq!(StreamFrame::parse(&hello.to_json_line()), Some(hello));
        assert_eq!(StreamFrame::parse(&end.to_json_line()), Some(end));
        // Ordinary trace lines are not frames.
        assert_eq!(
            StreamFrame::parse("{\"k\":\"meta\",\"clock\":\"steps\",\"version\":1}"),
            None
        );
        assert_eq!(StreamFrame::parse("not json"), None);
    }

    #[test]
    fn frame_lines_are_invisible_to_trace_parsers() {
        let hello = StreamFrame::Hello {
            version: 1,
            run: "r".into(),
        };
        assert!(TraceEvent::parse_line(&hello.to_json_line()).is_err());
        assert!(TraceEvent::parse_line(&StreamFrame::End { dropped: 0 }.to_json_line()).is_err());
    }

    #[test]
    fn fanout_file_sink_matches_file_recorder_bytes() {
        let solo = SharedBuf::new();
        let rec = FileRecorder::from_writer(Box::new(solo.clone()), Clock::steps());
        drive(&rec);
        rec.finish().unwrap();

        let (mem, handle) = MemSink::new();
        let fan_buf = SharedBuf::new();
        let fan = FanoutRecorder::new(Clock::steps())
            .with_sink(Box::new(FileSink::from_writer(Box::new(fan_buf.clone()))))
            .with_sink(Box::new(mem));
        drive(&fan);
        fan.finish().unwrap();

        assert_eq!(solo.contents(), fan_buf.contents());
        // The mem sink saw the same events the file did.
        let text = String::from_utf8(fan_buf.contents()).unwrap();
        assert_eq!(crate::event::parse_trace(&text).unwrap(), handle.events());
    }

    #[test]
    fn stream_sink_frames_and_strips_back_to_canonical_trace() {
        let solo = SharedBuf::new();
        let rec = FileRecorder::from_writer(Box::new(solo.clone()), Clock::steps());
        drive(&rec);
        rec.finish().unwrap();

        let wire = CapturedBytes::default();
        let fan = FanoutRecorder::new(Clock::steps()).with_sink(Box::new(StreamSink::from_writer(
            Box::new(wire.clone()),
            "unit",
        )));
        drive(&fan);
        fan.finish().unwrap();

        let text = String::from_utf8(wire.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            StreamFrame::parse(lines[0]),
            Some(StreamFrame::Hello {
                version: TRACE_VERSION,
                run: "unit".into()
            })
        );
        assert_eq!(
            StreamFrame::parse(lines[lines.len() - 1]),
            Some(StreamFrame::End { dropped: 0 })
        );
        // Stripping the frames yields the FileRecorder trace exactly.
        let mut recorded = String::new();
        for line in &lines[1..lines.len() - 1] {
            assert!(StreamFrame::parse(line).is_none());
            recorded.push_str(line);
            recorded.push('\n');
        }
        assert_eq!(recorded.into_bytes(), solo.contents());
    }

    #[test]
    fn stream_sink_over_tcp_delivers_the_framed_stream() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let reader = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut text = String::new();
            let mut sock = sock;
            io::Read::read_to_string(&mut sock, &mut text).unwrap();
            text
        });

        let fan = FanoutRecorder::new(Clock::steps())
            .with_sink(Box::new(StreamSink::connect(&addr, "tcp-run").unwrap()));
        drive(&fan);
        fan.finish().unwrap();

        let text = reader.join().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(matches!(
            StreamFrame::parse(lines[0]),
            Some(StreamFrame::Hello { run, .. }) if run == "tcp-run"
        ));
        assert_eq!(
            StreamFrame::parse(lines[lines.len() - 1]),
            Some(StreamFrame::End { dropped: 0 })
        );
        for line in &lines[1..lines.len() - 1] {
            TraceEvent::parse_line(line).unwrap();
        }
    }

    #[test]
    fn dropped_stream_sink_still_delivers_the_end_frame() {
        // A panic unwinding the run drops the sink without finish();
        // the consumer must still receive a terminal end frame so
        // `inspect live` reports a crashed run, not a lost stream.
        let wire = CapturedBytes::default();
        {
            let mut sink = StreamSink::from_writer(Box::new(wire.clone()), "crashed");
            sink.emit(&TraceEvent::Counter {
                name: "symex.steps".into(),
                value: 7,
            });
            // No finish(): scope end drops the sink mid-run.
        }
        let text = String::from_utf8(wire.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(matches!(
            StreamFrame::parse(lines[0]),
            Some(StreamFrame::Hello { run, .. }) if run == "crashed"
        ));
        assert_eq!(
            StreamFrame::parse(lines[lines.len() - 1]),
            Some(StreamFrame::End { dropped: 0 })
        );
    }

    #[test]
    fn exposition_refreshes_at_span_close_and_serves_scrapes() {
        let mut fan = FanoutRecorder::new(Clock::steps());
        let addr = fan.expose("127.0.0.1:0", "exposed").unwrap();
        fan.counter_add("symex.steps", 41);
        let id = fan.span_open("phase.demo");
        fan.span_close(id); // refresh point
        let text = scrape(&addr);
        assert!(text.contains("statsym_symex_steps 41"), "{text}");
        fan.finish().unwrap();
    }

    fn scrape(addr: &str) -> String {
        for _ in 0..50 {
            if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                let mut text = String::new();
                io::Read::read_to_string(&mut s, &mut text).unwrap();
                return text;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to exposition endpoint {addr}");
    }

    #[test]
    fn full_queue_drops_lines_counts_them_and_never_blocks() {
        /// A writer whose first write parks until allowed, simulating a
        /// stalled consumer.
        struct Stalled(Arc<Mutex<()>>);
        impl Write for Stalled {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let _g = self.0.lock().unwrap();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let mut sink = StreamSink::from_writer(Box::new(Stalled(gate.clone())), "stall");
        // Writer thread blocks inside the hello write; fill the queue
        // past capacity. emit() must return instantly every time.
        let ev = TraceEvent::Counter {
            name: "c".into(),
            value: 1,
        };
        for _ in 0..(STREAM_QUEUE_CAPACITY + 100) {
            sink.emit(&ev);
        }
        assert!(sink.dropped() >= 100);
        drop(held);
        sink.finish().unwrap();
    }

    #[test]
    fn fanout_materializes_drop_counter_only_when_drops_happened() {
        struct NullSink {
            drops: u64,
        }
        impl EventSink for NullSink {
            fn emit(&mut self, _ev: &TraceEvent) {}
            fn dropped(&self) -> u64 {
                self.drops
            }
        }

        let (mem, handle) = MemSink::new();
        let fan = FanoutRecorder::new(Clock::steps())
            .with_sink(Box::new(mem))
            .with_sink(Box::new(NullSink { drops: 0 }));
        fan.counter_add("x", 1);
        fan.finish().unwrap();
        assert!(!handle
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Counter { name, .. } if name == STREAM_DROPPED)));

        let (mem, handle) = MemSink::new();
        let fan = FanoutRecorder::new(Clock::steps())
            .with_sink(Box::new(mem))
            .with_sink(Box::new(NullSink { drops: 7 }));
        fan.finish().unwrap();
        assert!(handle.events().iter().any(
            |e| matches!(e, TraceEvent::Counter { name, value: 7 } if name == STREAM_DROPPED)
        ));
    }

    #[test]
    fn file_sink_latches_first_error_until_finish() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let fan = FanoutRecorder::new(Clock::steps())
            .with_sink(Box::new(FileSink::from_writer(Box::new(FailingWriter))));
        // The state event's flush hint pushes buffered bytes into the
        // failing writer mid-run; the error must surface at finish().
        let id = fan.alloc_state_id();
        fan.state(&LineageEvent {
            op: crate::lineage_op::ROOT,
            id,
            parent: 0,
            loc: "main:b0",
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            solver_us: 0,
        });
        let err = fan.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
