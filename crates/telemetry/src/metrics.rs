//! Metrics registry: counters, gauges, and log-scale histograms.
//!
//! Metrics are cheap accumulators keyed by name. They are flushed into
//! the trace as final-value events when a recorder finishes, in sorted
//! name order (`BTreeMap`) so dumps are deterministic.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::event::TraceEvent;

/// Number of histogram buckets: bucket 0 for zero, buckets 1..=64 for
/// `[2^(b-1), 2^b - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Power-of-two buckets cover the full `u64` range in 65 slots, which
/// is plenty of resolution for latency-style data (the paper's solver
/// queries span nanoseconds to seconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Bucket counts; see [`bucket_of`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// The bucket index for a value: 0 for 0, else `floor(log2 v) + 1`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize) + 1
    }
}

impl Hist {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Folds another histogram into this one (counts and sums add
    /// bucket-wise); used when merging worker trace buffers.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (slot, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += n;
        }
    }

    /// The sparse `(bucket, count)` representation used on the wire.
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (b as u32, n))
            .collect()
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Interior-mutable so recorders can take `&self` (the whole telemetry
/// layer is single-threaded by design, per DESIGN.md §5).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RefCell<BTreeMap<String, u64>>,
    gauges: RefCell<BTreeMap<String, i64>>,
    hists: RefCell<BTreeMap<String, Hist>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the named monotone counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut map = self.counters.borrow_mut();
        if let Some(slot) = map.get_mut(name) {
            *slot = slot.saturating_add(delta);
        } else {
            map.insert(name.to_string(), delta);
        }
    }

    /// Raises the named gauge to `v` if `v` is larger (peak tracking).
    pub fn gauge_max(&self, name: &str, v: i64) {
        let mut map = self.gauges.borrow_mut();
        match map.get_mut(name) {
            Some(slot) => *slot = (*slot).max(v),
            None => {
                map.insert(name.to_string(), v);
            }
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        let mut map = self.hists.borrow_mut();
        if let Some(h) = map.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Hist::default();
            h.observe(v);
            map.insert(name.to_string(), h);
        }
    }

    /// Folds a whole histogram into the named registry entry (used when
    /// merging worker trace buffers).
    pub fn merge_hist(&self, name: &str, other: &Hist) {
        let mut map = self.hists.borrow_mut();
        if let Some(h) = map.get_mut(name) {
            h.merge(other);
        } else {
            map.insert(name.to_string(), other.clone());
        }
    }

    /// Reads back a counter. `None` means the counter was never
    /// incremented — distinct from an observed zero, so report diffs
    /// can tell "absent" from "0".
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.borrow().get(name).copied()
    }

    /// Reads back a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.borrow().get(name).copied()
    }

    /// Reads back a histogram clone, if ever observed.
    pub fn hist(&self, name: &str) -> Option<Hist> {
        self.hists.borrow().get(name).cloned()
    }

    /// All counters as `(name, value)` pairs in sorted name order.
    pub fn dump_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All gauges as `(name, value)` pairs in sorted name order.
    pub fn dump_gauges(&self) -> Vec<(String, i64)> {
        self.gauges
            .borrow()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All histograms as `(name, hist)` pairs in sorted name order.
    pub fn dump_hists(&self) -> Vec<(String, Hist)> {
        self.hists
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Dumps every metric as final-value trace events, counters first,
    /// then gauges, then histograms, each in sorted name order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for (name, &value) in self.counters.borrow().iter() {
            out.push(TraceEvent::Counter {
                name: name.clone(),
                value,
            });
        }
        for (name, &value) in self.gauges.borrow().iter() {
            out.push(TraceEvent::Gauge {
                name: name.clone(),
                value,
            });
        }
        for (name, h) in self.hists.borrow().iter() {
            out.push(TraceEvent::Hist {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                buckets: h.sparse(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn hist_accumulates() {
        let mut h = Hist::default();
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.sparse(), vec![(0, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn hist_merge_adds_bucketwise() {
        let mut a = Hist::default();
        a.observe(3);
        a.observe(1024);
        let mut b = Hist::default();
        b.observe(0);
        b.observe(3);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 1030);
        assert_eq!(a.sparse(), vec![(0, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn merge_hist_creates_or_folds() {
        let m = Metrics::new();
        let mut h = Hist::default();
        h.observe(7);
        m.merge_hist("lat", &h);
        m.merge_hist("lat", &h);
        assert_eq!(m.hist("lat").unwrap().count, 2);
        assert_eq!(m.dump_hists().len(), 1);
    }

    #[test]
    fn metrics_registry_and_snapshot_order() {
        let m = Metrics::new();
        m.counter_add("z.count", 2);
        m.counter_add("a.count", 1);
        m.counter_add("z.count", 3);
        m.gauge_max("peak", 5);
        m.gauge_max("peak", 3);
        m.observe("lat", 7);
        assert_eq!(m.counter("z.count"), Some(5));
        assert_eq!(m.counter("missing"), None);
        assert_eq!(m.gauge("peak"), Some(5));
        assert_eq!(m.hist("lat").unwrap().count, 1);

        let snap = m.snapshot();
        let names: Vec<String> = snap
            .iter()
            .map(|e| match e {
                TraceEvent::Counter { name, .. } => format!("c:{name}"),
                TraceEvent::Gauge { name, .. } => format!("g:{name}"),
                TraceEvent::Hist { name, .. } => format!("h:{name}"),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["c:a.count", "c:z.count", "g:peak", "h:lat"]);
    }
}
