//! Run manifests: one compact, versioned record per pipeline/bench/
//! testkit run, appended to a content-addressed JSONL archive
//! (`results/history/history.jsonl` by convention) so cross-run
//! analytics (`statsym-inspect history|trend|regress`) can reason about
//! drift instead of single-baseline diffs.
//!
//! A manifest folds the run's final metrics — counters, gauges, the
//! winner rank and budget disposition — together with identity metadata
//! (workload, seed, git revision, config fingerprint) and a content
//! hash of the canonical trace. Scheduling-shaped metrics
//! ([`SCHEDULING_PREFIXES`]: `portfolio.*`, `telemetry.*`) are excluded
//! from both the fold and the trace hash, so a manifest derived from a
//! deterministic (steps-clock) trace is **byte-identical at any
//! portfolio worker or state-worker count** — the property the
//! byte-identity tests in `tests/observability.rs` pin.
//!
//! Records are single canonical JSON lines (fixed key order, integers
//! only) with a `kind` discriminator and a `schema_version`, parsed by
//! a strict line-numbered parser that rejects unknown schema majors and
//! verifies the content address (`id` = FNV-1a of the record body).

use crate::event::{json, push_json_str, ParseError, TraceEvent};
use crate::report::TraceSummary;
use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Schema major version of manifest records this build writes and
/// accepts. Strict parsers reject any other major with a line-numbered
/// error (the version-skew contract shared with `report --format json`).
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// The stable top-level discriminator every manifest record carries.
pub const MANIFEST_KIND: &str = "statsym.manifest";

/// File name of the archive inside a history directory.
pub const HISTORY_FILE: &str = "history.jsonl";

/// Metric-name prefixes excluded from manifests: these are shaped by
/// scheduling (worker counts, cancellation races, stream backpressure),
/// not by the workload, and would break the byte-identity guarantee.
pub const SCHEDULING_PREFIXES: [&str; 2] = ["portfolio.", "telemetry."];

/// FNV-1a 64-bit hash — the std-only content address used for manifest
/// ids, trace content hashes, and config fingerprints.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv64`] rendered as the fixed-width lowercase hex used on the wire.
pub fn fnv64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv64(bytes))
}

/// Best-effort git revision of the working tree: `STATSYM_GIT_REV` if
/// set, else the commit `.git/HEAD` resolves to (truncated to 12 hex
/// chars), else `"unknown"`. Never errors — a manifest without a
/// revision is still a manifest.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("STATSYM_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    let head = match std::fs::read_to_string(".git/HEAD") {
        Ok(h) => h,
        Err(_) => return "unknown".to_string(),
    };
    let head = head.trim();
    let hash = match head.strip_prefix("ref: ") {
        Some(r) => match std::fs::read_to_string(Path::new(".git").join(r.trim())) {
            Ok(h) => h.trim().to_string(),
            Err(_) => return "unknown".to_string(),
        },
        None => head.to_string(),
    };
    if hash.len() >= 12 && hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        hash[..12].to_string()
    } else {
        "unknown".to_string()
    }
}

/// Caller-provided identity metadata for a manifest: everything the
/// trace itself cannot know.
#[derive(Debug, Clone, Default)]
pub struct ManifestMeta {
    /// What produced the run: `pipeline`, `bench`, `testkit`, …
    pub source: String,
    /// Workload/run name (the trace file stem by convention).
    pub run: String,
    /// Git revision (see [`git_rev`]).
    pub git: String,
    /// Workload seed.
    pub seed: u64,
    /// Config fingerprint (scheduling-canonicalized; see
    /// `statsym_core::pipeline::config_fingerprint`).
    pub config: String,
}

/// One run's manifest record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunManifest {
    /// What produced the run (`pipeline` / `bench` / `testkit`).
    pub source: String,
    /// Workload/run name.
    pub run: String,
    /// Git revision.
    pub git: String,
    /// Workload seed.
    pub seed: u64,
    /// Config fingerprint.
    pub config: String,
    /// Clock label of the source trace (`steps` / `wall_us`).
    pub clock: String,
    /// Final clock reading (largest event timestamp).
    pub ticks: u64,
    /// Winning candidate rank (1-based); `0` when no candidate won.
    pub winner_rank: u64,
    /// Budget disposition: `none` (no budget configured), `within`,
    /// `exceeded`, or `crashed` (crash-bundle manifests).
    pub budget: String,
    /// Content hash of the scheduling-independent canonical trace lines.
    pub trace: String,
    /// Folded counters, scheduling-shaped prefixes excluded.
    pub counters: BTreeMap<String, u64>,
    /// Folded gauges, scheduling-shaped prefixes excluded.
    pub gauges: BTreeMap<String, i64>,
}

/// Whether a metric name is scheduling-shaped and thus excluded from
/// manifests (and from the manifest's trace content hash).
pub fn is_scheduling_metric(name: &str) -> bool {
    SCHEDULING_PREFIXES.iter().any(|p| name.starts_with(p))
}

impl RunManifest {
    /// Builds a manifest from parsed trace events plus caller metadata.
    /// Counters/gauges fold from the trace's final metric events with
    /// [`SCHEDULING_PREFIXES`] excluded; the winner rank comes from the
    /// `calib.winner_rank` gauge; the budget disposition from the
    /// `budget.*` metric family; the trace hash from the canonical
    /// renders of every scheduling-independent line.
    pub fn from_events(events: &[TraceEvent], meta: &ManifestMeta) -> RunManifest {
        let summary = TraceSummary::from_events(events);
        let mut counters = BTreeMap::new();
        for (name, v) in &summary.counters {
            if !is_scheduling_metric(name) {
                counters.insert(name.clone(), *v);
            }
        }
        let mut gauges = BTreeMap::new();
        for (name, v) in &summary.gauges {
            if !is_scheduling_metric(name) {
                gauges.insert(name.clone(), *v);
            }
        }
        let winner_rank = gauges
            .get(crate::names::CALIB_WINNER_RANK)
            .copied()
            .and_then(|v| u64::try_from(v).ok())
            .unwrap_or(0);
        let budget = if counters.get(crate::names::BUDGET_EXCEEDED).copied() > Some(0) {
            "exceeded"
        } else if counters
            .keys()
            .chain(gauges.keys())
            .any(|k| k.starts_with("budget."))
        {
            "within"
        } else {
            "none"
        };
        let mut ticks = 0u64;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for ev in events {
            ticks = ticks.max(event_ts(ev));
            if let TraceEvent::Counter { name, .. }
            | TraceEvent::Gauge { name, .. }
            | TraceEvent::Hist { name, .. } = ev
            {
                if is_scheduling_metric(name) {
                    continue;
                }
            }
            for &b in ev.to_json_line().as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(b'\n');
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RunManifest {
            source: meta.source.clone(),
            run: meta.run.clone(),
            git: meta.git.clone(),
            seed: meta.seed,
            config: meta.config.clone(),
            clock: summary.clock.clone(),
            ticks,
            winner_rank,
            budget: budget.to_string(),
            trace: format!("{h:016x}"),
            counters,
            gauges,
        }
    }

    /// Builds a manifest from a canonical JSONL trace (strict parse).
    ///
    /// # Errors
    ///
    /// Returns the strict parser's line-numbered error for a malformed
    /// trace.
    pub fn from_trace(text: &str, meta: &ManifestMeta) -> Result<RunManifest, ParseError> {
        Ok(RunManifest::from_events(
            &crate::parse_trace_strict(text)?,
            meta,
        ))
    }

    /// Builds a manifest from a possibly-truncated trace (crash
    /// bundles): the budget disposition is forced to `crashed`.
    ///
    /// # Errors
    ///
    /// Returns the truncated parser's line-numbered error when even the
    /// tolerant parse fails.
    pub fn from_trace_truncated(
        text: &str,
        meta: &ManifestMeta,
    ) -> Result<RunManifest, ParseError> {
        let (events, _truncated) = crate::parse_trace_truncated(text)?;
        let mut m = RunManifest::from_events(&events, meta);
        m.budget = "crashed".to_string();
        Ok(m)
    }

    /// The record's content address: the FNV-1a hash of the rendered
    /// body with an empty `id` field.
    pub fn id(&self) -> String {
        fnv64_hex(self.render_with_id("").as_bytes())
    }

    /// Renders the canonical single-line record, content address
    /// included. Byte-stable: fixed key order, integers only, no
    /// whitespace.
    pub fn render(&self) -> String {
        self.render_with_id(&self.id())
    }

    fn render_with_id(&self, id: &str) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"kind\":");
        push_json_str(&mut s, MANIFEST_KIND);
        s.push_str(&format!(
            ",\"schema_version\":{MANIFEST_SCHEMA_VERSION},\"id\":"
        ));
        push_json_str(&mut s, id);
        s.push_str(",\"source\":");
        push_json_str(&mut s, &self.source);
        s.push_str(",\"run\":");
        push_json_str(&mut s, &self.run);
        s.push_str(",\"git\":");
        push_json_str(&mut s, &self.git);
        s.push_str(&format!(",\"seed\":{},\"config\":", self.seed));
        push_json_str(&mut s, &self.config);
        s.push_str(",\"clock\":");
        push_json_str(&mut s, &self.clock);
        s.push_str(&format!(
            ",\"ticks\":{},\"winner_rank\":{},\"budget\":",
            self.ticks, self.winner_rank
        ));
        push_json_str(&mut s, &self.budget);
        s.push_str(",\"trace\":");
        push_json_str(&mut s, &self.trace);
        s.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, name);
            s.push_str(&format!(":{v}"));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, name);
            s.push_str(&format!(":{v}"));
        }
        s.push_str("}}");
        s
    }

    /// Parses one manifest record, verifying the schema major and the
    /// content address. `line_no` is the 1-based archive line for error
    /// reporting.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered [`ParseError`] for malformed JSON, a
    /// wrong `kind`, an unsupported `schema_version` major, missing or
    /// mistyped fields, or a content-address mismatch.
    pub fn parse_line(line: &str, line_no: usize) -> Result<RunManifest, ParseError> {
        let fail = |reason: String| ParseError {
            line: line_no,
            reason,
        };
        let v = json::parse(line).map_err(|e| fail(format!("malformed manifest JSON: {e}")))?;
        let obj = v
            .as_object()
            .ok_or_else(|| fail("manifest record is not a JSON object".to_string()))?;
        let field = |key: &str| -> Result<&json::Value, ParseError> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| fail(format!("manifest record missing `{key}`")))
        };
        let str_field = |key: &str| -> Result<String, ParseError> {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| fail(format!("manifest `{key}` is not a string")))
        };
        let u64_field = |key: &str| -> Result<u64, ParseError> {
            field(key)?
                .as_u64()
                .ok_or_else(|| fail(format!("manifest `{key}` is not a non-negative integer")))
        };
        let kind = str_field("kind")?;
        if kind != MANIFEST_KIND {
            return Err(fail(format!(
                "unknown record kind `{kind}` (expected `{MANIFEST_KIND}`)"
            )));
        }
        let schema = u64_field("schema_version")?;
        if schema != MANIFEST_SCHEMA_VERSION {
            return Err(fail(format!(
                "unsupported manifest schema_version {schema} \
                 (this build supports {MANIFEST_SCHEMA_VERSION})"
            )));
        }
        let id = str_field("id")?;
        let budget = str_field("budget")?;
        if !matches!(budget.as_str(), "none" | "within" | "exceeded" | "crashed") {
            return Err(fail(format!("unknown budget disposition `{budget}`")));
        }
        let mut counters = BTreeMap::new();
        for (name, v) in field("counters")?
            .as_object()
            .ok_or_else(|| fail("manifest `counters` is not an object".to_string()))?
        {
            let v = v
                .as_u64()
                .ok_or_else(|| fail(format!("counter `{name}` is not a non-negative integer")))?;
            counters.insert(name.clone(), v);
        }
        let mut gauges = BTreeMap::new();
        for (name, v) in field("gauges")?
            .as_object()
            .ok_or_else(|| fail("manifest `gauges` is not an object".to_string()))?
        {
            let v = v
                .as_i64()
                .ok_or_else(|| fail(format!("gauge `{name}` is not an integer")))?;
            gauges.insert(name.clone(), v);
        }
        let m = RunManifest {
            source: str_field("source")?,
            run: str_field("run")?,
            git: str_field("git")?,
            seed: u64_field("seed")?,
            config: str_field("config")?,
            clock: str_field("clock")?,
            ticks: u64_field("ticks")?,
            winner_rank: u64_field("winner_rank")?,
            budget,
            trace: str_field("trace")?,
            counters,
            gauges,
        };
        let actual = m.id();
        if actual != id {
            return Err(fail(format!(
                "content-address mismatch: record claims id {id}, body hashes to {actual}"
            )));
        }
        Ok(m)
    }
}

/// The largest timestamp an event carries (0 for unstamped final-value
/// metric events).
fn event_ts(ev: &TraceEvent) -> u64 {
    match ev {
        TraceEvent::SpanOpen { t, .. }
        | TraceEvent::SpanClose { t, .. }
        | TraceEvent::Event { t, .. }
        | TraceEvent::State { t, .. }
        | TraceEvent::Query { t, .. } => *t,
        TraceEvent::Meta { .. }
        | TraceEvent::Counter { .. }
        | TraceEvent::Gauge { .. }
        | TraceEvent::Hist { .. } => 0,
    }
}

/// Resolves a history argument to the archive file: a path ending in
/// `.jsonl` is used as-is, anything else is treated as a directory
/// containing [`HISTORY_FILE`].
pub fn history_path(dir_or_file: &str) -> PathBuf {
    let p = Path::new(dir_or_file);
    if p.extension().is_some_and(|e| e == "jsonl") {
        p.to_path_buf()
    } else {
        p.join(HISTORY_FILE)
    }
}

/// Appends one manifest record to the archive, creating parent
/// directories as needed, and returns the record's content address.
///
/// # Errors
///
/// Returns the underlying I/O error when the archive cannot be written.
pub fn append_manifest(dir_or_file: &str, m: &RunManifest) -> io::Result<String> {
    let path = history_path(dir_or_file);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    let line = m.render();
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(m.id())
}

/// Loads every record of an archive in append order, strictly: any
/// malformed, version-skewed, or hash-mismatched line fails the whole
/// load with its line number.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending 1-based line (line 0 for
/// an unreadable file).
pub fn load_history(dir_or_file: &str) -> Result<Vec<RunManifest>, ParseError> {
    let path = history_path(dir_or_file);
    let text = std::fs::read_to_string(&path).map_err(|e| ParseError {
        line: 0,
        reason: format!("cannot read {}: {e}", path.display()),
    })?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(RunManifest::parse_line(line, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, Clock, MemRecorder, Recorder};

    fn sample_meta() -> ManifestMeta {
        ManifestMeta {
            source: "bench".to_string(),
            run: "grep".to_string(),
            git: "abc123def456".to_string(),
            seed: 42,
            config: "00ff00ff00ff00ff".to_string(),
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        let rec = MemRecorder::new(Clock::steps());
        let sp = rec.span_open("pipeline.symex");
        rec.tick(10);
        rec.counter_add(names::SYMEX_STEPS, 91);
        rec.counter_add(names::PORTFOLIO_WORKERS, 4);
        rec.counter_add("telemetry.stream.dropped", 3);
        rec.gauge_max(names::CALIB_WINNER_RANK, 3);
        rec.gauge_max(names::SYMEX_PEAK_LIVE_STATES, 7);
        rec.span_close(sp);
        rec.finish()
    }

    #[test]
    fn manifest_folds_and_excludes_scheduling_metrics() {
        let m = RunManifest::from_events(&sample_events(), &sample_meta());
        assert_eq!(m.counters.get("symex.steps"), Some(&91));
        assert!(!m.counters.contains_key("portfolio.workers"));
        assert!(!m.counters.contains_key("telemetry.stream.dropped"));
        assert_eq!(m.winner_rank, 3);
        assert_eq!(m.budget, "none");
        assert_eq!(m.clock, "steps");
        assert_eq!(m.ticks, 10);
    }

    #[test]
    fn scheduling_metrics_do_not_perturb_the_trace_hash() {
        let with = RunManifest::from_events(&sample_events(), &sample_meta());
        let without: Vec<TraceEvent> = sample_events()
            .into_iter()
            .filter(
                |ev| !matches!(ev, TraceEvent::Counter { name, .. } if is_scheduling_metric(name)),
            )
            .collect();
        let stripped = RunManifest::from_events(&without, &sample_meta());
        assert_eq!(with.trace, stripped.trace);
        assert_eq!(with.render(), stripped.render());
    }

    #[test]
    fn render_parse_roundtrip_preserves_everything() {
        let m = RunManifest::from_events(&sample_events(), &sample_meta());
        let line = m.render();
        assert!(line.starts_with("{\"kind\":\"statsym.manifest\",\"schema_version\":1,\"id\":\""));
        let back = RunManifest::parse_line(&line, 1).expect("roundtrip");
        assert_eq!(back, m);
        assert_eq!(back.render(), line);
    }

    #[test]
    fn parser_rejects_unknown_schema_major_with_line_number() {
        let m = RunManifest::from_events(&sample_events(), &sample_meta());
        let skewed = m
            .render()
            .replace("\"schema_version\":1", "\"schema_version\":2");
        let err = RunManifest::parse_line(&skewed, 7).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(
            err.reason.contains("unsupported manifest schema_version 2"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn parser_rejects_tampered_content() {
        let m = RunManifest::from_events(&sample_events(), &sample_meta());
        let tampered = m
            .render()
            .replace("\"symex.steps\":91", "\"symex.steps\":92");
        let err = RunManifest::parse_line(&tampered, 3).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(
            err.reason.contains("content-address mismatch"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn parser_rejects_wrong_kind_and_bad_budget() {
        let m = RunManifest::from_events(&sample_events(), &sample_meta());
        let wrong = m.render().replace("statsym.manifest", "statsym.other");
        assert!(RunManifest::parse_line(&wrong, 1)
            .unwrap_err()
            .reason
            .contains("unknown record kind"));
        let bad = m
            .render()
            .replace("\"budget\":\"none\"", "\"budget\":\"maybe\"");
        assert!(RunManifest::parse_line(&bad, 1)
            .unwrap_err()
            .reason
            .contains("unknown budget disposition"));
    }

    #[test]
    fn budget_disposition_follows_the_metric_family() {
        let rec = MemRecorder::new(Clock::steps());
        rec.counter_add(names::BUDGET_EXCEEDED, 1);
        let m = RunManifest::from_events(&rec.finish(), &sample_meta());
        assert_eq!(m.budget, "exceeded");

        let rec = MemRecorder::new(Clock::steps());
        rec.gauge_max("budget.steps_remaining", 50);
        let m = RunManifest::from_events(&rec.finish(), &sample_meta());
        assert_eq!(m.budget, "within");
    }

    #[test]
    fn archive_append_and_load_roundtrip() {
        let dir =
            std::env::temp_dir().join(format!("statsym-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let m = RunManifest::from_events(&sample_events(), &sample_meta());
        let id = append_manifest(&dir_s, &m).expect("append");
        let id2 = append_manifest(&dir_s, &m).expect("append again");
        assert_eq!(id, id2, "identical content has identical address");
        let loaded = load_history(&dir_s).expect("load");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], m);
        assert_eq!(loaded[1], m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_history_reports_the_offending_line() {
        let dir =
            std::env::temp_dir().join(format!("statsym-manifest-badline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let m = RunManifest::from_events(&sample_events(), &sample_meta());
        append_manifest(&dir_s, &m).unwrap();
        let path = history_path(&dir_s);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"statsym.manifest\",\"schema_version\":9}\n");
        std::fs::write(&path, text).unwrap();
        let err = load_history(&dir_s).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("schema_version 9"), "{}", err.reason);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_trace_truncated_marks_crashed() {
        let rec = MemRecorder::new(Clock::steps());
        let _sp = rec.span_open("engine.run");
        rec.counter_add(names::SYMEX_STEPS, 5);
        let mut text = String::new();
        for ev in rec.finish() {
            text.push_str(&ev.to_json_line());
            text.push('\n');
        }
        // Simulate a mid-line crash cut.
        text.push_str("{\"k\":\"ev");
        let m = RunManifest::from_trace_truncated(&text, &sample_meta()).expect("tolerant parse");
        assert_eq!(m.budget, "crashed");
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64_hex(b"a"), format!("{:016x}", fnv64(b"a")));
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
