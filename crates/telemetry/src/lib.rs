//! Structured telemetry for the StatSym pipeline.
//!
//! This crate is std-only (zero dependencies) and single-threaded by
//! design, matching the determinism guarantees in DESIGN.md §5. It
//! provides the three pieces the rest of the workspace instruments
//! against:
//!
//! 1. [`Recorder`] — a span + event sink passed by reference down the
//!    stack, with [`NoopRecorder`] (near-zero overhead), [`MemRecorder`]
//!    (in-memory), and [`FileRecorder`] (streaming JSONL, one event per
//!    line) implementations.
//! 2. [`Metrics`] — named counters, max-gauges, and log₂-bucketed
//!    histograms, dumped deterministically at trace end.
//! 3. [`Clock`] — wall-clock or step-count timestamps; under the
//!    step-count clock, same seed ⇒ byte-identical trace files.
//!
//! [`TraceSummary`] turns a parsed trace back into the Table II/III
//! style per-phase run report.

#![warn(missing_docs)]

mod clock;
pub mod crash;
mod event;
pub mod expose;
pub mod manifest;
mod metrics;
mod recorder;
mod report;
mod stream;

pub use clock::{Clock, ClockMode};
pub use event::{
    lineage_op, parse_trace, parse_trace_strict, parse_trace_truncated, push_json_str,
    query_disposition, render_trace, FieldValue, ParseError, SpanId, TraceEvent,
};
pub use metrics::{bucket_of, Hist, Metrics, HIST_BUCKETS};
pub use recorder::{
    BufferedRecorder, FileRecorder, LineageEvent, MemRecorder, NoopRecorder, QueryEvent, Recorder,
    SharedBuf, Span, TraceBuffer, NOOP, TRACE_VERSION,
};
pub use report::{
    CalibCandidate, HistStat, SpanStat, SummaryBuilder, TraceSummary, REPORT_KIND,
    REPORT_SCHEMA_VERSION,
};
pub use stream::{
    EventSink, FanoutRecorder, FileSink, MemSink, SharedEvents, StreamFrame, StreamSink,
    STREAM_QUEUE_CAPACITY,
};

/// Well-known span and metric names used across the workspace, kept in
/// one place so emitters and report readers cannot drift apart.
pub mod names {
    /// Whole-pipeline analysis span (`StatSym::analyze`).
    pub const PIPELINE_ANALYZE: &str = "pipeline.analyze";
    /// Whole-pipeline guided symbolic execution span.
    pub const PIPELINE_SYMEX: &str = "pipeline.symex";
    /// Log preprocessing phase (corpus build).
    pub const PHASE_LOG_PREPROCESS: &str = "phase.log_preprocess";
    /// Predicate construction phase (Eq. 1 threshold filter).
    pub const PHASE_PREDICATE_CONSTRUCT: &str = "phase.predicate_construct";
    /// Confidence scoring / ranking phase (Eq. 2).
    pub const PHASE_CONFIDENCE_RANK: &str = "phase.confidence_rank";
    /// Predicates constructed and ranked by the analysis stage.
    pub const PIPELINE_PREDICATES_BUILT: &str = "pipeline.predicates_built";
    /// Transition mining phase (Eq. 3).
    pub const PHASE_TRANSITION_MINING: &str = "phase.transition_mining";
    /// Skeleton construction phase.
    pub const PHASE_SKELETON: &str = "phase.skeleton";
    /// Detour discovery phase.
    pub const PHASE_DETOURS: &str = "phase.detours";
    /// Candidate path enumeration phase.
    pub const PHASE_CANDIDATES: &str = "phase.candidates";
    /// One guided symex attempt over one candidate path.
    pub const CANDIDATE_ATTEMPT: &str = "candidate.attempt";
    /// Per-candidate outcome event.
    pub const CANDIDATE_RESULT: &str = "candidate.result";
    /// Candidate-path node coverage event (lineage tracing only): the
    /// guidance hook matched node `node` of the candidate path at `loc`
    /// and conjoined `conj` predicates, with `outcome` `ok`, `conflict`
    /// (state suspended on an infeasible injected predicate), or `kill`
    /// (state died on its hard constraints at injection).
    pub const CANDIDATE_NODE: &str = "candidate.node";
    /// One `Engine::run` invocation.
    pub const ENGINE_RUN: &str = "engine.run";
    /// Engine outcome event.
    pub const ENGINE_OUTCOME: &str = "engine.outcome";

    /// Executor steps.
    pub const SYMEX_STEPS: &str = "symex.steps";
    /// State forks.
    pub const SYMEX_FORKS: &str = "symex.forks";
    /// States pruned as infeasible.
    pub const SYMEX_PRUNED: &str = "symex.pruned";
    /// States suspended (all causes).
    pub const SYMEX_SUSPENDED: &str = "symex.suspended";
    /// Concretizations performed.
    pub const SYMEX_CONCRETIZATIONS: &str = "symex.concretizations";
    /// strlen fan-out forks.
    pub const SYMEX_STRLEN_FORKS: &str = "symex.strlen_forks";
    /// Paths run to completion.
    pub const SYMEX_PATHS_COMPLETED: &str = "symex.paths_completed";
    /// Paths explored (completed + in flight at exit).
    pub const SYMEX_PATHS_EXPLORED: &str = "symex.paths_explored";
    /// Total states ever created.
    pub const SYMEX_STATES_CREATED: &str = "symex.states_created";
    /// Scheduler pops.
    pub const SYMEX_SCHED_PICKS: &str = "symex.sched_picks";
    /// Suspensions due to the τ hop budget.
    pub const SYMEX_SUSPEND_TAU: &str = "symex.suspend.tau";
    /// Suspensions due to an infeasible injected (soft) predicate.
    pub const SYMEX_SUSPEND_PREDICATE: &str = "symex.suspend.predicate_conflict";
    /// Fork children born suspended by guidance classification.
    pub const SYMEX_SUSPEND_BRANCH: &str = "symex.suspend.branch";
    /// States resumed from the suspended pool.
    pub const SYMEX_RESUME: &str = "symex.resume";
    /// States killed outright.
    pub const SYMEX_KILL: &str = "symex.kill";
    /// Faulting paths dropped because the solver budget ran out before a
    /// triggering model could be confirmed.
    pub const SYMEX_UNCONFIRMED: &str = "symex.unconfirmed_faults";
    /// States left suspended when the run ended.
    pub const SYMEX_LEFT_SUSPENDED: &str = "symex.left_suspended";
    /// Peak number of live (schedulable + suspended) states.
    pub const SYMEX_PEAK_LIVE_STATES: &str = "symex.peak_live_states";
    /// Peak estimated memory footprint in bytes.
    pub const SYMEX_PEAK_MEMORY: &str = "symex.peak_memory_bytes";
    /// Distribution of hop counts at suspension (divergence from the
    /// candidate path).
    pub const SYMEX_HOP_DIVERGENCE: &str = "symex.hop_divergence";

    /// Solver queries issued.
    pub const SOLVER_QUERIES: &str = "solver.queries";
    /// SAT verdicts.
    pub const SOLVER_SAT: &str = "solver.sat";
    /// UNSAT verdicts.
    pub const SOLVER_UNSAT: &str = "solver.unsat";
    /// Unknown verdicts (budget exhausted).
    pub const SOLVER_UNKNOWN: &str = "solver.unknown";
    /// Private (per-solver) query cache hits.
    pub const SOLVER_CACHE_HITS: &str = "solver.cache_hits";
    /// Queries answered by the cross-engine shared verdict cache.
    pub const SOLVER_SHARED_HITS: &str = "solver.shared_hits";
    /// Shared-cache consultations that did not answer the query.
    pub const SOLVER_SHARED_MISSES: &str = "solver.shared_misses";
    /// Search-tree nodes visited.
    pub const SOLVER_NODES: &str = "solver.nodes";
    /// HC4 propagation iterations.
    pub const SOLVER_PROPAGATION_ROUNDS: &str = "solver.propagation_rounds";
    /// Backtracks taken in the interval search.
    pub const SOLVER_BACKTRACKS: &str = "solver.backtracks";
    /// Per-query latency histogram (wall-clock traces only).
    pub const SOLVER_QUERY_US: &str = "solver.query_us";
    /// Queries independence slicing split into ≥ 2 components.
    pub const SOLVER_INDEP_QUERIES: &str = "solver.indep.queries";
    /// Total components produced across sliced queries.
    pub const SOLVER_INDEP_COMPONENTS: &str = "solver.indep.components";
    /// Sliced components answered from the private cache.
    pub const SOLVER_INDEP_COMP_HITS: &str = "solver.indep.component_hits";
    /// Unsat-cache hits via cached-unsat-core subset matching.
    pub const SOLVER_UCACHE_SUB_HITS: &str = "solver.ucache.subset_hits";
    /// Unsat-cache hits via verified superset-model reuse.
    pub const SOLVER_UCACHE_SUP_HITS: &str = "solver.ucache.superset_hits";
    /// Superset candidate models that failed verification.
    pub const SOLVER_UCACHE_SUP_REJECTS: &str = "solver.ucache.superset_rejects";
    /// Definitive results published to the unsat cache.
    pub const SOLVER_UCACHE_STORES: &str = "solver.ucache.stores";
    /// Unsat-cache lookups that found no usable entry.
    pub const SOLVER_UCACHE_MISSES: &str = "solver.ucache.misses";
    /// Prefix for per-callsite solver profiles: the engine tags each
    /// query with the site that issued it (`feasibility`, `concretize`,
    /// `fault_model`, `report_model`), and the solver emits
    /// `solver.site.<site>.queries`, `.nodes`, and a `.query_us`
    /// latency histogram under this prefix. `statsym-inspect top`
    /// renders them as the hot-spot profile.
    pub const SOLVER_SITE_PREFIX: &str = "solver.site.";

    /// Span: one portfolio (parallel candidate) execution.
    pub const PORTFOLIO: &str = "portfolio";
    /// Event: one candidate attempt finished inside a portfolio run.
    pub const PORTFOLIO_ATTEMPT: &str = "portfolio.attempt";
    /// Worker threads a portfolio ran with.
    pub const PORTFOLIO_WORKERS: &str = "portfolio.workers";
    /// Attempts cancelled because a better-ranked candidate found first.
    pub const PORTFOLIO_CANCELLED: &str = "portfolio.cancelled";
    /// Shared-cache hits observed across all portfolio workers.
    pub const PORTFOLIO_CACHE_HITS: &str = "portfolio.cache.hits";
    /// Shared-cache misses observed across all portfolio workers.
    pub const PORTFOLIO_CACHE_MISSES: &str = "portfolio.cache.misses";
    /// Shared-cache verdicts published across all portfolio workers.
    pub const PORTFOLIO_CACHE_STORES: &str = "portfolio.cache.stores";
    /// Shared-cache shard-lock contention events.
    pub const PORTFOLIO_CACHE_CONTENTION: &str = "portfolio.cache.contention";
    /// Entries resident in the shared cache at the end of the run.
    pub const PORTFOLIO_CACHE_ENTRIES: &str = "portfolio.cache.entries";
    /// Name prefix applied when an overshoot attempt's worker buffer is
    /// merged into the trace: all of its spans, events, and metrics
    /// land under this prefix so engine counters still reconcile with
    /// the reported (sequential-equivalent) attempts.
    pub const PORTFOLIO_OVERSHOOT_PREFIX: &str = "portfolio.overshoot.";
    /// Latency (µs) from the cancellation token tripping to the worker
    /// observing it (wall-clock traces only).
    pub const PORTFOLIO_CANCEL_LATENCY_US: &str = "portfolio.cancel_latency_us";

    /// Monitor records kept at sampling rate p.
    pub const MONITOR_SAMPLED: &str = "monitor.records_sampled";
    /// Monitor records dropped at sampling rate p.
    pub const MONITOR_DROPPED: &str = "monitor.records_dropped";

    /// Events a live stream sink discarded under backpressure (only
    /// materialized when nonzero, so zero-drop streamed traces stay
    /// byte-identical to unstreamed ones).
    pub const STREAM_DROPPED: &str = crate::stream::STREAM_DROPPED;

    /// Periodic budget progress event (emitted at the engine's
    /// every-8192-steps checkpoint cadence while a resource budget is
    /// set; fields: `steps`, `states`, plus `solver_us` and `wall_ms`
    /// under a wall clock).
    pub const BUDGET_TICK: &str = "budget.tick";
    /// Gauge: executor steps consumed against the budget.
    pub const BUDGET_STEPS_USED: &str = "budget.steps_used";
    /// Gauge: states created against the budget.
    pub const BUDGET_STATES_USED: &str = "budget.states_used";
    /// Gauge: solver wall-µs consumed against the budget (wall-clock
    /// traces only).
    pub const BUDGET_SOLVER_US_USED: &str = "budget.solver_us_used";
    /// Gauge: wall-clock ms consumed against the budget (wall-clock
    /// traces only).
    pub const BUDGET_WALL_MS_USED: &str = "budget.wall_ms_used";
    /// Counter: runs that ended because a resource budget tripped.
    pub const BUDGET_EXCEEDED: &str = "budget.exceeded";

    /// Prefix for source-level cost attribution counters: with
    /// `EngineConfig.attribution` on, both executors bill every step,
    /// fork, suspension, and solver query to the MiniC source line that
    /// caused it and emit `attr.<function>:<line>.<dim>` counters, where
    /// `<dim>` is one of `steps`, `forks`, `suspends`, `queries`,
    /// `nodes`, or (wall-clock traces only) `us`. Counters fold by name
    /// across worker-buffer merges, so totals are byte-identical at any
    /// portfolio/state-worker count. `statsym-inspect hotspots` renders
    /// them as the per-line cost table.
    pub const ATTR_PREFIX: &str = "attr.";
    /// Attribution dimension suffixes, in the column order viewers and
    /// the JSON report print them.
    pub const ATTR_DIMS: [&str; 6] = ["steps", "forks", "suspends", "queries", "nodes", "us"];
    /// Event: one per-candidate ranking-calibration record (fields:
    /// `rank`, `score_milli`, `path_len`, `steps`, `forks`, `snodes`,
    /// `found`, plus `solver_us` under a wall clock).
    pub const CALIB_CANDIDATE: &str = "calib.candidate";
    /// Gauge: rank of the winning candidate (max-folded across runs in
    /// one trace).
    pub const CALIB_WINNER_RANK: &str = "calib.winner_rank";
    /// Gauge: Spearman rank-vs-cost correlation in per-mille (−1000 ..
    /// 1000) between predicted candidate rank and actual attempt cost;
    /// only emitted for runs with ≥ 2 attempts. Max-folded across runs;
    /// `statsym-inspect calib` recomputes per-run values from the
    /// `calib.candidate` events when gating.
    pub const CALIB_RANK_COST_CORR: &str = "calib.rank_cost_corr_milli";
}
