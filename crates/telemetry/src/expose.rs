//! Metrics exposition: a Prometheus-text renderer for the metrics
//! registry, served over the same TCP/Unix framing the live stream
//! uses (hello frame, payload, end frame).
//!
//! A run started with `--expose <addr>` binds an [`Exposer`]; the
//! [`FanoutRecorder`](crate::FanoutRecorder) refreshes its snapshot at
//! span-close/lineage cadence, and every accepted connection receives
//! the current snapshot bracketed by a `hello` and an `end` frame —
//! `statsym-inspect scrape` is the matching client. Serving is
//! entirely off the recording thread: a scrape can never stall the
//! engine, and a slow scraper only delays its own connection.

use crate::metrics::{Hist, Metrics};
use crate::recorder::TRACE_VERSION;
use crate::stream::StreamFrame;
use std::io::{self, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sanitizes a metric name into the Prometheus identifier charset:
/// every character outside `[a-zA-Z0-9_]` becomes `_` (`:` included —
/// it is reserved for recording rules), and the `statsym_` prefix
/// guarantees no leading digit.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("statsym_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Upper bound of log₂ bucket `b` as a Prometheus `le` label: bucket 0
/// holds exactly zero, bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`.
fn bucket_le(b: u32) -> String {
    if b == 0 {
        "0".to_string()
    } else if b >= 64 {
        u64::MAX.to_string()
    } else {
        ((1u64 << b) - 1).to_string()
    }
}

fn push_hist(out: &mut String, name: &str, h: &Hist) {
    let n = prometheus_name(name);
    out.push_str(&format!("# TYPE {n} histogram\n"));
    let mut cum = 0u64;
    for (b, &count) in h.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        cum += count;
        out.push_str(&format!(
            "{n}_bucket{{le=\"{}\"}} {cum}\n",
            bucket_le(b as u32)
        ));
    }
    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{n}_sum {}\n", h.sum));
    out.push_str(&format!("{n}_count {}\n", h.count));
}

/// Renders a metrics registry snapshot in the Prometheus text
/// exposition format: counters, then gauges, then histograms, each in
/// sorted name order (the registry's own dump order), so identical
/// registries render byte-identically.
pub fn render_prometheus(m: &Metrics) -> String {
    let mut out = String::with_capacity(512);
    for (name, v) in m.dump_counters() {
        let n = prometheus_name(&name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in m.dump_gauges() {
        let n = prometheus_name(&name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in m.dump_hists() {
        push_hist(&mut out, &name, &h);
    }
    out
}

/// Listener kinds behind one accept loop.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

/// A background exposition server: binds a TCP address (`host:port`) or
/// a Unix socket path (contains `/`), and answers every connection with
/// the most recent snapshot, framed hello → payload → end.
pub struct Exposer {
    snapshot: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    addr: String,
}

impl std::fmt::Debug for Exposer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exposer").finish_non_exhaustive()
    }
}

impl Exposer {
    /// Binds the exposition endpoint and starts the serving thread.
    /// `run` names the run in the hello frame.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, bad path, …).
    pub fn bind(addr: &str, run: &str) -> io::Result<Exposer> {
        let mut bound = addr.to_string();
        let listener = {
            #[cfg(unix)]
            {
                if addr.contains('/') {
                    // A stale socket file from a crashed run blocks the
                    // bind; remove it first (same policy as `live`).
                    let _ = std::fs::remove_file(addr);
                    let l = std::os::unix::net::UnixListener::bind(addr)?;
                    l.set_nonblocking(true)?;
                    Listener::Unix(l)
                } else {
                    let l = TcpListener::bind(addr)?;
                    bound = l.local_addr()?.to_string();
                    l.set_nonblocking(true)?;
                    Listener::Tcp(l)
                }
            }
            #[cfg(not(unix))]
            {
                let l = TcpListener::bind(addr)?;
                bound = l.local_addr()?.to_string();
                l.set_nonblocking(true)?;
                Listener::Tcp(l)
            }
        };
        let snapshot = Arc::new(Mutex::new(String::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let hello = StreamFrame::Hello {
            version: TRACE_VERSION,
            run: run.to_string(),
        }
        .to_json_line();
        let handle = {
            let snapshot = Arc::clone(&snapshot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve(listener, &hello, &snapshot, &stop))
        };
        Ok(Exposer {
            snapshot,
            stop,
            handle: Some(handle),
            addr: bound,
        })
    }

    /// The address actually bound — for TCP this resolves port 0 to the
    /// concrete port the OS assigned.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Replaces the served snapshot.
    pub fn update(&self, text: String) {
        if let Ok(mut s) = self.snapshot.lock() {
            *s = text;
        }
    }

    /// Stops the serving thread and closes the listener.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Exposer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(listener: Listener, hello: &str, snapshot: &Mutex<String>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        let conn: Option<Box<dyn Write>> = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(Box::new(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Some(Box::new(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
        };
        match conn {
            Some(mut w) => {
                let body = snapshot.lock().map(|s| s.clone()).unwrap_or_default();
                // A dying scraper mid-write only fails its own scrape.
                let _ = write_scrape(&mut w, hello, &body);
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn write_scrape(w: &mut dyn Write, hello: &str, body: &str) -> io::Result<()> {
    w.write_all(hello.as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(body.as_bytes())?;
    if !body.is_empty() && !body.ends_with('\n') {
        w.write_all(b"\n")?;
    }
    let end = StreamFrame::End { dropped: 0 }.to_json_line();
    w.write_all(end.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn prometheus_render_is_sorted_and_sanitized() {
        let m = Metrics::new();
        m.counter_add("symex.steps", 91);
        m.counter_add("attr.main:3.steps", 4);
        m.gauge_max("calib.winner_rank", 3);
        m.observe("solver.query_us", 3);
        m.observe("solver.query_us", 1000);
        let text = render_prometheus(&m);
        let steps = text.find("statsym_symex_steps 91").expect("counter line");
        let attr = text.find("statsym_attr_main_3_steps 4").expect("sanitized");
        assert!(attr < steps, "counters sorted by name:\n{text}");
        assert!(text.contains("# TYPE statsym_symex_steps counter"));
        assert!(text.contains("# TYPE statsym_calib_winner_rank gauge"));
        assert!(text.contains("statsym_calib_winner_rank 3"));
        assert!(text.contains("# TYPE statsym_solver_query_us histogram"));
        // 3 lands in bucket 2 (le 3), 1000 in bucket 10 (le 1023);
        // bucket counts are cumulative.
        assert!(text.contains("statsym_solver_query_us_bucket{le=\"3\"} 1"));
        assert!(text.contains("statsym_solver_query_us_bucket{le=\"1023\"} 2"));
        assert!(text.contains("statsym_solver_query_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("statsym_solver_query_us_sum 1003"));
        assert!(text.contains("statsym_solver_query_us_count 2"));
    }

    #[test]
    fn identical_registries_render_identically() {
        let a = Metrics::new();
        let b = Metrics::new();
        for m in [&a, &b] {
            m.counter_add("x", 1);
            m.gauge_max("y", -2);
        }
        assert_eq!(render_prometheus(&a), render_prometheus(&b));
    }

    #[test]
    fn exposer_serves_hello_snapshot_end_over_tcp() {
        let exp = Exposer::bind("127.0.0.1:0", "unit-test").expect("bind");
        let addr = exp.addr().to_string();
        exp.update("statsym_x 1\n".to_string());

        let mut lines = Vec::new();
        for _ in 0..50 {
            match std::net::TcpStream::connect(&addr) {
                Ok(s) => {
                    let r = BufReader::new(s);
                    lines = r.lines().map_while(Result::ok).collect();
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        exp.shutdown();
        assert!(lines.len() >= 3, "{lines:?}");
        match StreamFrame::parse(&lines[0]) {
            Some(StreamFrame::Hello { run, .. }) => assert_eq!(run, "unit-test"),
            other => panic!("expected hello frame, got {other:?} in {lines:?}"),
        }
        assert_eq!(lines[1], "statsym_x 1");
        match StreamFrame::parse(lines.last().unwrap()) {
            Some(StreamFrame::End { dropped }) => assert_eq!(dropped, 0),
            other => panic!("expected end frame, got {other:?} in {lines:?}"),
        }
    }
}
