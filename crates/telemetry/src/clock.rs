//! Trace timestamping: wall-clock or deterministic step-count time.
//!
//! Every trace event carries a `t` field in *ticks*. A [`Clock`] decides
//! what a tick means:
//!
//! * [`Clock::wall`] — microseconds since the clock was created. Traces
//!   reflect real latency but differ between runs.
//! * [`Clock::steps`] — a logical counter advanced by the instrumented
//!   code itself (the symbolic executor reports its instruction count).
//!   Two runs with the same seed produce byte-identical traces.
//!
//! Deterministic mode also disables wall-clock-derived metric
//! observations (see `Recorder::observe_wall`), so nothing
//! non-reproducible leaks into the trace.

use std::cell::Cell;
use std::time::Instant;

/// What one trace tick means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Ticks are microseconds of wall-clock time since clock creation.
    Wall,
    /// Ticks are a logical counter advanced via [`Clock::advance`]
    /// (the executor's step count); fully deterministic.
    Steps,
}

/// The time source stamped onto every trace event.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    origin: Instant,
    logical: Cell<u64>,
}

impl Clock {
    /// A wall-clock time source (microsecond ticks).
    pub fn wall() -> Clock {
        Clock {
            mode: ClockMode::Wall,
            origin: Instant::now(),
            logical: Cell::new(0),
        }
    }

    /// A deterministic step-count time source. Starts at tick 0 and only
    /// moves when [`Clock::advance`] is called.
    pub fn steps() -> Clock {
        Clock {
            mode: ClockMode::Steps,
            origin: Instant::now(),
            logical: Cell::new(0),
        }
    }

    /// A clock of the given mode (worker threads use this to match the
    /// mode of the recorder their buffers will be merged into).
    pub fn with_mode(mode: ClockMode) -> Clock {
        match mode {
            ClockMode::Wall => Clock::wall(),
            ClockMode::Steps => Clock::steps(),
        }
    }

    /// The clock's mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// True when ticks are fully reproducible (step-count mode).
    pub fn is_deterministic(&self) -> bool {
        self.mode == ClockMode::Steps
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        match self.mode {
            ClockMode::Wall => self.origin.elapsed().as_micros() as u64,
            ClockMode::Steps => self.logical.get(),
        }
    }

    /// Advances the logical clock by `delta` ticks (step-count mode
    /// only; a no-op for wall clocks).
    pub fn advance(&self, delta: u64) {
        if self.mode == ClockMode::Steps {
            self.logical.set(self.logical.get().saturating_add(delta));
        }
    }

    /// The label written into the trace's meta event.
    pub fn label(&self) -> &'static str {
        match self.mode {
            ClockMode::Wall => "wall_us",
            ClockMode::Steps => "steps",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_clock_is_manual_and_monotone() {
        let c = Clock::steps();
        assert_eq!(c.now(), 0);
        c.advance(5);
        c.advance(3);
        assert_eq!(c.now(), 8);
        assert!(c.is_deterministic());
        assert_eq!(c.label(), "steps");
    }

    #[test]
    fn wall_clock_ignores_advance() {
        let c = Clock::wall();
        let before = c.now();
        c.advance(1_000_000);
        assert!(c.now() < before + 1_000_000);
        assert!(!c.is_deterministic());
        assert_eq!(c.mode(), ClockMode::Wall);
    }
}
