//! The [`Recorder`] trait and its three implementations.
//!
//! A recorder is passed *by reference* down the call stack — no
//! globals, no thread-locals — so the single-threaded determinism
//! guarantees of the engine (DESIGN.md §5) are untouched. All methods
//! take `&self`; implementations use interior mutability.
//!
//! * [`NoopRecorder`] — a ZST that discards everything; `enabled()`
//!   returns `false` so callers can skip field construction entirely.
//! * [`MemRecorder`] — buffers events in memory; `finish()` hands back
//!   the full event list (with the metrics snapshot appended).
//! * [`FileRecorder`] — streams canonical JSONL, one event per line,
//!   to any `Write` sink (usually a file opened via `create`).

use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::clock::{Clock, ClockMode};
use crate::event::{FieldValue, SpanId, TraceEvent};
use crate::metrics::{Hist, Metrics};

/// Trace format version stamped into the meta event.
pub const TRACE_VERSION: u64 = 1;

/// One state-lineage transition handed to [`Recorder::state`]. The
/// recorder stamps the clock tick and (under a deterministic clock)
/// zeroes `solver_us`, exactly as [`Recorder::observe_wall`] suppresses
/// wall-clock values — so step-clock traces stay byte-reproducible.
#[derive(Debug, Clone, Copy)]
pub struct LineageEvent<'a> {
    /// Operation, one of [`crate::lineage_op::ALL`].
    pub op: &'a str,
    /// Trace-global state id, from [`Recorder::alloc_state_id`].
    pub id: u64,
    /// Parent state id (0 only for roots).
    pub parent: u64,
    /// SIR location (`function:bN`) of the transition.
    pub loc: &'a str,
    /// Hops from the candidate path at emission.
    pub hops: u32,
    /// Path depth at emission.
    pub depth: u32,
    /// Executor steps attributed since the last lineage event.
    pub steps: u64,
    /// Solver search-tree nodes attributed since the last lineage event.
    pub snodes: u64,
    /// Solver wall-µs attributed since the last lineage event.
    pub solver_us: u64,
}

/// Provenance of one solver query, handed to [`Recorder::query`] by the
/// solver dispatch layer. The recorder stamps the clock tick and (under
/// a deterministic clock) zeroes `us`, exactly as it zeroes
/// [`LineageEvent::solver_us`] — so step-clock traces stay
/// byte-reproducible.
#[derive(Debug, Clone, Copy)]
pub struct QueryEvent<'a> {
    /// Engine/segment-local id of the state that issued the query.
    pub sid: u64,
    /// Source location (`function:line`) of the triggering instruction.
    pub loc: &'a str,
    /// Candidate rank of the enclosing attempt.
    pub rank: u32,
    /// Solver callsite (`feasibility`, `fault_model`, …).
    pub site: &'a str,
    /// Verdict, one of [`crate::query_disposition::VERDICTS`].
    pub verdict: &'a str,
    /// Cache disposition, one of [`crate::query_disposition::ALL`].
    pub cache: &'a str,
    /// Solver search-tree nodes this query visited.
    pub nodes: u64,
    /// Wall-clock µs this query took.
    pub us: u64,
}

/// The instrumentation sink threaded through the pipeline.
pub trait Recorder {
    /// False for the no-op recorder: callers may skip building event
    /// fields altogether when this is false.
    fn enabled(&self) -> bool;

    /// Opens a span; the returned id must be passed to
    /// [`Recorder::span_close`].
    fn span_open(&self, name: &str) -> SpanId;

    /// Closes a span previously opened with [`Recorder::span_open`].
    fn span_close(&self, id: SpanId);

    /// Emits a point event with structured fields.
    fn event(&self, name: &str, fields: &[(&str, FieldValue)]);

    /// Adds `delta` to a monotone counter.
    fn counter_add(&self, name: &str, delta: u64);

    /// Raises a gauge to `v` if larger (peak tracking).
    fn gauge_max(&self, name: &str, v: i64);

    /// Records a value into a log-scale histogram.
    fn observe(&self, name: &str, v: u64);

    /// Records a wall-clock duration (µs) into a histogram — but only
    /// when the trace clock is non-deterministic. Under a step-count
    /// clock this is a no-op, keeping traces byte-reproducible.
    fn observe_wall(&self, name: &str, d: Duration);

    /// Advances the deterministic clock by `delta` logical ticks (the
    /// executor reports its step count here). No-op for wall clocks.
    fn tick(&self, delta: u64);

    /// Allocates the next trace-global state id for lineage events
    /// (unique, increasing, starting at 1). Returns 0 for recorders
    /// without a sink — emitters should skip lineage work entirely when
    /// [`Recorder::enabled`] is false.
    fn alloc_state_id(&self) -> u64 {
        0
    }

    /// Emits a state-lineage event. [`FileRecorder`] additionally
    /// flushes its writer so a growing trace is tailable mid-run
    /// (`statsym-inspect watch`). Default no-op.
    fn state(&self, ev: &LineageEvent<'_>) {
        let _ = ev;
    }

    /// Emits a solver-query provenance event. Unlike [`Recorder::state`]
    /// no writer flush is hinted — queries are far too frequent for
    /// per-event flushing. Default no-op.
    fn query(&self, ev: &QueryEvent<'_>) {
        let _ = ev;
    }

    /// The clock mode this recorder stamps events with. Portfolio
    /// workers use this to build matching [`BufferedRecorder`]s.
    fn clock_mode(&self) -> ClockMode {
        ClockMode::Steps
    }

    /// Splices a worker's [`TraceBuffer`] into this trace: span ids are
    /// remapped past the ids already issued, root spans are re-parented
    /// under the currently open span, timestamps are offset to "now",
    /// and the buffer's metrics fold into this recorder's registry.
    /// With `prefix`, every span/event/metric name is prefixed — how
    /// overshoot work is kept out of the engine's own counters.
    /// No-op for recorders without a sink.
    fn merge_buffer(&self, buf: &TraceBuffer, prefix: Option<&str>) {
        let _ = (buf, prefix);
    }
}

/// The recorder that records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

/// A shared `&'static` no-op recorder for default arguments.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn span_open(&self, _name: &str) -> SpanId {
        SpanId::NONE
    }

    fn span_close(&self, _id: SpanId) {}

    fn event(&self, _name: &str, _fields: &[(&str, FieldValue)]) {}

    fn counter_add(&self, _name: &str, _delta: u64) {}

    fn gauge_max(&self, _name: &str, _v: i64) {}

    fn observe(&self, _name: &str, _v: u64) {}

    fn observe_wall(&self, _name: &str, _d: Duration) {}

    fn tick(&self, _delta: u64) {}
}

/// State shared by the real recorders: clock, span bookkeeping, and
/// the metrics registry.
#[derive(Debug)]
pub(crate) struct SinkCore {
    pub(crate) clock: Clock,
    pub(crate) next_span: Cell<u64>,
    pub(crate) next_state: Cell<u64>,
    pub(crate) stack: RefCell<Vec<u64>>,
    pub(crate) metrics: Metrics,
}

impl SinkCore {
    pub(crate) fn new(clock: Clock) -> SinkCore {
        SinkCore {
            clock,
            next_span: Cell::new(1),
            next_state: Cell::new(1),
            stack: RefCell::new(Vec::new()),
            metrics: Metrics::new(),
        }
    }

    pub(crate) fn alloc_state(&self) -> u64 {
        let id = self.next_state.get();
        self.next_state.set(id + 1);
        id
    }

    pub(crate) fn state_event(&self, ev: &LineageEvent<'_>) -> TraceEvent {
        TraceEvent::State {
            t: self.clock.now(),
            op: ev.op.to_string(),
            id: ev.id,
            par: ev.parent,
            loc: ev.loc.to_string(),
            hops: ev.hops as u64,
            depth: ev.depth as u64,
            steps: ev.steps,
            snodes: ev.snodes,
            // Wall-measured solver time cannot round-trip under the
            // deterministic step clock; zero it like observe_wall does.
            sus: if self.clock.is_deterministic() {
                0
            } else {
                ev.solver_us
            },
        }
    }

    pub(crate) fn query_event(&self, ev: &QueryEvent<'_>) -> TraceEvent {
        TraceEvent::Query {
            t: self.clock.now(),
            sid: ev.sid,
            loc: ev.loc.to_string(),
            rank: ev.rank as u64,
            site: ev.site.to_string(),
            verdict: ev.verdict.to_string(),
            cache: ev.cache.to_string(),
            nodes: ev.nodes,
            // Wall-measured query time cannot round-trip under the
            // deterministic step clock; zero it like observe_wall does.
            us: if self.clock.is_deterministic() {
                0
            } else {
                ev.us
            },
        }
    }

    pub(crate) fn meta_event(&self) -> TraceEvent {
        TraceEvent::Meta {
            clock: self.clock.label().to_string(),
            version: TRACE_VERSION,
        }
    }

    pub(crate) fn open(&self, name: &str) -> (SpanId, TraceEvent) {
        let id = self.next_span.get();
        self.next_span.set(id + 1);
        let parent = self.stack.borrow().last().copied().unwrap_or(0);
        self.stack.borrow_mut().push(id);
        let ev = TraceEvent::SpanOpen {
            t: self.clock.now(),
            id,
            parent,
            name: name.to_string(),
        };
        (SpanId(id), ev)
    }

    pub(crate) fn close(&self, id: SpanId) -> Option<TraceEvent> {
        if id == SpanId::NONE {
            return None;
        }
        // Tolerate out-of-order closes: drop the id wherever it sits so
        // one missed close cannot corrupt the whole parent chain.
        let mut stack = self.stack.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&s| s == id.0) {
            stack.truncate(pos);
        }
        Some(TraceEvent::SpanClose {
            t: self.clock.now(),
            id: id.0,
        })
    }

    pub(crate) fn point(&self, name: &str, fields: &[(&str, FieldValue)]) -> TraceEvent {
        TraceEvent::Event {
            t: self.clock.now(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// The merge half of the concurrent-recording protocol (DESIGN.md
    /// §10). Rewrites a worker buffer into this sink's id/parent/time
    /// frame and folds its metrics in; returns the rewritten events for
    /// the caller to append to its output.
    pub(crate) fn splice(&self, buf: &TraceBuffer, prefix: Option<&str>) -> Vec<TraceEvent> {
        let offset = self.clock.now();
        // Worker ids started at 1; remap id x -> base + (x - 1) so the
        // merged trace never reuses an id this sink already issued.
        let base = self.next_span.get();
        self.next_span.set(base + buf.spans_used);
        // State ids remap exactly like span ids: past everything this
        // sink already issued, in the buffer's own order — so a
        // rank-ordered merge reproduces the sequential id sequence.
        let state_base = self.next_state.get();
        self.next_state.set(state_base + buf.states_used);
        let adopt = self.stack.borrow().last().copied().unwrap_or(0);
        let remap = |id: u64| base + (id - 1);
        let remap_state = |id: u64| if id == 0 { 0 } else { state_base + (id - 1) };
        let rename = |name: &str| match prefix {
            Some(p) => format!("{p}{name}"),
            None => name.to_string(),
        };

        let mut out = Vec::with_capacity(buf.events.len());
        for ev in &buf.events {
            out.push(match ev {
                TraceEvent::SpanOpen {
                    t,
                    id,
                    parent,
                    name,
                } => TraceEvent::SpanOpen {
                    t: t + offset,
                    id: remap(*id),
                    // Worker root spans become children of whatever
                    // span is open here (the portfolio span).
                    parent: if *parent == 0 { adopt } else { remap(*parent) },
                    name: rename(name),
                },
                TraceEvent::SpanClose { t, id } => TraceEvent::SpanClose {
                    t: t + offset,
                    id: remap(*id),
                },
                TraceEvent::Event { t, name, fields } => TraceEvent::Event {
                    t: t + offset,
                    name: rename(name),
                    fields: fields.clone(),
                },
                // Lineage events have no name, so the overshoot prefix
                // does not apply; attribution to an attempt comes from
                // stream position inside its candidate.attempt span.
                TraceEvent::State {
                    t,
                    op,
                    id,
                    par,
                    loc,
                    hops,
                    depth,
                    steps,
                    snodes,
                    sus,
                } => TraceEvent::State {
                    t: t + offset,
                    op: op.clone(),
                    id: remap_state(*id),
                    par: remap_state(*par),
                    loc: loc.clone(),
                    hops: *hops,
                    depth: *depth,
                    steps: *steps,
                    snodes: *snodes,
                    sus: *sus,
                },
                // Query provenance: only the timestamp is rewritten.
                // `sid` is deliberately NOT remapped — it is engine/
                // segment-local by design (queries outnumber lineage
                // events by orders of magnitude, and a dense global
                // remap would force every worker query through the
                // state-id allocator). Names are not renamed either:
                // attribution to an overshoot attempt comes from stream
                // position inside its prefixed span, like lineage.
                TraceEvent::Query {
                    t,
                    sid,
                    loc,
                    rank,
                    site,
                    verdict,
                    cache,
                    nodes,
                    us,
                } => TraceEvent::Query {
                    t: t + offset,
                    sid: *sid,
                    loc: loc.clone(),
                    rank: *rank,
                    site: site.clone(),
                    verdict: verdict.clone(),
                    cache: cache.clone(),
                    nodes: *nodes,
                    us: *us,
                },
                // Buffers carry metrics out of band, never inline.
                other => other.clone(),
            });
        }
        // Rank-ordered merge: the next buffer (or main-thread event)
        // lands after everything this worker recorded.
        self.clock.advance(buf.end_tick);

        for (name, v) in &buf.counters {
            self.metrics.counter_add(&rename(name), *v);
        }
        for (name, v) in &buf.gauges {
            self.metrics.gauge_max(&rename(name), *v);
        }
        for (name, h) in &buf.hists {
            self.metrics.merge_hist(&rename(name), h);
        }
        out
    }
}

/// The finished contents of a [`BufferedRecorder`]: plain data, `Send`,
/// carried from a worker thread back to the main thread for merging.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    /// Span/event stream in recording order, ids local to this buffer
    /// (starting at 1), timestamps relative to the buffer's own clock.
    pub events: Vec<TraceEvent>,
    /// Number of span ids the buffer issued.
    pub spans_used: u64,
    /// Number of state ids the buffer issued for lineage events.
    pub states_used: u64,
    /// The buffer clock's final tick (total logical time covered).
    pub end_tick: u64,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Final histograms, sorted by name.
    pub hists: Vec<(String, Hist)>,
}

/// A private per-worker recorder for concurrent tracing (DESIGN.md
/// §10).
///
/// Each portfolio worker owns one `BufferedRecorder` outright — no
/// locks, no sharing — records into it exactly as the sequential loop
/// records into the main sink, then ships the resulting
/// [`TraceBuffer`] (plain `Send` data) back for a deterministic
/// rank-ordered [`Recorder::merge_buffer`] on the main thread.
///
/// Unlike [`MemRecorder`] it emits no meta event (the merged trace
/// already has one) and its span ids / timestamps are buffer-local
/// until [`SinkCore::splice`] rewrites them.
#[derive(Debug)]
pub struct BufferedRecorder {
    core: SinkCore,
    events: RefCell<Vec<TraceEvent>>,
}

impl BufferedRecorder {
    /// A fresh buffer stamping events with a clock of the given mode
    /// (match the destination recorder via [`Recorder::clock_mode`]).
    pub fn new(mode: ClockMode) -> BufferedRecorder {
        BufferedRecorder {
            core: SinkCore::new(Clock::with_mode(mode)),
            events: RefCell::new(Vec::new()),
        }
    }

    /// Read-only access to the metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Consumes the recorder into its mergeable buffer.
    pub fn finish(self) -> TraceBuffer {
        TraceBuffer {
            events: self.events.into_inner(),
            spans_used: self.core.next_span.get() - 1,
            states_used: self.core.next_state.get() - 1,
            end_tick: self.core.clock.now(),
            counters: self.core.metrics.dump_counters(),
            gauges: self.core.metrics.dump_gauges(),
            hists: self.core.metrics.dump_hists(),
        }
    }
}

impl Recorder for BufferedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_open(&self, name: &str) -> SpanId {
        let (id, ev) = self.core.open(name);
        self.events.borrow_mut().push(ev);
        id
    }

    fn span_close(&self, id: SpanId) {
        if let Some(ev) = self.core.close(id) {
            self.events.borrow_mut().push(ev);
        }
    }

    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let ev = self.core.point(name, fields);
        self.events.borrow_mut().push(ev);
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.core.metrics.counter_add(name, delta);
    }

    fn gauge_max(&self, name: &str, v: i64) {
        self.core.metrics.gauge_max(name, v);
    }

    fn observe(&self, name: &str, v: u64) {
        self.core.metrics.observe(name, v);
    }

    fn observe_wall(&self, name: &str, d: Duration) {
        if !self.core.clock.is_deterministic() {
            self.core.metrics.observe(name, d.as_micros() as u64);
        }
    }

    fn tick(&self, delta: u64) {
        self.core.clock.advance(delta);
    }

    fn alloc_state_id(&self) -> u64 {
        self.core.alloc_state()
    }

    fn state(&self, ev: &LineageEvent<'_>) {
        let ev = self.core.state_event(ev);
        self.events.borrow_mut().push(ev);
    }

    fn query(&self, ev: &QueryEvent<'_>) {
        let ev = self.core.query_event(ev);
        self.events.borrow_mut().push(ev);
    }

    fn clock_mode(&self) -> ClockMode {
        self.core.clock.mode()
    }

    fn merge_buffer(&self, buf: &TraceBuffer, prefix: Option<&str>) {
        let spliced = self.core.splice(buf, prefix);
        self.events.borrow_mut().extend(spliced);
    }
}

/// A recorder that buffers the whole trace in memory.
#[derive(Debug)]
pub struct MemRecorder {
    core: SinkCore,
    events: RefCell<Vec<TraceEvent>>,
}

impl MemRecorder {
    /// A memory recorder stamping events with the given clock. The
    /// trace meta event is emitted immediately.
    pub fn new(clock: Clock) -> MemRecorder {
        let core = SinkCore::new(clock);
        let events = RefCell::new(vec![core.meta_event()]);
        MemRecorder { core, events }
    }

    /// Read-only access to the metrics registry (for reconciliation
    /// tests and the run report).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// The events captured so far (without the metrics snapshot).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// Consumes the recorder, appending the final metrics snapshot to
    /// the event list.
    pub fn finish(self) -> Vec<TraceEvent> {
        let mut events = self.events.into_inner();
        events.extend(self.core.metrics.snapshot());
        events
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_open(&self, name: &str) -> SpanId {
        let (id, ev) = self.core.open(name);
        self.events.borrow_mut().push(ev);
        id
    }

    fn span_close(&self, id: SpanId) {
        if let Some(ev) = self.core.close(id) {
            self.events.borrow_mut().push(ev);
        }
    }

    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let ev = self.core.point(name, fields);
        self.events.borrow_mut().push(ev);
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.core.metrics.counter_add(name, delta);
    }

    fn gauge_max(&self, name: &str, v: i64) {
        self.core.metrics.gauge_max(name, v);
    }

    fn observe(&self, name: &str, v: u64) {
        self.core.metrics.observe(name, v);
    }

    fn observe_wall(&self, name: &str, d: Duration) {
        if !self.core.clock.is_deterministic() {
            self.core.metrics.observe(name, d.as_micros() as u64);
        }
    }

    fn tick(&self, delta: u64) {
        self.core.clock.advance(delta);
    }

    fn alloc_state_id(&self) -> u64 {
        self.core.alloc_state()
    }

    fn state(&self, ev: &LineageEvent<'_>) {
        let ev = self.core.state_event(ev);
        self.events.borrow_mut().push(ev);
    }

    fn query(&self, ev: &QueryEvent<'_>) {
        let ev = self.core.query_event(ev);
        self.events.borrow_mut().push(ev);
    }

    fn clock_mode(&self) -> ClockMode {
        self.core.clock.mode()
    }

    fn merge_buffer(&self, buf: &TraceBuffer, prefix: Option<&str>) {
        let spliced = self.core.splice(buf, prefix);
        self.events.borrow_mut().extend(spliced);
    }
}

/// A recorder that streams canonical JSONL to a `Write` sink.
///
/// Since the fan-out layer landed this is a single-sink
/// [`FanoutRecorder`](crate::FanoutRecorder) over a
/// [`FileSink`](crate::FileSink) — kept as a named type because it is
/// the canonical "trace to a file" recorder everywhere. Writes are
/// best-effort while the run is in flight; the first I/O error is
/// remembered and surfaced by [`FileRecorder::finish`].
#[derive(Debug)]
pub struct FileRecorder {
    inner: crate::stream::FanoutRecorder,
}

impl FileRecorder {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` failure.
    pub fn create<P: AsRef<Path>>(path: P, clock: Clock) -> io::Result<FileRecorder> {
        let file = File::create(path)?;
        Ok(FileRecorder::from_writer(Box::new(file), clock))
    }

    /// Wraps an arbitrary writer (used by tests to trace into memory).
    pub fn from_writer(w: Box<dyn Write>, clock: Clock) -> FileRecorder {
        let inner = crate::stream::FanoutRecorder::new(clock)
            .with_sink(Box::new(crate::stream::FileSink::from_writer(w)));
        FileRecorder { inner }
    }

    /// Flushes the metrics snapshot and the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit at any point during the trace.
    pub fn finish(self) -> io::Result<()> {
        self.inner.finish()
    }
}

impl Recorder for FileRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_open(&self, name: &str) -> SpanId {
        self.inner.span_open(name)
    }

    fn span_close(&self, id: SpanId) {
        self.inner.span_close(id);
    }

    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.inner.event(name, fields);
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.inner.counter_add(name, delta);
    }

    fn gauge_max(&self, name: &str, v: i64) {
        self.inner.gauge_max(name, v);
    }

    fn observe(&self, name: &str, v: u64) {
        self.inner.observe(name, v);
    }

    fn observe_wall(&self, name: &str, d: Duration) {
        self.inner.observe_wall(name, d);
    }

    fn tick(&self, delta: u64) {
        self.inner.tick(delta);
    }

    fn alloc_state_id(&self) -> u64 {
        self.inner.alloc_state_id()
    }

    fn state(&self, ev: &LineageEvent<'_>) {
        self.inner.state(ev);
    }

    fn query(&self, ev: &QueryEvent<'_>) {
        self.inner.query(ev);
    }

    fn clock_mode(&self) -> ClockMode {
        self.inner.clock_mode()
    }

    fn merge_buffer(&self, buf: &TraceBuffer, prefix: Option<&str>) {
        self.inner.merge_buffer(buf, prefix);
    }
}

/// An RAII-free span helper that also measures wall-clock elapsed time,
/// independent of what clock stamps the trace. This is how the pipeline
/// keeps reporting `Duration`s (`analysis_time`, `symex_time`) while
/// the trace itself may run on the deterministic step clock.
#[must_use = "call finish() to close the span and read its duration"]
pub struct Span<'r> {
    rec: &'r dyn Recorder,
    id: SpanId,
    start: Instant,
}

impl<'r> Span<'r> {
    /// Opens a named span on `rec` and starts a wall-clock stopwatch.
    pub fn start(rec: &'r dyn Recorder, name: &str) -> Span<'r> {
        Span {
            rec,
            id: rec.span_open(name),
            start: Instant::now(),
        }
    }

    /// Closes the span and returns the wall-clock time it covered.
    pub fn finish(self) -> Duration {
        self.rec.span_close(self.id);
        self.start.elapsed()
    }
}

/// Shared byte buffer usable as a [`FileRecorder`] sink in tests.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(std::rc::Rc<RefCell<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// The bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.borrow().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_trace;

    #[test]
    fn noop_recorder_is_disabled_and_null() {
        assert!(!NOOP.enabled());
        assert_eq!(NOOP.span_open("x"), SpanId::NONE);
        NOOP.span_close(SpanId::NONE);
        NOOP.counter_add("c", 1);
        NOOP.tick(10);
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
    }

    #[test]
    fn mem_recorder_tracks_span_nesting() {
        let rec = MemRecorder::new(Clock::steps());
        let outer = rec.span_open("outer");
        rec.tick(3);
        let inner = rec.span_open("inner");
        rec.event("hit", &[("n", FieldValue::Uint(1))]);
        rec.span_close(inner);
        rec.tick(2);
        rec.span_close(outer);
        rec.counter_add("c", 7);

        let events = rec.finish();
        assert_eq!(
            events,
            vec![
                TraceEvent::Meta {
                    clock: "steps".into(),
                    version: TRACE_VERSION
                },
                TraceEvent::SpanOpen {
                    t: 0,
                    id: 1,
                    parent: 0,
                    name: "outer".into()
                },
                TraceEvent::SpanOpen {
                    t: 3,
                    id: 2,
                    parent: 1,
                    name: "inner".into()
                },
                TraceEvent::Event {
                    t: 3,
                    name: "hit".into(),
                    fields: vec![("n".into(), FieldValue::Uint(1))]
                },
                TraceEvent::SpanClose { t: 3, id: 2 },
                TraceEvent::SpanClose { t: 5, id: 1 },
                TraceEvent::Counter {
                    name: "c".into(),
                    value: 7
                },
            ]
        );
    }

    #[test]
    fn observe_wall_is_suppressed_under_steps_clock() {
        let det = MemRecorder::new(Clock::steps());
        det.observe_wall("lat", Duration::from_micros(10));
        assert!(det.metrics().hist("lat").is_none());

        let wall = MemRecorder::new(Clock::wall());
        wall.observe_wall("lat", Duration::from_micros(10));
        assert_eq!(wall.metrics().hist("lat").unwrap().count, 1);
    }

    #[test]
    fn file_recorder_streams_parseable_jsonl() {
        let buf = SharedBuf::new();
        let rec = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
        let s = rec.span_open("run");
        rec.tick(4);
        rec.event("done", &[("ok", FieldValue::Str("true".into()))]);
        rec.span_close(s);
        rec.counter_add("total", 4);
        rec.finish().unwrap();

        let text = String::from_utf8(buf.contents()).unwrap();
        let events = parse_trace(&text).unwrap();
        assert_eq!(events.len(), 5);
        assert!(matches!(events[0], TraceEvent::Meta { .. }));
        assert!(matches!(
            events.last().unwrap(),
            TraceEvent::Counter { name, value: 4 } if name == "total"
        ));
    }

    fn worker_buffer() -> TraceBuffer {
        let w = BufferedRecorder::new(ClockMode::Steps);
        let s = w.span_open("candidate.attempt");
        w.tick(10);
        let inner = w.span_open("engine.run");
        w.event("hit", &[("n", FieldValue::Uint(1))]);
        w.span_close(inner);
        w.span_close(s);
        w.counter_add("engine.steps", 10);
        w.gauge_max("peak", 4);
        w.observe("lat", 3);
        w.finish()
    }

    #[test]
    fn buffered_recorder_captures_local_ids_and_ticks() {
        let buf = worker_buffer();
        assert_eq!(buf.spans_used, 2);
        assert_eq!(buf.end_tick, 10);
        assert_eq!(buf.counters, vec![("engine.steps".into(), 10)]);
        assert!(matches!(
            &buf.events[0],
            TraceEvent::SpanOpen { t: 0, id: 1, parent: 0, name } if name == "candidate.attempt"
        ));
    }

    #[test]
    fn merge_remaps_ids_reparents_and_offsets_time() {
        let rec = MemRecorder::new(Clock::steps());
        let root = rec.span_open("portfolio");
        rec.tick(5);
        rec.merge_buffer(&worker_buffer(), None);
        rec.merge_buffer(&worker_buffer(), None);
        rec.span_close(root);

        let events = rec.finish();
        // First buffer: ids 2,3 under parent 1, offset 5.
        assert!(matches!(
            &events[2],
            TraceEvent::SpanOpen { t: 5, id: 2, parent: 1, name } if name == "candidate.attempt"
        ));
        assert!(matches!(
            &events[3],
            TraceEvent::SpanOpen { t: 15, id: 3, parent: 2, name } if name == "engine.run"
        ));
        // Second buffer: ids 4,5, offset advanced by first buffer's 10.
        assert!(matches!(
            &events[7],
            TraceEvent::SpanOpen {
                t: 15,
                id: 4,
                parent: 1,
                ..
            }
        ));
        // Root closes after both buffers' ticks.
        assert!(matches!(events[12], TraceEvent::SpanClose { t: 25, id: 1 }));
        // Metrics folded: counters add, gauges max, hists merge.
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::Counter { name, value: 20 } if name == "engine.steps")
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Gauge { name, value: 4 } if name == "peak")));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Hist { name, count: 2, .. } if name == "lat")));
    }

    #[test]
    fn merge_with_prefix_renames_spans_events_and_metrics() {
        let rec = MemRecorder::new(Clock::steps());
        rec.merge_buffer(&worker_buffer(), Some("portfolio.overshoot."));
        let events = rec.finish();
        assert!(matches!(
            &events[1],
            TraceEvent::SpanOpen { name, .. } if name == "portfolio.overshoot.candidate.attempt"
        ));
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::Event { name, .. } if name == "portfolio.overshoot.hit")
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Counter { name, value: 10 } if name == "portfolio.overshoot.engine.steps"
        )));
        // The unprefixed counter must NOT exist.
        assert!(!events
            .iter()
            .any(|e| matches!(e, TraceEvent::Counter { name, .. } if name == "engine.steps")));
    }

    #[test]
    fn merged_trace_matches_inline_recording() {
        // Recording through a BufferedRecorder + merge must be
        // byte-identical to recording the same calls inline.
        let inline = MemRecorder::new(Clock::steps());
        let root = inline.span_open("portfolio");
        let s = inline.span_open("candidate.attempt");
        inline.tick(10);
        inline.counter_add("engine.steps", 10);
        inline.span_close(s);
        inline.span_close(root);

        let merged = MemRecorder::new(Clock::steps());
        let root = merged.span_open("portfolio");
        let w = BufferedRecorder::new(merged.clock_mode());
        let s = w.span_open("candidate.attempt");
        w.tick(10);
        w.counter_add("engine.steps", 10);
        w.span_close(s);
        merged.merge_buffer(&w.finish(), None);
        merged.span_close(root);

        assert_eq!(inline.finish(), merged.finish());
    }

    #[test]
    fn state_ids_allocate_and_sus_is_zeroed_under_steps_clock() {
        let rec = MemRecorder::new(Clock::steps());
        let id = rec.alloc_state_id();
        assert_eq!(id, 1);
        rec.state(&LineageEvent {
            op: crate::lineage_op::ROOT,
            id,
            parent: 0,
            loc: "main:b0",
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            solver_us: 999,
        });
        let events = rec.finish();
        assert!(matches!(
            &events[1],
            TraceEvent::State { op, id: 1, par: 0, sus: 0, .. } if op == "root"
        ));
        // Wall clock keeps the attributed solver time.
        let rec = MemRecorder::new(Clock::wall());
        rec.state(&LineageEvent {
            op: crate::lineage_op::ROOT,
            id: rec.alloc_state_id(),
            parent: 0,
            loc: "main:b0",
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            solver_us: 999,
        });
        let events = rec.finish();
        assert!(matches!(&events[1], TraceEvent::State { sus: 999, .. }));
    }

    fn lineage_buffer() -> TraceBuffer {
        let w = BufferedRecorder::new(ClockMode::Steps);
        let root = w.alloc_state_id();
        w.state(&LineageEvent {
            op: crate::lineage_op::ROOT,
            id: root,
            parent: 0,
            loc: "main:b0",
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            solver_us: 0,
        });
        let child = w.alloc_state_id();
        w.state(&LineageEvent {
            op: crate::lineage_op::FORK,
            id: child,
            parent: root,
            loc: "main:b1",
            hops: 0,
            depth: 1,
            steps: 5,
            snodes: 2,
            solver_us: 0,
        });
        w.finish()
    }

    #[test]
    fn merge_remaps_state_ids_alongside_span_ids() {
        let rec = MemRecorder::new(Clock::steps());
        rec.merge_buffer(&lineage_buffer(), None);
        rec.merge_buffer(&lineage_buffer(), None);
        // Next main-thread allocation continues past both buffers.
        assert_eq!(rec.alloc_state_id(), 5);
        let events = rec.finish();
        let ids: Vec<(u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::State { id, par, .. } => Some((*id, *par)),
                _ => None,
            })
            .collect();
        // Second buffer's local ids 1,2 land past the first's: 3,4.
        assert_eq!(ids, vec![(1, 0), (2, 1), (3, 0), (4, 3)]);
    }

    #[test]
    fn merged_lineage_matches_inline_recording() {
        let inline = MemRecorder::new(Clock::steps());
        let root = inline.alloc_state_id();
        inline.state(&LineageEvent {
            op: crate::lineage_op::ROOT,
            id: root,
            parent: 0,
            loc: "main:b0",
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            solver_us: 0,
        });

        let merged = MemRecorder::new(Clock::steps());
        let w = BufferedRecorder::new(merged.clock_mode());
        let id = w.alloc_state_id();
        w.state(&LineageEvent {
            op: crate::lineage_op::ROOT,
            id,
            parent: 0,
            loc: "main:b0",
            hops: 0,
            depth: 0,
            steps: 0,
            snodes: 0,
            solver_us: 0,
        });
        merged.merge_buffer(&w.finish(), None);

        assert_eq!(inline.finish(), merged.finish());
    }

    fn query_ev(us: u64) -> QueryEvent<'static> {
        QueryEvent {
            sid: 3,
            loc: "main:7",
            rank: 1,
            site: "feasibility",
            verdict: "sat",
            cache: "search",
            nodes: 12,
            us,
        }
    }

    #[test]
    fn query_us_is_zeroed_under_steps_clock_and_kept_under_wall() {
        let det = MemRecorder::new(Clock::steps());
        det.tick(5);
        det.query(&query_ev(999));
        let events = det.finish();
        assert!(matches!(
            &events[1],
            TraceEvent::Query {
                t: 5,
                sid: 3,
                rank: 1,
                us: 0,
                nodes: 12,
                ..
            }
        ));

        let wall = MemRecorder::new(Clock::wall());
        wall.query(&query_ev(999));
        let events = wall.finish();
        assert!(matches!(&events[1], TraceEvent::Query { us: 999, .. }));
    }

    #[test]
    fn merged_query_events_match_inline_recording() {
        let inline = MemRecorder::new(Clock::steps());
        let root = inline.span_open("portfolio");
        let s = inline.span_open("candidate.attempt");
        inline.tick(4);
        inline.query(&query_ev(0));
        inline.span_close(s);
        inline.span_close(root);

        let merged = MemRecorder::new(Clock::steps());
        let root = merged.span_open("portfolio");
        let w = BufferedRecorder::new(merged.clock_mode());
        let s = w.span_open("candidate.attempt");
        w.tick(4);
        w.query(&query_ev(0));
        w.span_close(s);
        merged.merge_buffer(&w.finish(), None);
        merged.span_close(root);

        assert_eq!(inline.finish(), merged.finish());
    }

    #[test]
    fn merge_offsets_query_time_but_not_sid() {
        let rec = MemRecorder::new(Clock::steps());
        rec.tick(100);
        let w = BufferedRecorder::new(ClockMode::Steps);
        w.tick(4);
        w.query(&query_ev(0));
        rec.merge_buffer(&w.finish(), Some("portfolio.overshoot."));
        let events = rec.finish();
        // t offset by the merge point; sid untouched; no rename.
        assert!(matches!(
            &events[1],
            TraceEvent::Query { t: 104, sid: 3, .. }
        ));
    }

    #[test]
    fn span_helper_returns_wall_duration() {
        let rec = MemRecorder::new(Clock::steps());
        let span = Span::start(&rec, "timed");
        let d = span.finish();
        assert!(d.as_nanos() > 0 || d.is_zero());
        let events = rec.finish();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::SpanOpen { name, .. } if name == "timed")));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::SpanClose { .. })));
    }
}
