//! Byte-exactness of the JSONL trace format: a trace produced by a
//! recorder parses, and re-emitting the parsed events reproduces the
//! original bytes exactly (emit → parse → re-emit is the identity).

use statsym_telemetry::{
    parse_trace, render_trace, Clock, FieldValue, FileRecorder, MemRecorder, Recorder, SharedBuf,
    TraceEvent,
};

/// Drives a recorder through every event kind the instrumentation
/// emits: nested spans, point events with all field types, counters,
/// gauges, and histogram observations.
fn exercise(rec: &dyn Recorder) {
    let run = rec.span_open("engine.run");
    rec.tick(10);
    let phase = rec.span_open("phase.skeleton");
    rec.event(
        "candidate.result",
        &[
            ("index", FieldValue::Uint(0)),
            ("delta", FieldValue::Int(-3)),
            ("note", FieldValue::Str("weird \"quotes\"\n and λ".into())),
        ],
    );
    rec.tick(5);
    rec.span_close(phase);
    rec.counter_add("solver.queries", 41);
    rec.counter_add("solver.queries", 1);
    rec.gauge_max("symex.peak_live_states", 7);
    rec.gauge_max("symex.peak_live_states", 4);
    rec.observe("symex.hop_divergence", 0);
    rec.observe("symex.hop_divergence", 3);
    rec.observe("symex.hop_divergence", 700);
    rec.span_close(run);
}

#[test]
fn file_trace_reemits_byte_identical() {
    let buf = SharedBuf::new();
    let rec = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
    exercise(&rec);
    rec.finish().unwrap();

    let original = String::from_utf8(buf.contents()).unwrap();
    let events = parse_trace(&original).expect("trace must parse");
    let reemitted = render_trace(&events);
    assert_eq!(
        reemitted, original,
        "emit → parse → re-emit must be identity"
    );

    // And a second parse of the re-emitted text yields equal events.
    assert_eq!(parse_trace(&reemitted).unwrap(), events);
}

#[test]
fn mem_and_file_recorders_agree_under_steps_clock() {
    let mem = MemRecorder::new(Clock::steps());
    exercise(&mem);
    let mem_events = mem.finish();

    let buf = SharedBuf::new();
    let file = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
    exercise(&file);
    file.finish().unwrap();
    let file_events = parse_trace(&String::from_utf8(buf.contents()).unwrap()).unwrap();

    assert_eq!(mem_events, file_events);
}

#[test]
fn two_identical_runs_are_byte_identical() {
    let mut texts = Vec::new();
    for _ in 0..2 {
        let buf = SharedBuf::new();
        let rec = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
        exercise(&rec);
        rec.finish().unwrap();
        texts.push(buf.contents());
    }
    assert_eq!(texts[0], texts[1]);
}

#[test]
fn trace_starts_with_meta_and_ends_with_metrics() {
    let buf = SharedBuf::new();
    let rec = FileRecorder::from_writer(Box::new(buf.clone()), Clock::steps());
    exercise(&rec);
    rec.finish().unwrap();
    let events = parse_trace(&String::from_utf8(buf.contents()).unwrap()).unwrap();

    assert!(matches!(
        &events[0],
        TraceEvent::Meta { clock, version: 1 } if clock == "steps"
    ));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Counter { name, value: 42 } if name == "solver.queries")));
    assert!(events.iter().any(
        |e| matches!(e, TraceEvent::Gauge { name, value: 7 } if name == "symex.peak_live_states")
    ));
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::Hist { name, count: 3, .. } if name == "symex.hop_divergence"
    )));
}
