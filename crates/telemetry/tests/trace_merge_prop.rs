//! Property test for worker-buffer splice/merge (DESIGN.md §10).
//!
//! Portfolio workers record into private `BufferedRecorder`s whose span
//! ids and timestamps are buffer-local; `merge_buffer` splices them
//! into the destination trace. The invariant under test: for *any*
//! shape of worker span trees merged in *any* rank order — including
//! two-level merges (worker → intermediate buffer → main) and prefix
//! renames — the merged trace is canonical: `parse_trace_strict`
//! accepts it (balanced spans, duplicate-free ids), no events are lost,
//! and counters sum exactly.

use proptest::{any, collection, proptest};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use statsym_telemetry::{
    lineage_op, parse_trace_strict, render_trace, BufferedRecorder, Clock, ClockMode, FieldValue,
    LineageEvent, MemRecorder, Recorder, TraceBuffer, TraceEvent,
};

/// Records a random span tree (spans, point events, ticks, counters,
/// lineage states) into `rec`. `budget` bounds total operations; depth
/// is capped so the tree stays readable in failure dumps. `states`
/// tracks the lineage ids introduced into this recorder so transitions
/// and forks only ever name live ancestors — the same discipline the
/// engine's tracker enforces.
fn record_tree(
    rec: &dyn Recorder,
    rng: &mut StdRng,
    depth: usize,
    budget: &mut usize,
    states: &mut Vec<u64>,
) {
    while *budget > 0 && rng.random_bool(0.75) {
        *budget -= 1;
        match rng.random_range(0..5u32) {
            0 => rec.event(
                "w.point",
                &[("v", FieldValue::Uint(rng.random_range(0..100u64)))],
            ),
            1 => {
                rec.tick(rng.random_range(1..40u64));
                rec.counter_add("w.ops", 1);
            }
            2 => rec.observe("w.lat", rng.random_range(0..5000u64)),
            3 => {
                let steps = rng.random_range(0..50u64);
                let state = |op, id, parent| LineageEvent {
                    op,
                    id,
                    parent,
                    loc: "w:b0",
                    hops: 0,
                    depth: depth as u32,
                    steps,
                    snodes: 0,
                    solver_us: 0,
                };
                if states.is_empty() || rng.random_bool(0.2) {
                    let id = rec.alloc_state_id();
                    rec.state(&state(lineage_op::ROOT, id, 0));
                    states.push(id);
                } else if rng.random_bool(0.5) {
                    let parent = states[rng.random_range(0..states.len() as u64) as usize];
                    let id = rec.alloc_state_id();
                    rec.state(&state(lineage_op::FORK, id, parent));
                    states.push(id);
                } else {
                    let id = states[rng.random_range(0..states.len() as u64) as usize];
                    let ops = [
                        lineage_op::SUSPEND_TAU,
                        lineage_op::RESUME,
                        lineage_op::KILL,
                        lineage_op::EXIT,
                        lineage_op::FAULT,
                    ];
                    let op = ops[rng.random_range(0..ops.len() as u64) as usize];
                    rec.state(&state(op, id, 0));
                }
            }
            _ => {
                let id = rec.span_open("w.span");
                if depth < 4 {
                    record_tree(rec, rng, depth + 1, budget, states);
                }
                rec.span_close(id);
            }
        }
    }
}

/// Builds one worker buffer from a seed and returns it with its
/// recorded point-event and counter totals.
fn worker_buffer(seed: u64) -> (TraceBuffer, usize, u64) {
    let rec = BufferedRecorder::new(ClockMode::Steps);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut budget = rng.random_range(0..40usize);
    record_tree(&rec, &mut rng, 0, &mut budget, &mut Vec::new());
    let buf = rec.finish();
    let points = buf
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Event { name, .. } if name == "w.point"))
        .count();
    let ops = buf
        .counters
        .iter()
        .find(|(n, _)| n == "w.ops")
        .map_or(0, |(_, v)| *v);
    (buf, points, ops)
}

proptest! {
    #[test]
    fn spliced_merges_yield_canonical_traces(
        seeds in collection::vec(any::<u64>(), 1..6),
        order_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(order_seed);
        let mut buffers: Vec<(TraceBuffer, usize, u64)> =
            seeds.iter().map(|&s| worker_buffer(s)).collect();
        // Merge in a random rank order (the portfolio merges by rank;
        // the invariant must not depend on which order that is).
        for i in (1..buffers.len()).rev() {
            let j = rng.random_range(0..=i as u64) as usize;
            buffers.swap(i, j);
        }
        let expect_points: usize = buffers.iter().map(|(_, p, _)| *p).sum();
        let expect_ops: u64 = buffers.iter().map(|(_, _, o)| *o).sum();

        let main = MemRecorder::new(Clock::steps());
        let root = main.span_open("portfolio");
        for (i, (buf, _, _)) in buffers.iter().enumerate() {
            match i % 3 {
                // Direct merge, as the portfolio does for ranked workers.
                0 => main.merge_buffer(buf, None),
                // Prefix rename, as overshoot merging does.
                1 => main.merge_buffer(buf, Some("overshoot.")),
                // Two-level splice: worker buffer into an intermediate
                // buffer, intermediate into main.
                _ => {
                    let mid = BufferedRecorder::new(ClockMode::Steps);
                    let wrap = mid.span_open("relay");
                    mid.merge_buffer(buf, None);
                    mid.span_close(wrap);
                    main.merge_buffer(&mid.finish(), None);
                }
            }
            // Main-thread activity interleaved between merges must not
            // collide with spliced ids or timestamps.
            main.tick(1);
            main.event("main.between", &[("i", FieldValue::Uint(i as u64))]);
        }
        main.span_close(root);

        let ops_merged = main
            .metrics()
            .dump_counters()
            .into_iter()
            .filter(|(n, _)| n == "w.ops" || n == "overshoot.w.ops")
            .map(|(_, v)| v)
            .sum::<u64>();
        assert_eq!(ops_merged, expect_ops, "counter totals must merge exactly");

        let events = main.finish();
        let rendered = render_trace(&events);
        let parsed = parse_trace_strict(&rendered)
            .unwrap_or_else(|e| panic!("merged trace rejected: {e:?}\n{rendered}"));
        assert_eq!(parsed.len(), events.len(), "render/parse must be lossless");

        let merged_points = events
            .iter()
            .filter(|e| matches!(
                e,
                TraceEvent::Event { name, .. } if name == "w.point" || name == "overshoot.w.point"
            ))
            .count();
        assert_eq!(merged_points, expect_points, "no worker event may be lost");

        // Timestamps never run backwards in a rank-ordered merge.
        let mut last = 0u64;
        for ev in &events {
            let t = match ev {
                TraceEvent::SpanOpen { t, .. }
                | TraceEvent::SpanClose { t, .. }
                | TraceEvent::Event { t, .. }
                | TraceEvent::State { t, .. } => *t,
                _ => last,
            };
            assert!(t >= last, "timestamp regressed: {t} after {last}\n{rendered}");
            last = t;
        }

        // Lineage events must still form a forest of single-rooted
        // trees after the id remap: every introduction precedes the
        // events that reference it, parents have smaller ids than
        // children, and chasing parent pointers from any state reaches
        // a root (no orphans). No state event may be lost either.
        let expect_states: usize = buffers
            .iter()
            .map(|(b, _, _)| {
                b.events
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::State { .. }))
                    .count()
            })
            .sum();
        let mut parent_of = std::collections::HashMap::new();
        let mut merged_states = 0usize;
        for ev in &events {
            let TraceEvent::State { op, id, par, .. } = ev else {
                continue;
            };
            merged_states += 1;
            match op.as_str() {
                "root" => {
                    assert_eq!(*par, 0, "root with nonzero parent\n{rendered}");
                    assert!(parent_of.insert(*id, 0u64).is_none(), "dup id {id}");
                }
                "fork" => {
                    assert!(
                        parent_of.contains_key(par),
                        "fork {id} orphaned: parent {par} never introduced\n{rendered}"
                    );
                    assert!(*par < *id, "parent id {par} not below child {id}");
                    assert!(parent_of.insert(*id, *par).is_none(), "dup id {id}");
                }
                _ => assert!(
                    parent_of.contains_key(id),
                    "transition on unknown state {id}\n{rendered}"
                ),
            }
        }
        assert_eq!(merged_states, expect_states, "no state event may be lost");
        for &id in parent_of.keys() {
            // Chase to the root; parent < child guarantees termination.
            let mut at = id;
            while at != 0 {
                at = parent_of[&at];
            }
        }
    }
}
