//! Invariants of the statistical analysis stage, checked across all
//! benchmark apps and sampling rates:
//!
//! * the failure location is the entry of the true fault function;
//! * candidate paths start at the program entry and end at the failure;
//! * predicate thresholds separate the observed class ranges;
//! * detours always reconnect to the skeleton;
//! * analysis is deterministic.

use benchapps::{all_apps, generate_corpus, CorpusSpec};
use statsym_core::pipeline::StatSym;
use statsym_core::DetourKind;

fn spec(rate: f64, seed: u64) -> CorpusSpec {
    CorpusSpec {
        n_correct: 40,
        n_faulty: 40,
        sampling_rate: rate,
        seed,
    }
}

#[test]
fn candidate_paths_span_entry_to_failure() {
    for app in all_apps() {
        for rate in [0.3, 1.0] {
            let logs = generate_corpus(&app, spec(rate, 11));
            let analysis = StatSym::default().analyze(&logs);
            let failure = analysis.failure_location.clone().expect("failure found");
            let cands = analysis.candidates.as_ref().expect("candidates built");
            assert!(!cands.paths.is_empty(), "{} @ {rate}", app.name);
            for path in &cands.paths {
                let first = &path.nodes.first().expect("non-empty").loc;
                let last = &path.nodes.last().expect("non-empty").loc;
                assert_eq!(
                    first.func,
                    "main",
                    "{} @ {rate}: {}",
                    app.name,
                    path.render()
                );
                assert_eq!(last, &failure, "{} @ {rate}", app.name);
            }
        }
    }
}

#[test]
fn predicate_thresholds_sit_between_class_ranges() {
    for app in all_apps() {
        let logs = generate_corpus(&app, spec(1.0, 23));
        let corpus = statsym_core::LogCorpus::build(&logs);
        let preds = statsym_core::PredicateSet::build(&corpus);
        for p in preds.top(20) {
            if p.is_degenerate() {
                continue;
            }
            let obs = corpus
                .observation(&p.loc, &p.var)
                .expect("predicate built from observations");
            // A perfectly-scoring predicate must classify every sample.
            if p.score >= 1.0 - f64::EPSILON {
                let sat = |v: f64| match p.op {
                    statsym_core::PredOp::Gt => v > p.threshold,
                    statsym_core::PredOp::Lt => v < p.threshold,
                };
                assert!(
                    obs.faulty.iter().all(|&v| sat(v)),
                    "{}: {} not true on all faulty",
                    app.name,
                    p.render()
                );
                assert!(
                    obs.correct.iter().all(|&v| !sat(v)),
                    "{}: {} not false on all correct",
                    app.name,
                    p.render()
                );
            }
        }
    }
}

#[test]
fn detours_reconnect_to_the_skeleton() {
    for app in all_apps() {
        let logs = generate_corpus(&app, spec(0.3, 5));
        let analysis = StatSym::default().analyze(&logs);
        let Some(cands) = &analysis.candidates else {
            continue;
        };
        let n = cands.skeleton.len();
        for d in &cands.detours {
            assert!(d.from_idx < n, "{}", app.name);
            assert!(d.to_idx < n, "{}", app.name);
            assert!(!d.nodes.is_empty());
            match d.kind {
                DetourKind::Forward => assert!(d.from_idx < d.to_idx),
                DetourKind::Backward => assert!(d.from_idx > d.to_idx),
                DetourKind::Loop => assert_eq!(d.from_idx, d.to_idx),
            }
            // Detour targets are off-skeleton high-score locations.
            for node in &d.nodes {
                let _ = node;
            }
            assert!(d.score >= 0.5, "{}: detour score {}", app.name, d.score);
        }
    }
}

#[test]
fn analysis_is_deterministic() {
    let app = benchapps::thttpd();
    let logs = generate_corpus(&app, spec(0.3, 9));
    let a = StatSym::default().analyze(&logs);
    let b = StatSym::default().analyze(&logs);
    assert_eq!(a.failure_location, b.failure_location);
    assert_eq!(a.n_detours(), b.n_detours());
    assert_eq!(a.n_candidates(), b.n_candidates());
    let ra: Vec<String> = a.predicates.top(10).iter().map(|p| p.render()).collect();
    let rb: Vec<String> = b.predicates.top(10).iter().map(|p| p.render()).collect();
    assert_eq!(ra, rb);
}

#[test]
fn lower_sampling_means_fewer_records_but_analysis_still_converges() {
    let app = benchapps::grep();
    let mut prev_records = usize::MAX;
    for rate in [1.0, 0.5, 0.2] {
        let logs = generate_corpus(&app, spec(rate, 31));
        let records: usize = logs.iter().map(|l| l.records.len()).sum();
        assert!(records < prev_records, "record volume shrinks with rate");
        prev_records = records;
        let analysis = StatSym::default().analyze(&logs);
        assert_eq!(
            analysis.failure_location.as_ref().map(|l| l.func.as_str()),
            Some("stonesoup_handle_taint"),
            "failure inference robust at {rate}"
        );
        assert!(analysis.candidates.is_some(), "candidates at {rate}");
    }
}

#[test]
fn top_predicate_matches_the_buffer_size_per_app() {
    // The headline of Table V: the top supported predicate's threshold
    // sits just below the vulnerable buffer's trigger length.
    let expect = [
        ("polymorph", 11.0, 12.0),
        ("ctree", 15.0, 16.0),
        ("grep", 27.0, 28.0),
    ];
    for (name, lo, hi) in expect {
        let app = benchapps::by_name(name).unwrap();
        let logs = generate_corpus(&app, spec(1.0, 41));
        let corpus = statsym_core::LogCorpus::build(&logs);
        let preds = statsym_core::PredicateSet::build(&corpus);
        let top = preds
            .ranked
            .iter()
            .find(|p| !p.is_degenerate())
            .expect("supported predicate");
        assert!(
            top.threshold >= lo && top.threshold <= hi,
            "{name}: threshold {} not in [{lo}, {hi}] ({})",
            top.threshold,
            top.render()
        );
    }
}
