//! Detour identification (paper §V-B step 2 / §VI-B).
//!
//! High-confidence predicates may sit at locations the skeleton misses.
//! A *detour* is a path segment branching off a skeleton node, visiting
//! such a location, and rejoining the skeleton. Depending on the indices
//! of its anchor nodes, a detour is *forward* (start index < end index —
//! may replace a skeleton segment), *backward* (start > end — introduces
//! a cycle), or a *loop* (start == end).

use crate::predicate::PredicateSet;
use crate::skeleton::Skeleton;
use crate::transition::TransitionGraph;
use concrete::Location;
use std::collections::BTreeMap;

/// Detour classification by anchor indices (paper §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetourKind {
    /// Start anchor precedes end anchor on the skeleton.
    Forward,
    /// Start anchor follows end anchor (cycle).
    Backward,
    /// Both anchors are the same skeleton node (cycle).
    Loop,
}

/// One detour off the skeleton.
#[derive(Debug, Clone, PartialEq)]
pub struct Detour {
    /// Skeleton index where the detour branches off.
    pub from_idx: usize,
    /// Skeleton index where it rejoins.
    pub to_idx: usize,
    /// Intermediate locations (excluding the skeleton anchors).
    pub nodes: Vec<Location>,
    /// Best predicate score among intermediate locations.
    pub score: f64,
    /// Classification.
    pub kind: DetourKind,
}

impl Detour {
    fn classify(from_idx: usize, to_idx: usize) -> DetourKind {
        use std::cmp::Ordering::*;
        match from_idx.cmp(&to_idx) {
            Less => DetourKind::Forward,
            Greater => DetourKind::Backward,
            Equal => DetourKind::Loop,
        }
    }
}

/// Detour search parameters.
#[derive(Debug, Clone, Copy)]
pub struct DetourConfig {
    /// Only target locations whose best predicate scores at least this.
    pub min_score: f64,
    /// Cap on returned detours.
    pub max_detours: usize,
}

impl Default for DetourConfig {
    fn default() -> Self {
        DetourConfig {
            min_score: 0.5,
            max_detours: 64,
        }
    }
}

/// Finds detours from `skeleton` to every sufficiently-scored location
/// it misses. For each unique `(anchor, kind)` pair only the
/// best-scoring detour is kept (the paper's same-type heuristic).
pub fn find_detours(
    graph: &TransitionGraph,
    preds: &PredicateSet,
    skeleton: &Skeleton,
    config: DetourConfig,
) -> Vec<Detour> {
    let mut candidates: Vec<Detour> = Vec::new();
    let targets: Vec<&Location> = graph
        .nodes()
        .filter(|loc| skeleton.index_of(loc).is_none())
        .filter(|loc| preds.location_score(loc) >= config.min_score)
        .collect();

    for target in targets {
        // Best (shortest) branch-off: skeleton node -> target.
        let out = skeleton
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| graph.shortest_path(s, target).map(|p| (i, p)))
            .min_by_key(|(_, p)| p.len());
        // Best rejoin: target -> skeleton node.
        let back = skeleton
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| graph.shortest_path(target, s).map(|p| (i, p)))
            .min_by_key(|(_, p)| p.len());
        let (Some((from_idx, out_path)), Some((to_idx, back_path))) = (out, back) else {
            continue;
        };
        // Intermediate nodes: out_path minus its skeleton head, plus
        // back_path minus the target head and the skeleton tail.
        let mut nodes: Vec<Location> = out_path[1..].to_vec();
        nodes.extend(
            back_path[1..back_path.len().saturating_sub(1)]
                .iter()
                .cloned(),
        );
        if nodes.is_empty() {
            continue;
        }
        let score = nodes
            .iter()
            .map(|l| preds.location_score(l))
            .fold(0.0, f64::max);
        candidates.push(Detour {
            from_idx,
            to_idx,
            nodes,
            score,
            kind: Detour::classify(from_idx, to_idx),
        });
    }

    // Per (anchor, kind): keep the best-scoring (then shortest) detour.
    let mut best: BTreeMap<(usize, DetourKind), Detour> = BTreeMap::new();
    for d in candidates {
        let key = (d.from_idx, d.kind);
        match best.get(&key) {
            Some(cur)
                if cur.score > d.score
                    || (cur.score == d.score && cur.nodes.len() <= d.nodes.len()) => {}
            _ => {
                best.insert(key, d);
            }
        }
    }
    let mut out: Vec<Detour> = best.into_values().collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.from_idx.cmp(&b.from_idx))
    });
    out.truncate(config.max_detours);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::LogCorpus;
    use crate::transition::MineConfig;
    use concrete::{ExecutionLog, LogRecord, Measure, VarId, VarRole, Verdict};

    fn l(name: &str) -> Location {
        Location::enter(name)
    }

    fn preds_with_hot(hot: &[&str]) -> PredicateSet {
        let mut logs = Vec::new();
        for verdict in [Verdict::Correct, Verdict::Faulty] {
            let v = if verdict == Verdict::Faulty {
                100.0
            } else {
                1.0
            };
            logs.push(ExecutionLog {
                records: hot
                    .iter()
                    .map(|name| LogRecord {
                        loc: l(name),
                        vars: vec![(VarId::new("x", VarRole::Param, Measure::Value), v)],
                    })
                    .collect(),
                verdict,
                fault: None,
            });
        }
        PredicateSet::build(&LogCorpus::build(&logs))
    }

    fn setup(traces: &[Vec<Location>], hot: &[&str]) -> (TransitionGraph, PredicateSet, Skeleton) {
        let g = TransitionGraph::mine(traces.iter(), MineConfig::default());
        let preds = preds_with_hot(hot);
        let sk = Skeleton::build(
            &g,
            &preds,
            traces[0].last().unwrap(),
            crate::skeleton::SkeletonConfig::default(),
        )
        .unwrap();
        (g, preds, sk)
    }

    #[test]
    fn finds_forward_detour_through_hot_node() {
        // Skeleton a->b->fail (short); hot node h reachable a->h->b.
        let traces = vec![
            vec![l("a"), l("b"), l("fail")],
            vec![l("a"), l("h"), l("b"), l("fail")],
        ];
        let (g, preds, _sk) = setup(&traces, &["h"]);
        // With score on h the skeleton itself routes through h (higher
        // average); force the short skeleton so the detour machinery is
        // what has to rediscover h.
        let short = Skeleton {
            nodes: vec![l("a"), l("b"), l("fail")],
            avg_score: 0.0,
        };
        let ds = find_detours(&g, &preds, &short, DetourConfig::default());
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.nodes, vec![l("h")]);
        assert_eq!(d.from_idx, 0);
        assert_eq!(d.to_idx, 1);
        assert_eq!(d.kind, DetourKind::Forward);
        assert!(d.score >= 0.99);
    }

    #[test]
    fn backward_detour_introduces_cycle() {
        // h reachable only from b, rejoins at a.
        let traces = [
            vec![l("a"), l("b"), l("fail")],
            vec![l("b"), l("h"), l("a")],
        ];
        let (g, preds, _) = setup(&[traces[0].clone()], &["h"]);
        let g2 = TransitionGraph::mine(traces.iter(), MineConfig::default());
        let sk = Skeleton {
            nodes: vec![l("a"), l("b"), l("fail")],
            avg_score: 0.0,
        };
        let _ = (g, preds);
        let preds = preds_with_hot(&["h"]);
        let ds = find_detours(&g2, &preds, &sk, DetourConfig::default());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].kind, DetourKind::Backward);
        assert_eq!(ds[0].from_idx, 1);
        assert_eq!(ds[0].to_idx, 0);
    }

    #[test]
    fn low_score_targets_ignored() {
        let traces = [
            vec![l("a"), l("b"), l("fail")],
            vec![l("a"), l("cold"), l("b"), l("fail")],
        ];
        let g = TransitionGraph::mine(traces.iter(), MineConfig::default());
        let preds = preds_with_hot(&[]);
        let sk = Skeleton {
            nodes: vec![l("a"), l("b"), l("fail")],
            avg_score: 0.0,
        };
        let ds = find_detours(&g, &preds, &sk, DetourConfig::default());
        assert!(ds.is_empty());
    }

    #[test]
    fn unreachable_targets_skipped() {
        // h is hot but has no rejoin path.
        let traces = [vec![l("a"), l("b"), l("fail")], vec![l("a"), l("h")]];
        let g = TransitionGraph::mine(traces.iter(), MineConfig::default());
        let preds = preds_with_hot(&["h"]);
        let sk = Skeleton {
            nodes: vec![l("a"), l("b"), l("fail")],
            avg_score: 0.0,
        };
        let ds = find_detours(&g, &preds, &sk, DetourConfig::default());
        assert!(ds.is_empty());
    }
}
