//! Statistics-guided symbolic execution (paper §V-C / §VI-C): the
//! `symex::EventHook` that implements the StatSym State Manager and
//! Scheduler behaviors.
//!
//! * **Inter-function search** — each state tracks its progress along
//!   the candidate path and the number of function-boundary events
//!   (hops) since the last matched node. States diverging more than τ
//!   hops are suspended.
//! * **Intra-function search** — when a state reaches a candidate-path
//!   node, the node's predicates are translated into solver constraints
//!   and added to the state's *soft* set: branch outcomes conflicting
//!   with them get suspended, pruning the search space.
//! * **Scheduling priority** — fewer diverted hops first, then deeper
//!   candidate-path progress (the paper's StatSym Scheduler).

use crate::candidate::CandidatePath;
use crate::predicate::{PredOp, Predicate};
use concrete::{Measure, VarRole};
use solver::{CmpOp, Constraint, TermCtx, TermId};
use symex::{EventCtx, EventHook, GuidanceResult, StateMeta, SymValue};

/// Guidance parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuidanceConfig {
    /// Hop-divergence threshold τ (the paper's default is 10).
    pub tau: u32,
    /// How far ahead in the candidate path an event may match (bridges
    /// sampling gaps: consecutive candidate nodes may not be adjacent in
    /// the real execution).
    pub lookahead: usize,
}

impl Default for GuidanceConfig {
    fn default() -> Self {
        GuidanceConfig {
            tau: 10,
            lookahead: 8,
        }
    }
}

/// The guided-execution hook for one candidate path.
#[derive(Debug, Clone)]
pub struct GuidedHook {
    path: CandidatePath,
    config: GuidanceConfig,
}

impl GuidedHook {
    /// Creates a hook guiding exploration along `path`.
    pub fn new(path: CandidatePath, config: GuidanceConfig) -> GuidedHook {
        GuidedHook { path, config }
    }

    /// The candidate path being followed.
    pub fn path(&self) -> &CandidatePath {
        &self.path
    }
}

impl EventHook for GuidedHook {
    fn on_event(
        &mut self,
        ev: &EventCtx<'_>,
        meta: &mut StateMeta,
        ctx: &mut TermCtx,
    ) -> GuidanceResult {
        // A state that has traversed the whole candidate path is at the
        // failure point: it is the most promising state there is, and
        // further function events inside the fault region (e.g. repeated
        // calls of the vulnerable function in a loop) must not count as
        // divergence.
        if meta.progress >= self.path.nodes.len() {
            return GuidanceResult::default();
        }
        // Inter-function: match the event against the next candidate
        // nodes within the lookahead window.
        let window_end = (meta.progress + self.config.lookahead).min(self.path.nodes.len());
        let matched = (meta.progress..window_end).find(|&k| self.path.nodes[k].loc == *ev.loc);
        match matched {
            Some(k) => {
                meta.progress = k + 1;
                meta.hops = 0;
                // Intra-function: inject this node's predicates.
                let mut constraints = Vec::new();
                for pred in &self.path.nodes[k].predicates {
                    constraints.extend(translate(pred, ev, ctx));
                }
                GuidanceResult {
                    constraints,
                    suspend: false,
                    matched: Some(k),
                }
            }
            None => {
                meta.hops += 1;
                GuidanceResult {
                    constraints: Vec::new(),
                    suspend: meta.hops > self.config.tau,
                    matched: None,
                }
            }
        }
    }

    /// Fewer diverted hops first; deeper candidate-path progress breaks
    /// ties; among equals, deeper (more advanced) states run first so
    /// guided exploration dives along the candidate path instead of
    /// sweeping breadth-first (lower value = scheduled sooner).
    fn priority(&self, meta: &StateMeta, depth: u32) -> i64 {
        (meta.hops as i64) * 1_000_000_000_000
            - (meta.progress as i64) * 1_000_000
            - (depth as i64).min(999_999)
    }

    /// Guided matching is a pure function of the event and the state's
    /// own meta (progress/hops live in [`StateMeta`], not in the hook),
    /// so independent copies observing schedule-dependent event orders
    /// still make identical per-state decisions — the requirement for
    /// the work-stealing executor (`EngineConfig::state_workers`).
    fn clone_hook<'a>(&'a self) -> Option<Box<dyn EventHook + Send + 'a>> {
        Some(Box::new(self.clone()))
    }
}

/// Translates a statistical predicate into solver constraints over the
/// symbolic value observed at the event. Returns no constraints when the
/// variable is unavailable or the predicate is vacuous, and a
/// contradiction when it is structurally unsatisfiable (e.g. `len > σ`
/// beyond the input's capacity).
fn translate(pred: &Predicate, ev: &EventCtx<'_>, ctx: &mut TermCtx) -> Vec<Constraint> {
    if pred.is_degenerate() {
        // Degenerate predicates mark locations, not values.
        return Vec::new();
    }
    let value = match pred.var.role {
        VarRole::Param => ev.arg(&pred.var.name),
        VarRole::Global => ev.global(&pred.var.name),
        VarRole::Return => ev.ret,
    };
    let Some(value) = value else {
        return Vec::new();
    };
    match (pred.var.measure, value) {
        (Measure::Value, SymValue::Int(t)) => int_threshold(pred.op, pred.threshold, *t, ctx),
        (Measure::Length, SymValue::Str(s)) => {
            str_len_threshold(pred.op, pred.threshold, &s.bytes, ctx)
        }
        (Measure::Value, SymValue::Bool(b)) => bool_threshold(pred.op, pred.threshold, *b),
        _ => Vec::new(),
    }
}

/// `v > σ` / `v < σ` over an integer term.
fn int_threshold(op: PredOp, sigma: f64, t: TermId, ctx: &mut TermCtx) -> Vec<Constraint> {
    match op {
        // v > σ  ⇔  v > floor(σ)  ⇔  floor(σ) < v (integers).
        PredOp::Gt => {
            let bound = ctx.int(sigma.floor() as i64);
            vec![Constraint::new(CmpOp::Lt, bound, t)]
        }
        // v < σ  ⇔  v < ceil(σ).
        PredOp::Lt => {
            let bound = ctx.int(sigma.ceil() as i64);
            vec![Constraint::new(CmpOp::Lt, t, bound)]
        }
    }
}

/// `len(s) > σ` / `len(s) < σ` over a symbolic string. Length is the
/// index of the first NUL byte, so:
///
/// * `len > σ` ⇔ bytes `0..=floor(σ)` are all nonzero;
/// * `len < σ` ⇔ the byte at index `ceil(σ) - 1` is zero (bytes after an
///   earlier terminator are unconstrained, so this is exact).
fn str_len_threshold(
    op: PredOp,
    sigma: f64,
    bytes: &[TermId],
    ctx: &mut TermCtx,
) -> Vec<Constraint> {
    let cap = bytes.len() as i64;
    let zero = ctx.int(0);
    match op {
        PredOp::Gt => {
            let min_len = sigma.floor() as i64 + 1; // len >= min_len
            if min_len <= 0 {
                return Vec::new(); // vacuously true
            }
            if min_len > cap {
                // Structurally impossible: the input cannot be that long.
                let one = ctx.int(1);
                return vec![Constraint::new(CmpOp::Eq, zero, one)];
            }
            (0..min_len as usize)
                .map(|i| Constraint::new(CmpOp::Ne, bytes[i], zero))
                .collect()
        }
        PredOp::Lt => {
            let max_len = (sigma.ceil() as i64) - 1; // len <= max_len
            if max_len < 0 {
                let one = ctx.int(1);
                return vec![Constraint::new(CmpOp::Eq, zero, one)];
            }
            if max_len >= cap {
                return Vec::new(); // vacuously true
            }
            vec![Constraint::new(CmpOp::Eq, bytes[max_len as usize], zero)]
        }
    }
}

/// Thresholds over booleans logged as 0/1.
fn bool_threshold(op: PredOp, sigma: f64, b: symex::BoolVal) -> Vec<Constraint> {
    use symex::BoolVal;
    // `v > σ` with σ ∈ [0,1) means "v is true"; `v < σ` with σ ∈ (0,1]
    // means "v is false".
    let want_true = matches!(op, PredOp::Gt);
    if (want_true && !(0.0..1.0).contains(&sigma)) || (!want_true && !(0.0..=1.0).contains(&sigma))
    {
        return Vec::new();
    }
    match b {
        BoolVal::Const(_) => Vec::new(), // nothing to constrain
        BoolVal::Atom(c) => {
            if want_true {
                vec![c]
            } else {
                vec![c.negate()]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::PathNode;
    use concrete::{Location, VarId};
    use solver::{SatResult, Solver};
    use std::sync::Arc;
    use symex::SymStr;

    fn pred(name: &str, role: VarRole, measure: Measure, op: PredOp, sigma: f64) -> Predicate {
        Predicate {
            loc: Location::enter("f"),
            var: VarId::new(name, role, measure),
            op,
            threshold: sigma,
            score: 1.0,
            support: 5,
        }
    }

    fn path(nodes: Vec<PathNode>) -> CandidatePath {
        CandidatePath { nodes, score: 1.0 }
    }

    #[test]
    fn progress_and_hops_update() {
        let p = path(vec![
            PathNode {
                loc: Location::enter("main"),
                predicates: vec![],
            },
            PathNode {
                loc: Location::enter("target"),
                predicates: vec![],
            },
        ]);
        let mut hook = GuidedHook::new(
            p,
            GuidanceConfig {
                tau: 2,
                lookahead: 4,
            },
        );
        let mut meta = StateMeta::default();
        let mut ctx = TermCtx::new();

        let main_loc = Location::enter("main");
        let ev = EventCtx {
            loc: &main_loc,
            params: &[],
            args: &[],
            ret: None,
            global_defs: &[],
            globals: &[],
        };
        let r = hook.on_event(&ev, &mut meta, &mut ctx);
        assert!(!r.suspend);
        assert_eq!(meta.progress, 1);
        assert_eq!(meta.hops, 0);

        // Three off-path events exceed tau = 2.
        let off = Location::enter("noise");
        for expect_suspend in [false, false, true] {
            let ev = EventCtx {
                loc: &off,
                params: &[],
                args: &[],
                ret: None,
                global_defs: &[],
                globals: &[],
            };
            let r = hook.on_event(&ev, &mut meta, &mut ctx);
            assert_eq!(r.suspend, expect_suspend, "hops={}", meta.hops);
        }
    }

    #[test]
    fn lookahead_bridges_sampling_gaps() {
        let p = path(vec![
            PathNode {
                loc: Location::enter("main"),
                predicates: vec![],
            },
            PathNode {
                loc: Location::enter("skipped"),
                predicates: vec![],
            },
            PathNode {
                loc: Location::enter("target"),
                predicates: vec![],
            },
        ]);
        let mut hook = GuidedHook::new(p, GuidanceConfig::default());
        let mut meta = StateMeta {
            progress: 1,
            hops: 0,
        };
        let mut ctx = TermCtx::new();
        let target = Location::enter("target");
        let ev = EventCtx {
            loc: &target,
            params: &[],
            args: &[],
            ret: None,
            global_defs: &[],
            globals: &[],
        };
        hook.on_event(&ev, &mut meta, &mut ctx);
        assert_eq!(meta.progress, 3, "matched past the skipped node");
    }

    #[test]
    fn priority_orders_by_hops_then_progress() {
        let hook = GuidedHook::new(path(vec![]), GuidanceConfig::default());
        let close = StateMeta {
            progress: 5,
            hops: 0,
        };
        let far = StateMeta {
            progress: 9,
            hops: 3,
        };
        assert!(hook.priority(&close, 0) < hook.priority(&far, 0));
        let deep = StateMeta {
            progress: 9,
            hops: 0,
        };
        assert!(hook.priority(&deep, 0) < hook.priority(&close, 0));
    }

    #[test]
    fn int_predicate_translates_to_constraint() {
        let mut ctx = TermCtx::new();
        let t = ctx.new_var("n", 0, 10_000);
        let args = [SymValue::Int(t)];
        let params = [("n".to_string(), minic::Type::Int)];
        let loc = Location::enter("f");
        let ev = EventCtx {
            loc: &loc,
            params: &params,
            args: &args,
            ret: None,
            global_defs: &[],
            globals: &[],
        };
        let p = pred("n", VarRole::Param, Measure::Value, PredOp::Gt, 536.5);
        let cs = translate(&p, &ev, &mut ctx);
        assert_eq!(cs.len(), 1);
        // n > 536.5 ⇒ satisfying models have n >= 537.
        let mut solver = Solver::default();
        match solver.check(&ctx, &cs) {
            SatResult::Sat(m) => assert!(m.value_of(t, &ctx).unwrap() >= 537),
            other => panic!("expected sat: {other:?}"),
        }
        // Conjoined with n < 537 it must be unsat.
        let bound = ctx.int(537);
        let mut cs2 = cs.clone();
        cs2.push(solver::Constraint::new(CmpOp::Lt, t, bound));
        assert!(solver.check(&ctx, &cs2).is_unsat());
    }

    #[test]
    fn strlen_gt_predicate_constrains_prefix_bytes() {
        let mut ctx = TermCtx::new();
        let bytes: Vec<TermId> = (0..8)
            .map(|i| ctx.new_var(format!("s[{i}]"), 0, 255))
            .collect();
        let s = SymStr {
            bytes: Arc::new(bytes.clone()),
        };
        let args = [SymValue::Str(s)];
        let params = [("s".to_string(), minic::Type::Str)];
        let loc = Location::enter("f");
        let ev = EventCtx {
            loc: &loc,
            params: &params,
            args: &args,
            ret: None,
            global_defs: &[],
            globals: &[],
        };
        // len(s) > 4.5 ⇒ bytes 0..=4 nonzero.
        let p = pred("s", VarRole::Param, Measure::Length, PredOp::Gt, 4.5);
        let cs = translate(&p, &ev, &mut ctx);
        assert_eq!(cs.len(), 5);
        // len(s) > 8.5 exceeds capacity: contradiction.
        let p2 = pred("s", VarRole::Param, Measure::Length, PredOp::Gt, 8.5);
        let cs2 = translate(&p2, &ev, &mut ctx);
        let mut solver = Solver::default();
        assert!(solver.check(&ctx, &cs2).is_unsat());
        // len(s) < 3.5 pins byte 3 to zero.
        let p3 = pred("s", VarRole::Param, Measure::Length, PredOp::Lt, 3.5);
        let cs3 = translate(&p3, &ev, &mut ctx);
        assert_eq!(cs3.len(), 1);
        // len(s) < 9.5 is vacuous (cap 8).
        let p4 = pred("s", VarRole::Param, Measure::Length, PredOp::Lt, 9.5);
        assert!(translate(&p4, &ev, &mut ctx).is_empty());
    }

    #[test]
    fn missing_variable_translates_to_nothing() {
        let mut ctx = TermCtx::new();
        let loc = Location::enter("f");
        let ev = EventCtx {
            loc: &loc,
            params: &[],
            args: &[],
            ret: None,
            global_defs: &[],
            globals: &[],
        };
        let p = pred("ghost", VarRole::Param, Measure::Value, PredOp::Gt, 1.0);
        assert!(translate(&p, &ev, &mut ctx).is_empty());
        let d = Predicate {
            threshold: f64::NEG_INFINITY,
            ..p
        };
        assert!(translate(&d, &ev, &mut ctx).is_empty());
    }
}
