//! Predicate construction and ranking (paper §V-A).
//!
//! For each (location, variable) pair, the constructor finds the
//! threshold predicate `v > σ` or `v < σ` that minimizes the
//! quantification error of Eq. 1:
//!
//! ```text
//! E = |P ∩ C| + |Pᶜ ∩ F|
//! ```
//!
//! i.e. correct observations that satisfy the predicate plus faulty
//! observations that violate it (a predicate should be *true on faulty
//! runs*). Each predicate is scored by Eq. 2, `s = |P(x|C) − P(x|F)|`,
//! and ranked.
//!
//! Variables observed on only one side produce the paper's degenerate
//! `< -infinity` / `> -infinity` predicates (Table V rows 7–10): the
//! *location itself* discriminates, not the value.

use crate::corpus::{LogCorpus, Observations};
use concrete::{Location, VarId};
use std::fmt;

/// Threshold comparison direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// Variable greater than the threshold indicates fault.
    Gt,
    /// Variable less than the threshold indicates fault.
    Lt,
}

impl fmt::Display for PredOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredOp::Gt => f.write_str(">"),
            PredOp::Lt => f.write_str("<"),
        }
    }
}

/// A ranked predicate over one variable at one instrumentation location.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Where the variable was observed.
    pub loc: Location,
    /// Which variable.
    pub var: VarId,
    /// Comparison direction.
    pub op: PredOp,
    /// Threshold (`-inf` for degenerate location-only predicates).
    pub threshold: f64,
    /// Confidence score `|P(x|C) − P(x|F)|` (Eq. 2).
    pub score: f64,
    /// Number of observations on the sparser side (tie-break: predicates
    /// supported by both run classes outrank degenerate ones).
    pub support: usize,
}

impl Predicate {
    /// True for the degenerate "variable never observed on one side"
    /// predicates.
    pub fn is_degenerate(&self) -> bool {
        self.threshold.is_infinite()
    }

    /// Renders the predicate the way the paper's Table V does, e.g.
    /// `len(suspect FUNCPARAM) > 536.5`.
    pub fn render(&self) -> String {
        if self.is_degenerate() {
            format!("{} {} -infinity", self.var, self.op)
        } else {
            format!("{} {} {}", self.var, self.op, self.threshold)
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} (s={:.3})", self.render(), self.loc, self.score)
    }
}

/// The ranked predicate list for a corpus.
#[derive(Debug, Clone, Default)]
pub struct PredicateSet {
    /// Predicates, highest score first.
    pub ranked: Vec<Predicate>,
}

impl PredicateSet {
    /// Builds and ranks predicates for every (location, variable) pair
    /// in the corpus (steps (c)–(d) of the paper's algorithm).
    pub fn build(corpus: &LogCorpus) -> PredicateSet {
        Self::build_traced(corpus, &statsym_telemetry::NOOP)
    }

    /// Like [`PredicateSet::build`] with a telemetry recorder: threshold
    /// construction (Eq. 1) and confidence ranking (Eq. 2) each run
    /// under their own span, and the predicate count is recorded.
    pub fn build_traced(corpus: &LogCorpus, rec: &dyn statsym_telemetry::Recorder) -> PredicateSet {
        use statsym_telemetry::{names, Span};

        let sp = Span::start(rec, names::PHASE_PREDICATE_CONSTRUCT);
        let mut ranked: Vec<Predicate> = corpus
            .observations
            .iter()
            .filter_map(|((loc, var), obs)| construct(loc.clone(), var.clone(), obs))
            .collect();
        let _ = sp.finish();

        let sp = Span::start(rec, names::PHASE_CONFIDENCE_RANK);
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.support.cmp(&a.support))
                .then(a.loc.cmp(&b.loc))
                .then(a.var.cmp(&b.var))
        });
        let _ = sp.finish();
        rec.counter_add(names::PIPELINE_PREDICATES_BUILT, ranked.len() as u64);
        PredicateSet { ranked }
    }

    /// The top `n` predicates (the paper's Table V shows the top 10).
    pub fn top(&self, n: usize) -> &[Predicate] {
        &self.ranked[..self.ranked.len().min(n)]
    }

    /// Highest score attached to `loc` (0 when nothing is known) — the
    /// node score used by skeleton construction.
    pub fn location_score(&self, loc: &Location) -> f64 {
        self.ranked
            .iter()
            .filter(|p| &p.loc == loc)
            .map(|p| p.score)
            .fold(0.0, f64::max)
    }

    /// All predicates at `loc`, best first.
    pub fn at_location<'a>(&'a self, loc: &'a Location) -> impl Iterator<Item = &'a Predicate> {
        self.ranked.iter().filter(move |p| &p.loc == loc)
    }
}

/// Constructs the optimal predicate for one (location, variable) pair.
fn construct(loc: Location, var: VarId, obs: &Observations) -> Option<Predicate> {
    match (obs.correct.is_empty(), obs.faulty.is_empty()) {
        (true, true) => None,
        // Only observed in faulty runs: reaching the location at all
        // indicates fault; `v > -inf` is vacuously true.
        (true, false) => Some(Predicate {
            loc,
            var,
            op: PredOp::Gt,
            threshold: f64::NEG_INFINITY,
            score: 1.0,
            support: 0,
        }),
        // Only observed in correct runs: the paper's `< -infinity` rows.
        (false, true) => Some(Predicate {
            loc,
            var,
            op: PredOp::Lt,
            threshold: f64::NEG_INFINITY,
            score: 1.0,
            support: 0,
        }),
        (false, false) => Some(optimal_threshold(loc, var, obs)),
    }
}

/// Finds the threshold/direction minimizing Eq. 1 over all candidate
/// cut points (midpoints between adjacent distinct observed values).
fn optimal_threshold(loc: Location, var: VarId, obs: &Observations) -> Predicate {
    let mut values: Vec<f64> = obs
        .correct
        .iter()
        .chain(obs.faulty.iter())
        .copied()
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values.dedup();

    // Candidate thresholds: midpoints plus sentinels beyond both ends.
    let mut cuts = Vec::with_capacity(values.len() + 1);
    cuts.push(values[0] - 1.0);
    for w in values.windows(2) {
        cuts.push((w[0] + w[1]) / 2.0);
    }
    cuts.push(values[values.len() - 1] + 1.0);

    let n_c = obs.correct.len() as f64;
    let n_f = obs.faulty.len() as f64;
    let mut best: Option<(usize, PredOp, f64, f64)> = None; // (err, op, cut, score)

    for &cut in &cuts {
        for op in [PredOp::Gt, PredOp::Lt] {
            let pred = |v: f64| match op {
                PredOp::Gt => v > cut,
                PredOp::Lt => v < cut,
            };
            // Eq. 1: correct samples satisfying + faulty samples violating.
            let err = obs.correct.iter().filter(|&&v| pred(v)).count()
                + obs.faulty.iter().filter(|&&v| !pred(v)).count();
            let p_c = obs.correct.iter().filter(|&&v| pred(v)).count() as f64 / n_c;
            let p_f = obs.faulty.iter().filter(|&&v| pred(v)).count() as f64 / n_f;
            let score = (p_c - p_f).abs();
            let better = match &best {
                None => true,
                Some((be, _, _, bs)) => err < *be || (err == *be && score > *bs),
            };
            if better {
                best = Some((err, op, cut, score));
            }
        }
    }

    let (_, op, threshold, score) = best.expect("at least one cut candidate");
    Predicate {
        loc,
        var,
        op,
        threshold,
        score,
        support: obs.correct.len().min(obs.faulty.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::{Measure, VarRole};

    fn mk(correct: &[f64], faulty: &[f64]) -> Predicate {
        construct(
            Location::enter("f"),
            VarId::new("x", VarRole::Param, Measure::Value),
            &Observations {
                correct: correct.to_vec(),
                faulty: faulty.to_vec(),
            },
        )
        .unwrap()
    }

    #[test]
    fn perfectly_separable_above() {
        // Faulty values all larger: predicate v > σ with σ between 30 and 500.
        let p = mk(&[10.0, 20.0, 30.0], &[500.0, 600.0]);
        assert_eq!(p.op, PredOp::Gt);
        assert!(p.threshold > 30.0 && p.threshold < 500.0);
        assert_eq!(p.score, 1.0);
        assert!(!p.is_degenerate());
    }

    #[test]
    fn perfectly_separable_below() {
        let p = mk(&[100.0, 120.0], &[1.0, 2.0]);
        assert_eq!(p.op, PredOp::Lt);
        assert_eq!(p.score, 1.0);
        assert!(p.threshold > 2.0 && p.threshold < 100.0);
    }

    #[test]
    fn overlapping_distributions_score_below_one() {
        let p = mk(&[1.0, 2.0, 3.0, 10.0], &[3.0, 11.0, 12.0]);
        assert!(p.score < 1.0);
        assert!(p.score > 0.0);
    }

    #[test]
    fn identical_distributions_score_zero_ish() {
        let p = mk(&[5.0, 5.0], &[5.0, 5.0]);
        assert!(p.score <= f64::EPSILON);
    }

    #[test]
    fn paper_polymorph_shape_len_threshold() {
        // Correct runs: short names (< 512); faulty: > 512. The optimal
        // threshold must land strictly between the two clusters, as in
        // Table V's len(...) > 536.5 rows.
        let correct: Vec<f64> = (1..=40).map(|i| (i * 12) as f64).collect(); // up to 480
        let faulty: Vec<f64> = vec![513.0, 560.0, 600.0];
        let p = mk(&correct, &faulty);
        assert_eq!(p.op, PredOp::Gt);
        assert!(
            p.threshold > 480.0 && p.threshold < 513.0,
            "{}",
            p.threshold
        );
        assert_eq!(p.score, 1.0);
    }

    #[test]
    fn degenerate_only_correct_side() {
        let p = mk(&[1.0, 2.0], &[]);
        assert!(p.is_degenerate());
        assert_eq!(p.op, PredOp::Lt);
        assert_eq!(p.render(), "x FUNCPARAM < -infinity");
        assert_eq!(p.score, 1.0);
        assert_eq!(p.support, 0);
    }

    #[test]
    fn degenerate_only_faulty_side() {
        let p = mk(&[], &[9.0]);
        assert!(p.is_degenerate());
        assert_eq!(p.op, PredOp::Gt);
    }

    #[test]
    fn ranking_prefers_supported_predicates_over_degenerate() {
        use crate::corpus::LogCorpus;
        use concrete::{ExecutionLog, LogRecord, Verdict};
        let var_real = VarId::new("n", VarRole::Param, Measure::Value);
        let var_deg = VarId::new("only_correct", VarRole::Global, Measure::Value);
        let mk_log = |verdict: Verdict, n: f64, with_deg: bool| {
            let mut vars = vec![(var_real.clone(), n)];
            if with_deg {
                vars.push((var_deg.clone(), 0.0));
            }
            ExecutionLog {
                records: vec![LogRecord {
                    loc: Location::enter("f"),
                    vars,
                }],
                verdict,
                fault: None,
            }
        };
        let logs = vec![
            mk_log(Verdict::Correct, 1.0, true),
            mk_log(Verdict::Correct, 2.0, true),
            mk_log(Verdict::Faulty, 100.0, false),
            mk_log(Verdict::Faulty, 200.0, false),
        ];
        let corpus = LogCorpus::build(&logs);
        let preds = PredicateSet::build(&corpus);
        // Both score 1.0, but the real (supported) predicate ranks first.
        assert_eq!(preds.ranked[0].var, var_real);
        assert!(!preds.ranked[0].is_degenerate());
        assert!(preds.ranked[1].is_degenerate());
        assert_eq!(preds.top(1).len(), 1);
        assert!(preds.location_score(&Location::enter("f")) >= 1.0 - f64::EPSILON);
        assert_eq!(preds.location_score(&Location::enter("nowhere")), 0.0);
    }
}
