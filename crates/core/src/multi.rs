//! Iterative discovery of multiple vulnerabilities (paper §III-C).
//!
//! The paper notes that a program may contain several vulnerabilities
//! and proposes isolating them — e.g. by clustering log files per bug —
//! and applying StatSym iteratively "until all vulnerabilities and paths
//! are identified". This module implements that loop:
//!
//! 1. cluster faulty logs by their crash site (the observable signal a
//!    field deployment has for separating bugs);
//! 2. run the pipeline on the correct logs plus the dominant cluster;
//! 3. on success, *suppress* the discovered fault site in the symbolic
//!    engine and drop that cluster from the corpus;
//! 4. repeat until no faulty logs remain or an iteration fails.

use crate::guidance::GuidedHook;
use crate::pipeline::{StatSym, StatSymReport};
use concrete::ExecutionLog;
use minic::Span;
use sir::Module;
use symex::{Engine, FoundVulnerability, SchedulerKind};

/// Result of the iterative multi-vulnerability search.
#[derive(Debug)]
pub struct MultiReport {
    /// One pipeline report per discovered vulnerability, in discovery
    /// order.
    pub iterations: Vec<StatSymReport>,
    /// The distinct vulnerable paths found.
    pub found: Vec<FoundVulnerability>,
    /// Faulty logs whose cluster could not be resolved (empty when
    /// every vulnerability was found).
    pub unresolved_faulty_logs: usize,
}

impl StatSym {
    /// Discovers up to `max_vulnerabilities` distinct vulnerable paths,
    /// eliminating each found fault site before searching for the next
    /// (paper §III-C).
    pub fn run_iterative(
        &self,
        module: &Module,
        logs: &[ExecutionLog],
        max_vulnerabilities: usize,
    ) -> MultiReport {
        let correct: Vec<ExecutionLog> = logs.iter().filter(|l| !l.is_faulty()).cloned().collect();
        let mut remaining_faulty: Vec<ExecutionLog> =
            logs.iter().filter(|l| l.is_faulty()).cloned().collect();

        let mut iterations = Vec::new();
        let mut found: Vec<FoundVulnerability> = Vec::new();
        let mut suppressed: Vec<(String, Span)> = Vec::new();

        while found.len() < max_vulnerabilities && !remaining_faulty.is_empty() {
            // Cluster by crash function; take the dominant cluster.
            let dominant = match dominant_crash_func(&remaining_faulty) {
                Some(f) => f,
                None => break,
            };
            let cluster: Vec<ExecutionLog> = remaining_faulty
                .iter()
                .filter(|l| crash_func(l) == Some(dominant.as_str()))
                .cloned()
                .collect();
            let mut corpus = correct.clone();
            corpus.extend(cluster);

            let analysis = self.analyze(&corpus);
            let report = self.run_suppressed(module, analysis, &suppressed);
            let hit = report.found.clone();
            iterations.push(report);
            match hit {
                Some(f) => {
                    suppressed.push((f.fault.func.clone(), f.fault.span));
                    found.push(f);
                    remaining_faulty.retain(|l| crash_func(l) != Some(dominant.as_str()));
                }
                None => break,
            }
        }

        MultiReport {
            iterations,
            found,
            unresolved_faulty_logs: remaining_faulty.len(),
        }
    }

    /// Like [`StatSym::run_with_analysis`] but with known fault sites
    /// suppressed in the engine.
    fn run_suppressed(
        &self,
        module: &Module,
        analysis: crate::pipeline::AnalysisReport,
        suppressed: &[(String, Span)],
    ) -> StatSymReport {
        use crate::pipeline::CandidateAttempt;
        let start = std::time::Instant::now();
        let mut attempts: Vec<CandidateAttempt> = Vec::new();
        let mut found = None;
        let mut candidate_used = None;
        let paths = analysis
            .candidates
            .as_ref()
            .map(|c| c.paths.clone())
            .unwrap_or_default();
        for (index, path) in paths.into_iter().enumerate() {
            let path_len = path.len();
            let hook = GuidedHook::new(path, self.config().guidance);
            let engine_config = symex::EngineConfig {
                scheduler: SchedulerKind::Priority,
                ..self.config().engine
            };
            let mut engine = Engine::with_hook(module, engine_config, Box::new(hook));
            for (func, span) in suppressed {
                engine.suppress_fault_site(func.clone(), *span);
            }
            let report = engine.run();
            let hit = report.outcome.is_found();
            attempts.push(CandidateAttempt {
                index,
                path_len,
                found: hit,
                wall_time: report.wall_time,
                stats: report.stats,
            });
            if let symex::RunOutcome::Found(f) = report.outcome {
                found = Some(*f);
                candidate_used = Some(index);
                break;
            }
        }
        StatSymReport {
            analysis,
            attempts,
            found,
            candidate_used,
            symex_time: start.elapsed(),
        }
    }
}

fn crash_func(log: &ExecutionLog) -> Option<&str> {
    log.fault.as_ref().map(|f| f.func.as_str())
}

fn dominant_crash_func(faulty: &[ExecutionLog]) -> Option<String> {
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for log in faulty {
        if let Some(f) = crash_func(log) {
            *counts.entry(f).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|(f, n)| (*n, std::cmp::Reverse(f.to_string())))
        .map(|(f, _)| f.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::{run_logged, InputMap, InputValue};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Two independent bugs: an unchecked copy (buffer overflow) and an
    /// assertion on the mode value.
    const SRC: &str = r#"
        global mode_seen: int = 0;
        fn copy(s: str) {
            let b: buf[4];
            let i: int = 0;
            while (char_at(s, i) != 0) { buf_set(b, i, char_at(s, i)); i = i + 1; }
            buf_set(b, i, 0);
        }
        fn select_mode(m: int) {
            mode_seen = m;
            assert(m < 40);
        }
        fn main() {
            let m: int = input_int("mode");
            let s: str = input_str("name", 8);
            select_mode(m);
            copy(s);
        }
    "#;

    fn corpus(module: &sir::Module) -> Vec<ExecutionLog> {
        let mut rng = StdRng::seed_from_u64(77);
        let mut logs = Vec::new();
        for i in 0..120 {
            // Mix: correct runs, copy-overflow runs, assert runs.
            let (m, len) = match i % 3 {
                0 => (rng.random_range(0..40), rng.random_range(0..=3)), // correct
                1 => (rng.random_range(0..40), rng.random_range(4..=8)), // overflow
                _ => (rng.random_range(40..100), rng.random_range(0..=3)), // assert
            };
            let name: Vec<u8> = (0..len).map(|_| rng.random_range(b'a'..=b'z')).collect();
            let inputs: InputMap = [
                ("mode".to_string(), InputValue::Int(m)),
                ("name".to_string(), InputValue::Str(name)),
            ]
            .into_iter()
            .collect();
            logs.push(run_logged(module, &inputs, 1.0, 77 ^ i).unwrap().log);
        }
        logs
    }

    #[test]
    fn discovers_both_vulnerabilities_iteratively() {
        let module = sir::lower(&minic::parse_program(SRC).unwrap()).unwrap();
        let logs = corpus(&module);
        let statsym = StatSym::default();
        let report = statsym.run_iterative(&module, &logs, 4);
        assert_eq!(report.found.len(), 2, "both bugs found");
        let mut funcs: Vec<&str> = report.found.iter().map(|f| f.fault.func.as_str()).collect();
        funcs.sort_unstable();
        assert_eq!(funcs, vec!["copy", "select_mode"]);
        assert_eq!(report.unresolved_faulty_logs, 0);
        assert_eq!(report.iterations.len(), 2);

        // Each generated input reproduces its own bug.
        let vm = concrete::Vm::new(&module, concrete::VmConfig::default());
        for f in &report.found {
            let replay = vm.run(&f.inputs).unwrap();
            assert_eq!(replay.outcome.fault().unwrap().func, f.fault.func);
        }
    }

    #[test]
    fn max_vulnerabilities_caps_iterations() {
        let module = sir::lower(&minic::parse_program(SRC).unwrap()).unwrap();
        let logs = corpus(&module);
        let report = StatSym::default().run_iterative(&module, &logs, 1);
        assert_eq!(report.found.len(), 1);
        assert!(report.unresolved_faulty_logs > 0);
    }

    #[test]
    fn no_faulty_logs_means_no_iterations() {
        let module = sir::lower(&minic::parse_program(SRC).unwrap()).unwrap();
        let logs: Vec<ExecutionLog> = corpus(&module)
            .into_iter()
            .filter(|l| !l.is_faulty())
            .collect();
        let report = StatSym::default().run_iterative(&module, &logs, 4);
        assert!(report.found.is_empty());
        assert!(report.iterations.is_empty());
    }
}
