//! Log corpus preprocessing (algorithm steps (a)–(b) in the paper's
//! Figure 5): partition runs into correct and faulty executions and
//! index the numeric observations per (location, variable).

use concrete::{ExecutionLog, Location, VarId, Verdict};
use std::collections::BTreeMap;

/// Numeric observations of one variable at one location, split by run
/// verdict.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observations {
    /// Values seen in correct executions.
    pub correct: Vec<f64>,
    /// Values seen in faulty executions.
    pub faulty: Vec<f64>,
}

/// A preprocessed corpus of execution logs.
#[derive(Debug, Clone, Default)]
pub struct LogCorpus {
    /// Number of correct runs (with at least one record).
    pub n_correct: usize,
    /// Number of faulty runs.
    pub n_faulty: usize,
    /// Observations per (location, variable). Deterministically ordered.
    pub observations: BTreeMap<(Location, VarId), Observations>,
    /// The event traces of faulty runs (for transition mining).
    pub faulty_traces: Vec<Vec<Location>>,
    /// The event traces of correct runs.
    pub correct_traces: Vec<Vec<Location>>,
    /// The inferred failure point: the entry of the modal crash function
    /// reported by faulty runs (falling back to the most common final
    /// sampled location when no crash report is available).
    pub failure_location: Option<Location>,
    /// All locations seen anywhere in the corpus.
    pub locations: Vec<Location>,
    /// For each location, the number of faulty traces containing it
    /// (used to separate the mainline skeleton from detour targets).
    pub faulty_presence: BTreeMap<Location, usize>,
}

impl LogCorpus {
    /// Builds a corpus from annotated logs. Inconclusive runs (resource
    /// limits) are excluded, mirroring the paper's correct/faulty
    /// partition.
    pub fn build(logs: &[ExecutionLog]) -> LogCorpus {
        let mut corpus = LogCorpus::default();
        let mut last_locs: BTreeMap<Location, usize> = BTreeMap::new();
        let mut fault_locs: BTreeMap<Location, usize> = BTreeMap::new();
        let mut seen_locs: BTreeMap<Location, ()> = BTreeMap::new();

        for log in logs {
            let faulty = match log.verdict {
                Verdict::Correct => false,
                Verdict::Faulty => true,
                Verdict::Inconclusive => continue,
            };
            let trace: Vec<Location> = log.locations().cloned().collect();
            for rec in &log.records {
                seen_locs.insert(rec.loc.clone(), ());
                for (var, value) in &rec.vars {
                    let obs = corpus
                        .observations
                        .entry((rec.loc.clone(), var.clone()))
                        .or_default();
                    if faulty {
                        obs.faulty.push(*value);
                    } else {
                        obs.correct.push(*value);
                    }
                }
            }
            if faulty {
                corpus.n_faulty += 1;
                if let Some(last) = trace.last() {
                    *last_locs.entry(last.clone()).or_default() += 1;
                }
                if let Some(fault) = &log.fault {
                    *fault_locs
                        .entry(Location::enter(fault.func.clone()))
                        .or_default() += 1;
                }
                let mut unique: Vec<&Location> = trace.iter().collect();
                unique.sort();
                unique.dedup();
                for loc in unique {
                    *corpus.faulty_presence.entry(loc.clone()).or_default() += 1;
                }
                corpus.faulty_traces.push(trace);
            } else {
                corpus.n_correct += 1;
                corpus.correct_traces.push(trace);
            }
        }

        // Prefer the crash report (the observable failure point); fall
        // back to the modal last sampled record.
        corpus.failure_location = fault_locs
            .into_iter()
            .max_by_key(|(loc, n)| (*n, std::cmp::Reverse(loc.clone())))
            .map(|(loc, _)| loc)
            .or_else(|| {
                last_locs
                    .into_iter()
                    .max_by_key(|(loc, n)| (*n, std::cmp::Reverse(loc.clone())))
                    .map(|(loc, _)| loc)
            });
        corpus.locations = seen_locs.into_keys().collect();
        corpus
    }

    /// Observations for one (location, variable), if any.
    pub fn observation(&self, loc: &Location, var: &VarId) -> Option<&Observations> {
        self.observations.get(&(loc.clone(), var.clone()))
    }

    /// Total number of usable runs.
    pub fn n_runs(&self) -> usize {
        self.n_correct + self.n_faulty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::{LogRecord, Measure, VarRole};

    fn rec(loc: Location, vars: &[(&str, VarRole, f64)]) -> LogRecord {
        LogRecord {
            loc,
            vars: vars
                .iter()
                .map(|(n, r, v)| (VarId::new(*n, *r, Measure::Value), *v))
                .collect(),
        }
    }

    fn log(verdict: Verdict, records: Vec<LogRecord>) -> ExecutionLog {
        ExecutionLog {
            records,
            verdict,
            fault: None,
        }
    }

    #[test]
    fn partitions_and_indexes_observations() {
        let logs = vec![
            log(
                Verdict::Correct,
                vec![
                    rec(Location::enter("main"), &[("g", VarRole::Global, 1.0)]),
                    rec(Location::leave("main"), &[("g", VarRole::Global, 2.0)]),
                ],
            ),
            log(
                Verdict::Faulty,
                vec![rec(Location::enter("main"), &[("g", VarRole::Global, 9.0)])],
            ),
            log(Verdict::Inconclusive, vec![]),
        ];
        let corpus = LogCorpus::build(&logs);
        assert_eq!(corpus.n_correct, 1);
        assert_eq!(corpus.n_faulty, 1);
        assert_eq!(corpus.n_runs(), 2);
        let obs = corpus
            .observation(
                &Location::enter("main"),
                &VarId::new("g", VarRole::Global, Measure::Value),
            )
            .unwrap();
        assert_eq!(obs.correct, vec![1.0]);
        assert_eq!(obs.faulty, vec![9.0]);
    }

    #[test]
    fn failure_location_is_modal_last_faulty_record() {
        let logs = vec![
            log(
                Verdict::Faulty,
                vec![
                    rec(Location::enter("a"), &[]),
                    rec(Location::enter("boom"), &[]),
                ],
            ),
            log(Verdict::Faulty, vec![rec(Location::enter("boom"), &[])]),
            log(Verdict::Faulty, vec![rec(Location::enter("other"), &[])]),
        ];
        let corpus = LogCorpus::build(&logs);
        assert_eq!(corpus.failure_location, Some(Location::enter("boom")));
    }

    #[test]
    fn empty_corpus_is_well_formed() {
        let corpus = LogCorpus::build(&[]);
        assert_eq!(corpus.n_runs(), 0);
        assert!(corpus.failure_location.is_none());
        assert!(corpus.locations.is_empty());
    }

    #[test]
    fn locations_are_deduplicated_and_sorted() {
        let logs = vec![log(
            Verdict::Correct,
            vec![
                rec(Location::enter("b"), &[]),
                rec(Location::enter("a"), &[]),
                rec(Location::enter("b"), &[]),
            ],
        )];
        let corpus = LogCorpus::build(&logs);
        assert_eq!(corpus.locations.len(), 2);
        assert_eq!(corpus.locations[0], Location::enter("a"));
    }
}
