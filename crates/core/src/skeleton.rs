//! Skeleton extraction (paper §V-B step 1 / §VI-B).
//!
//! Per the paper's implementation section, the *skeleton* is "obtained
//! by choosing the path with highest average predicate score when
//! breadth first search is performed starting from the program entry
//! point to the failure point": among all **shortest** entry→failure
//! paths in the transition graph, the one with the highest average node
//! score (best predicate score at each location).
//!
//! This is what makes the skeleton selective: under partial sampling the
//! mined graph contains "skip" edges, the shortest path gets shorter,
//! and high-score locations left off the skeleton are re-attached as
//! detours — exactly the paper's observation that the first candidate
//! path at 30% sampling has fewer nodes than at 100%.

use crate::predicate::PredicateSet;
use crate::transition::TransitionGraph;
use concrete::Location;
use std::collections::{BTreeMap, VecDeque};

/// The selected skeleton path.
#[derive(Debug, Clone, PartialEq)]
pub struct Skeleton {
    /// Locations from entry to failure point, inclusive.
    pub nodes: Vec<Location>,
    /// Average node score along the path.
    pub avg_score: f64,
}

/// Search limits for skeleton construction.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonConfig {
    /// Maximum skeleton length in nodes (paths longer than this are
    /// rejected; defensive bound).
    pub max_len: usize,
}

impl Default for SkeletonConfig {
    fn default() -> Self {
        SkeletonConfig { max_len: 512 }
    }
}

impl Skeleton {
    /// Finds the best skeleton from the program entry to `failure`.
    ///
    /// Entry selection: `main():enter` when present in the graph, else
    /// all zero-incoming nodes, else every node (fully cyclic graphs can
    /// occur under heavy sampling). Among entries, the shortest distance
    /// to `failure` wins; ties go to the higher-scoring path.
    pub fn build(
        graph: &TransitionGraph,
        preds: &PredicateSet,
        failure: &Location,
        config: SkeletonConfig,
    ) -> Option<Skeleton> {
        let main_enter = Location::enter("main");
        let mut entries = if graph.nodes().any(|l| *l == main_enter) {
            vec![main_enter]
        } else {
            graph.entry_nodes()
        };
        if entries.is_empty() {
            entries.extend(graph.nodes().cloned());
        }

        let mut best: Option<Skeleton> = None;
        for entry in &entries {
            let Some(candidate) = best_shortest_path(graph, preds, entry, failure, config) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    candidate.nodes.len() < b.nodes.len()
                        || (candidate.nodes.len() == b.nodes.len()
                            && candidate.avg_score > b.avg_score)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        best
    }

    /// Index of `loc` within the skeleton, if present.
    pub fn index_of(&self, loc: &Location) -> Option<usize> {
        self.nodes.iter().position(|n| n == loc)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a degenerate empty skeleton (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Among all shortest `entry → failure` paths, returns the one with the
/// highest total (equivalently, average) node score, via dynamic
/// programming over the BFS level DAG.
fn best_shortest_path(
    graph: &TransitionGraph,
    preds: &PredicateSet,
    entry: &Location,
    failure: &Location,
    config: SkeletonConfig,
) -> Option<Skeleton> {
    // BFS distances from entry.
    let mut dist: BTreeMap<Location, usize> = BTreeMap::new();
    let mut order: Vec<Location> = Vec::new();
    dist.insert(entry.clone(), 0);
    let mut queue = VecDeque::from([entry.clone()]);
    while let Some(cur) = queue.pop_front() {
        let d = dist[&cur];
        order.push(cur.clone());
        if cur == *failure || d >= config.max_len {
            continue;
        }
        for e in graph.successors(&cur) {
            if !dist.contains_key(&e.to) {
                dist.insert(e.to.clone(), d + 1);
                queue.push_back(e.to.clone());
            }
        }
    }
    let d_fail = *dist.get(failure)?;
    if d_fail + 1 > config.max_len {
        return None;
    }

    // DP over the shortest-path DAG (edges u→v with dist[v] = dist[u]+1):
    // best cumulative score from entry to each node. `order` is BFS
    // order, so a node's predecessors are finalized before it is used.
    let mut best_score: BTreeMap<Location, f64> = BTreeMap::new();
    let mut best_pred: BTreeMap<Location, Location> = BTreeMap::new();
    best_score.insert(entry.clone(), preds.location_score(entry));
    for u in &order {
        let Some(&su) = best_score.get(u) else {
            continue;
        };
        let du = dist[u];
        for e in graph.successors(u) {
            if dist.get(&e.to) != Some(&(du + 1)) {
                continue;
            }
            let sv = su + preds.location_score(&e.to);
            let better = match best_score.get(&e.to) {
                None => true,
                Some(&cur) => {
                    sv > cur || (sv == cur && best_pred.get(&e.to).is_some_and(|p| u < p))
                }
            };
            if better {
                best_score.insert(e.to.clone(), sv);
                best_pred.insert(e.to.clone(), u.clone());
            }
        }
    }

    let total = *best_score.get(failure)?;
    // Reconstruct entry → failure.
    let mut nodes = vec![failure.clone()];
    let mut at = failure.clone();
    while at != *entry {
        at = best_pred.get(&at)?.clone();
        nodes.push(at.clone());
    }
    nodes.reverse();
    let avg_score = total / nodes.len() as f64;
    Some(Skeleton { nodes, avg_score })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::LogCorpus;
    use crate::transition::MineConfig;
    use concrete::{ExecutionLog, LogRecord, Measure, VarId, VarRole, Verdict};

    fn l(name: &str) -> Location {
        Location::enter(name)
    }

    fn graph_of(traces: &[Vec<Location>]) -> TransitionGraph {
        TransitionGraph::mine(traces.iter(), MineConfig::default())
    }

    /// Builds a predicate set where `hot` locations score 1.0 (perfectly
    /// separating observations) and others score ~0.
    fn preds_with_hot(hot: &[&str]) -> PredicateSet {
        let mut logs = Vec::new();
        for verdict in [Verdict::Correct, Verdict::Faulty] {
            let v = if verdict == Verdict::Faulty {
                100.0
            } else {
                1.0
            };
            logs.push(ExecutionLog {
                records: hot
                    .iter()
                    .map(|name| LogRecord {
                        loc: l(name),
                        vars: vec![(VarId::new("x", VarRole::Param, Measure::Value), v)],
                    })
                    .collect(),
                verdict,
                fault: None,
            });
        }
        PredicateSet::build(&LogCorpus::build(&logs))
    }

    #[test]
    fn picks_higher_scoring_route_among_shortest() {
        // Two same-length routes a -> {hot | cold} -> fail; hot scores 1.
        let traces = vec![
            vec![l("a"), l("hot"), l("fail")],
            vec![l("a"), l("cold"), l("fail")],
        ];
        let g = graph_of(&traces);
        let preds = preds_with_hot(&["hot"]);
        let sk = Skeleton::build(&g, &preds, &l("fail"), SkeletonConfig::default()).unwrap();
        assert_eq!(sk.nodes, vec![l("a"), l("hot"), l("fail")]);
        assert!(sk.avg_score > 0.0);
        assert_eq!(sk.index_of(&l("hot")), Some(1));
        assert_eq!(sk.len(), 3);
        assert!(!sk.is_empty());
    }

    #[test]
    fn bfs_prefers_shorter_even_if_longer_scores_higher() {
        // Skip edge a -> fail exists: the skeleton takes it (BFS), and
        // the hot node is left for the detour machinery.
        let traces = vec![vec![l("a"), l("hot"), l("fail")], vec![l("a"), l("fail")]];
        let g = graph_of(&traces);
        let preds = preds_with_hot(&["hot"]);
        let sk = Skeleton::build(&g, &preds, &l("fail"), SkeletonConfig::default()).unwrap();
        assert_eq!(sk.nodes, vec![l("a"), l("fail")]);
    }

    #[test]
    fn skeleton_is_acyclic_despite_cycles_in_graph() {
        let traces = vec![vec![l("a"), l("b"), l("a"), l("b"), l("fail")]];
        let g = graph_of(&traces);
        let preds = preds_with_hot(&[]);
        let sk = Skeleton::build(&g, &preds, &l("fail"), SkeletonConfig::default()).unwrap();
        let mut dedup = sk.nodes.clone();
        dedup.sort_by_key(|loc| loc.to_string());
        dedup.dedup();
        assert_eq!(dedup.len(), sk.nodes.len(), "no repeated nodes");
        assert_eq!(sk.nodes.last(), Some(&l("fail")));
    }

    #[test]
    fn unreachable_failure_yields_none() {
        let traces = vec![vec![l("a"), l("b")]];
        let g = graph_of(&traces);
        let preds = preds_with_hot(&[]);
        assert!(Skeleton::build(&g, &preds, &l("nowhere"), SkeletonConfig::default()).is_none());
    }

    #[test]
    fn main_enter_is_preferred_entry() {
        let traces = vec![
            vec![l("main"), l("x"), l("fail")],
            vec![l("other_entry"), l("fail")],
        ];
        let g = graph_of(&traces);
        let preds = preds_with_hot(&[]);
        let sk = Skeleton::build(&g, &preds, &l("fail"), SkeletonConfig::default()).unwrap();
        assert_eq!(sk.nodes.first(), Some(&l("main")));
    }

    #[test]
    fn max_len_rejects_long_paths() {
        let traces = vec![vec![l("a"), l("b"), l("c"), l("d"), l("fail")]];
        let g = graph_of(&traces);
        let preds = preds_with_hot(&[]);
        let cfg = SkeletonConfig { max_len: 3 };
        assert!(Skeleton::build(&g, &preds, &l("fail"), cfg).is_none());
    }
}
