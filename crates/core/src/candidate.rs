//! Candidate vulnerable-path assembly (paper §V-B step 3 / §VI-B).
//!
//! Candidates are built by joining the skeleton with subsets of detours
//! and ranked by average predicate score; the statistics-guided symbolic
//! executor tries them in order (the paper's thttpd case needed two).

use crate::detour::{Detour, DetourKind};
use crate::predicate::{Predicate, PredicateSet};
use crate::skeleton::Skeleton;
use concrete::Location;

/// One node of a candidate path: a location plus the predicates the
/// guided executor should inject there.
#[derive(Debug, Clone, PartialEq)]
pub struct PathNode {
    /// The instrumentation location.
    pub loc: Location,
    /// Predicates to inject (non-degenerate, best first).
    pub predicates: Vec<Predicate>,
}

/// A ranked candidate vulnerable path.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePath {
    /// Nodes from entry to failure point.
    pub nodes: Vec<PathNode>,
    /// Average node score (ranking key).
    pub score: f64,
}

impl CandidatePath {
    /// Number of nodes (the paper's Figure 7 metric).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the path has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Renders the node sequence, e.g. for the Figure 9 listing.
    pub fn render(&self) -> String {
        self.nodes
            .iter()
            .map(|n| n.loc.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CandidateConfig {
    /// Maximum number of candidate paths to keep.
    pub max_candidates: usize,
    /// Predicates attached per node, best first.
    pub predicates_per_node: usize,
    /// Minimum score for a predicate to be injected.
    pub min_predicate_score: f64,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_candidates: 16,
            predicates_per_node: 2,
            min_predicate_score: 0.5,
        }
    }
}

/// The full candidate-path construction output.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Candidate paths, best first.
    pub paths: Vec<CandidatePath>,
    /// The underlying skeleton.
    pub skeleton: Skeleton,
    /// The detours considered.
    pub detours: Vec<Detour>,
}

impl CandidateSet {
    /// Builds the ranked candidate set from a skeleton and its detours.
    ///
    /// Generated variants: the bare skeleton, the skeleton plus each
    /// single detour, and the skeleton plus all detours; deduplicated
    /// and ranked by average node score (ties: shorter first).
    pub fn build(
        skeleton: Skeleton,
        detours: Vec<Detour>,
        preds: &PredicateSet,
        config: CandidateConfig,
    ) -> CandidateSet {
        let mut sequences: Vec<Vec<Location>> = Vec::new();
        sequences.push(skeleton.nodes.clone());
        for d in &detours {
            sequences.push(join(&skeleton, std::slice::from_ref(d)));
        }
        if detours.len() > 1 {
            sequences.push(join(&skeleton, &detours));
        }
        sequences.dedup();

        let mut paths: Vec<CandidatePath> = sequences
            .into_iter()
            .map(|nodes| annotate(nodes, preds, config))
            .collect();
        paths.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.nodes.len().cmp(&b.nodes.len()))
        });
        paths.dedup_by(|a, b| {
            a.nodes.len() == b.nodes.len()
                && a.nodes.iter().zip(&b.nodes).all(|(x, y)| x.loc == y.loc)
        });
        paths.truncate(config.max_candidates);
        CandidateSet {
            paths,
            skeleton,
            detours,
        }
    }

    /// Path length statistics `(min, avg, max)` in nodes — the paper's
    /// Figure 7.
    pub fn length_stats(&self) -> Option<(usize, f64, usize)> {
        if self.paths.is_empty() {
            return None;
        }
        let lens: Vec<usize> = self.paths.iter().map(CandidatePath::len).collect();
        let min = *lens.iter().min().expect("non-empty");
        let max = *lens.iter().max().expect("non-empty");
        let avg = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        Some((min, avg, max))
    }
}

/// Joins the skeleton with a set of detours, walking skeleton indices
/// and splicing detour segments at their anchors.
fn join(skeleton: &Skeleton, detours: &[Detour]) -> Vec<Location> {
    let mut sorted: Vec<&Detour> = detours.iter().collect();
    sorted.sort_by_key(|d| d.from_idx);
    let mut out: Vec<Location> = Vec::new();
    let mut idx = 0usize;
    let mut di = 0usize;
    while idx < skeleton.nodes.len() {
        out.push(skeleton.nodes[idx].clone());
        // Apply every detour anchored at this index (first applicable
        // only, to avoid duplicated splices at one anchor).
        if di < sorted.len() && sorted[di].from_idx == idx {
            let d = sorted[di];
            di += 1;
            out.extend(d.nodes.iter().cloned());
            match d.kind {
                // Forward detours replace the skeleton segment
                // (from_idx, to_idx): skip ahead.
                DetourKind::Forward => {
                    idx = d.to_idx;
                    continue;
                }
                // Backward detours rejoin earlier: replay the skeleton
                // from to_idx up to (and including) the anchor — the
                // cycle the paper describes.
                DetourKind::Backward => {
                    for k in d.to_idx..=d.from_idx {
                        out.push(skeleton.nodes[k].clone());
                    }
                }
                // Loops rejoin at the same node.
                DetourKind::Loop => {
                    out.push(skeleton.nodes[d.from_idx].clone());
                }
            }
        }
        idx += 1;
        // Skip any remaining detours anchored strictly before idx (their
        // anchor was consumed by a forward splice).
        while di < sorted.len() && sorted[di].from_idx < idx {
            di += 1;
        }
    }
    out
}

fn annotate(nodes: Vec<Location>, preds: &PredicateSet, config: CandidateConfig) -> CandidatePath {
    let path_nodes: Vec<PathNode> = nodes
        .into_iter()
        .map(|loc| {
            let predicates: Vec<Predicate> = preds
                .at_location(&loc)
                .filter(|p| !p.is_degenerate() && p.score >= config.min_predicate_score)
                .take(config.predicates_per_node)
                .cloned()
                .collect();
            PathNode { loc, predicates }
        })
        .collect();
    let score = if path_nodes.is_empty() {
        0.0
    } else {
        path_nodes
            .iter()
            .map(|n| preds.location_score(&n.loc))
            .sum::<f64>()
            / path_nodes.len() as f64
    };
    CandidatePath {
        nodes: path_nodes,
        score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PredicateSet;

    fn l(name: &str) -> Location {
        Location::enter(name)
    }

    fn sk(names: &[&str]) -> Skeleton {
        Skeleton {
            nodes: names.iter().map(|n| l(n)).collect(),
            avg_score: 0.0,
        }
    }

    fn fwd(from: usize, to: usize, nodes: &[&str]) -> Detour {
        Detour {
            from_idx: from,
            to_idx: to,
            nodes: nodes.iter().map(|n| l(n)).collect(),
            score: 1.0,
            kind: if from < to {
                DetourKind::Forward
            } else if from > to {
                DetourKind::Backward
            } else {
                DetourKind::Loop
            },
        }
    }

    #[test]
    fn forward_detour_replaces_segment() {
        let s = sk(&["a", "b", "c", "fail"]);
        let joined = join(&s, &[fwd(0, 2, &["h"])]);
        let names: Vec<String> = joined.iter().map(|x| x.func.clone()).collect();
        assert_eq!(names, vec!["a", "h", "c", "fail"]);
    }

    #[test]
    fn backward_detour_replays_cycle() {
        let s = sk(&["a", "b", "fail"]);
        let joined = join(&s, &[fwd(1, 0, &["h"])]);
        let names: Vec<String> = joined.iter().map(|x| x.func.clone()).collect();
        assert_eq!(names, vec!["a", "b", "h", "a", "b", "fail"]);
    }

    #[test]
    fn loop_detour_revisits_anchor() {
        let s = sk(&["a", "b", "fail"]);
        let joined = join(&s, &[fwd(1, 1, &["h"])]);
        let names: Vec<String> = joined.iter().map(|x| x.func.clone()).collect();
        assert_eq!(names, vec!["a", "b", "h", "b", "fail"]);
    }

    #[test]
    fn candidate_set_ranks_and_dedupes() {
        let s = sk(&["a", "b", "fail"]);
        let detours = vec![fwd(0, 1, &["h1"]), fwd(1, 2, &["h2"])];
        let preds = PredicateSet::default();
        let set = CandidateSet::build(s, detours, &preds, CandidateConfig::default());
        // skeleton, skeleton+d1, skeleton+d2, skeleton+all = 4 variants.
        assert_eq!(set.paths.len(), 4);
        let (min, avg, max) = set.length_stats().unwrap();
        assert_eq!(min, 3);
        assert_eq!(max, 5);
        assert!((3.0..=5.0).contains(&avg));
        // All scores are 0 (no predicates): shortest ranks first.
        assert_eq!(set.paths[0].len(), 3);
        assert!(!set.paths[0].is_empty());
        assert!(set.paths[0].render().contains("a():enter"));
    }

    #[test]
    fn max_candidates_is_respected() {
        let s = sk(&["a", "b", "c", "d", "fail"]);
        let detours: Vec<Detour> = (0..4).map(|i| fwd(i, i + 1, &["h"])).collect();
        let preds = PredicateSet::default();
        let cfg = CandidateConfig {
            max_candidates: 2,
            ..CandidateConfig::default()
        };
        let set = CandidateSet::build(s, detours, &preds, cfg);
        assert_eq!(set.paths.len(), 2);
    }
}
