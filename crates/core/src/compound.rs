//! Compound boolean predicates — the extension the paper's related-work
//! section points at (Arumuga Nainar et al., "Statistical Debugging
//! Using Compound Boolean Predicates"): conjunctions of two threshold
//! predicates observed at the same location can separate run classes
//! that no single threshold separates.
//!
//! Scoring follows the same Eq. 2 form as simple predicates, but is
//! evaluated per *record* so the two variables are paired within the
//! same observation.

use crate::predicate::{PredOp, Predicate, PredicateSet};
use concrete::{ExecutionLog, Location, Verdict};
use std::collections::BTreeMap;
use std::fmt;

/// A conjunction of two simple predicates at one location.
#[derive(Debug, Clone, PartialEq)]
pub struct CompoundPredicate {
    /// The shared location.
    pub loc: Location,
    /// First conjunct.
    pub lhs: Predicate,
    /// Second conjunct.
    pub rhs: Predicate,
    /// `|P(lhs ∧ rhs | C) − P(lhs ∧ rhs | F)|`.
    pub score: f64,
    /// Best individual conjunct score (for measuring the gain).
    pub best_single: f64,
}

impl CompoundPredicate {
    /// How much the conjunction improves on its best conjunct.
    pub fn gain(&self) -> f64 {
        self.score - self.best_single
    }

    /// Renders like `a FUNCPARAM > 3 && b GLOBAL < 7`.
    pub fn render(&self) -> String {
        format!("{} && {}", self.lhs.render(), self.rhs.render())
    }
}

impl fmt::Display for CompoundPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} (s={:.3})", self.render(), self.loc, self.score)
    }
}

/// Ranked compound predicates.
#[derive(Debug, Clone, Default)]
pub struct CompoundSet {
    /// Compounds with positive gain, best score first.
    pub ranked: Vec<CompoundPredicate>,
}

impl CompoundSet {
    /// Builds compound predicates by pairing the top simple predicates
    /// at each location and re-scoring the conjunction per record.
    /// Only conjunctions that strictly improve on both conjuncts are
    /// kept.
    pub fn build(logs: &[ExecutionLog], simple: &PredicateSet, per_location: usize) -> CompoundSet {
        // Group top simple predicates by location.
        let mut by_loc: BTreeMap<&Location, Vec<&Predicate>> = BTreeMap::new();
        for p in &simple.ranked {
            if p.is_degenerate() {
                continue;
            }
            let v = by_loc.entry(&p.loc).or_default();
            if v.len() < per_location {
                v.push(p);
            }
        }

        let mut ranked = Vec::new();
        for (loc, preds) in &by_loc {
            for i in 0..preds.len() {
                for j in (i + 1)..preds.len() {
                    let (a, b) = (preds[i], preds[j]);
                    if a.var == b.var {
                        continue; // conjunction over one variable is just an interval
                    }
                    if let Some(score) = joint_score(logs, loc, a, b) {
                        let best_single = a.score.max(b.score);
                        if score > best_single {
                            ranked.push(CompoundPredicate {
                                loc: (*loc).clone(),
                                lhs: a.clone(),
                                rhs: b.clone(),
                                score,
                                best_single,
                            });
                        }
                    }
                }
            }
        }
        ranked.sort_by(|x, y| {
            y.score
                .partial_cmp(&x.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.loc.cmp(&y.loc))
        });
        CompoundSet { ranked }
    }
}

fn eval(p: &Predicate, value: f64) -> bool {
    match p.op {
        PredOp::Gt => value > p.threshold,
        PredOp::Lt => value < p.threshold,
    }
}

/// `|P(a ∧ b | C) − P(a ∧ b | F)|` over records at `loc` that observe
/// both variables. `None` when either side has no paired records.
fn joint_score(logs: &[ExecutionLog], loc: &Location, a: &Predicate, b: &Predicate) -> Option<f64> {
    let mut counts = [(0usize, 0usize); 2]; // [correct, faulty] = (sat, total)
    for log in logs {
        let class = match log.verdict {
            Verdict::Correct => 0,
            Verdict::Faulty => 1,
            Verdict::Inconclusive => continue,
        };
        for rec in &log.records {
            if rec.loc != *loc {
                continue;
            }
            let va = rec.vars.iter().find(|(v, _)| *v == a.var).map(|(_, x)| *x);
            let vb = rec.vars.iter().find(|(v, _)| *v == b.var).map(|(_, x)| *x);
            let (Some(va), Some(vb)) = (va, vb) else {
                continue;
            };
            counts[class].1 += 1;
            if eval(a, va) && eval(b, vb) {
                counts[class].0 += 1;
            }
        }
    }
    let (c_sat, c_tot) = counts[0];
    let (f_sat, f_tot) = counts[1];
    if c_tot == 0 || f_tot == 0 {
        return None;
    }
    Some((c_sat as f64 / c_tot as f64 - f_sat as f64 / f_tot as f64).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::LogCorpus;
    use concrete::{LogRecord, Measure, VarId, VarRole};

    /// Builds a corpus where neither x nor y separates classes alone,
    /// but (x > σ && y > σ) does: faulty runs have both high, correct
    /// runs have exactly one high.
    fn xor_ish_logs() -> Vec<ExecutionLog> {
        let loc = Location::enter("f");
        let vx = VarId::new("x", VarRole::Param, Measure::Value);
        let vy = VarId::new("y", VarRole::Param, Measure::Value);
        let mk = |verdict, x: f64, y: f64| ExecutionLog {
            records: vec![LogRecord {
                loc: loc.clone(),
                vars: vec![(vx.clone(), x), (vy.clone(), y)],
            }],
            verdict,
            fault: None,
        };
        let mut logs = Vec::new();
        for i in 0..20 {
            // Correct: one of the two is high.
            if i % 2 == 0 {
                logs.push(mk(Verdict::Correct, 100.0 + i as f64, 1.0));
            } else {
                logs.push(mk(Verdict::Correct, 1.0, 100.0 + i as f64));
            }
            // Faulty: both high.
            logs.push(mk(Verdict::Faulty, 100.0 + i as f64, 100.0 + i as f64));
        }
        logs
    }

    #[test]
    fn conjunction_beats_single_thresholds() {
        let logs = xor_ish_logs();
        let corpus = LogCorpus::build(&logs);
        let simple = PredicateSet::build(&corpus);
        // No single predicate separates perfectly here.
        let best_single = simple.ranked.first().map(|p| p.score).unwrap_or(0.0);
        assert!(best_single < 0.9, "single score {best_single}");

        let compound = CompoundSet::build(&logs, &simple, 4);
        let best = compound.ranked.first().expect("a compound is found");
        assert!(best.score > 0.9, "compound score {:.3}", best.score);
        assert!(best.gain() > 0.3, "gain {:.3}", best.gain());
        let rendered = best.render();
        assert!(rendered.contains("&&"), "{rendered}");
    }

    #[test]
    fn no_compounds_when_single_is_perfect() {
        // One variable already separates: conjunctions cannot improve.
        let loc = Location::enter("f");
        let vx = VarId::new("x", VarRole::Param, Measure::Value);
        let vy = VarId::new("y", VarRole::Param, Measure::Value);
        let mk = |verdict, x: f64, y: f64| ExecutionLog {
            records: vec![LogRecord {
                loc: loc.clone(),
                vars: vec![(vx.clone(), x), (vy.clone(), y)],
            }],
            verdict,
            fault: None,
        };
        let mut logs = Vec::new();
        for i in 0..10 {
            logs.push(mk(Verdict::Correct, i as f64, (i * 7 % 5) as f64));
            logs.push(mk(Verdict::Faulty, 100.0 + i as f64, (i * 3 % 5) as f64));
        }
        let corpus = LogCorpus::build(&logs);
        let simple = PredicateSet::build(&corpus);
        assert!(simple.ranked[0].score > 0.99);
        let compound = CompoundSet::build(&logs, &simple, 4);
        assert!(
            compound.ranked.iter().all(|c| c.gain() > 0.0),
            "only strict improvements are kept"
        );
        // The top simple predicate is perfect, so nothing can beat it at
        // that location.
        assert!(compound.ranked.iter().all(|c| c.score > c.best_single));
    }

    #[test]
    fn same_variable_pairs_are_skipped() {
        let logs = xor_ish_logs();
        let corpus = LogCorpus::build(&logs);
        let simple = PredicateSet::build(&corpus);
        let compound = CompoundSet::build(&logs, &simple, 8);
        for c in &compound.ranked {
            assert_ne!(c.lhs.var, c.rhs.var);
        }
    }
}
